"""E1 — Fig. 3 (left): socket/node performance of the pipelined variants.

Regenerates the bar chart: standard Jacobi vs pipelined blocking with
barrier / relaxed sync (d_u=1 lockstep, d_u=4) / T=1, on one socket (one
team) and the full node (two teams), plus the Eq. 5 model markers for
T=1 and T=2.  Expected shape (paper): pipelining wins 50–60 %, relaxed
sync beats the barrier and pays off most on two sockets, the T=1 model
marker matches the measurement while the T=2 marker overshoots.

Thin wrapper over the ``fig3_left@<scale>`` perf scenario: the data
comes from :mod:`repro.perf`, the table from
:mod:`repro.bench.reporting`, and the run also persists
``benchmarks/results/fig3_left.json``.
"""

from __future__ import annotations

from repro.bench import banner, format_table


def _render(data) -> str:
    rows = []
    order = [
        "standard Jacobi",
        "pipeline w/ barrier",
        "pipeline relaxed d_u=1 (lockstep)",
        "pipeline relaxed d_u=4",
        "pipeline relaxed T=1",
        "model T=1",
        "model T=2",
        "model T=1 (exact Eq.5)",
    ]
    for name in order:
        s = data["socket"][name]
        n = data["node"][name]
        rows.append([name, s, n,
                     s / data["socket"]["standard Jacobi"],
                     n / data["node"]["standard Jacobi"]])
    table = format_table(
        ["variant", "socket MLUP/s", "node MLUP/s",
         "socket speedup", "node speedup"],
        rows, floatfmt="8.2f")
    return banner("Fig. 3 (left) — pipelined temporal blocking, 600^3-class "
                  "problem, Nehalem EP model") + "\n" + table


def test_fig3_left(perf_bench, bench_scale):
    data = perf_bench("fig3_left", _render)

    socket = data["socket"]
    node = data["node"]
    std_s, std_n = socket["standard Jacobi"], node["standard Jacobi"]
    best_s = socket["pipeline relaxed d_u=4"]
    best_n = node["pipeline relaxed d_u=4"]
    # Loose pipelining beats standard Jacobi and lockstep at any scale.
    assert best_s > 1.2 * std_s
    assert best_s > socket["pipeline relaxed d_u=1 (lockstep)"]
    # ... and the T=2 model overshoots the simulation (model failure).
    assert socket["model T=2"] > socket["pipeline relaxed d_u=4"] * 1.15
    if bench_scale != "paper":
        return
    # Paper-shape assertions need the size-stable (>= 250^3) rates.
    # Paper: speedups of up to 50-60 % on one and two sockets.
    assert 1.35 <= best_s / std_s <= 1.8
    assert 1.30 <= best_n / std_n <= 1.8
    # Relaxed sync pays off most on two sockets (vs barrier).
    gain_socket = best_s / socket["pipeline w/ barrier"]
    gain_node = best_n / node["pipeline w/ barrier"]
    assert gain_node >= gain_socket * 0.95
    # Model marker at T=1 agrees with the simulated T=1 run within 15 %.
    assert abs(socket["model T=1"] - socket["pipeline relaxed T=1"]) \
        / socket["pipeline relaxed T=1"] < 0.15
