"""E7/E8/E9 — ablations called out in the paper's text.

* team delay d_t: "only a very slight impact ... about 3 % improvement
  for d_t = 8";
* inner block length b_x: pipelined optimum near 120, large blocks
  overflow the shared cache when the pipeline is loose;
* storage scheme & NT stores: compressed grid lessens bandwidth
  pressure; NT stores are counterproductive under temporal blocking.

Thin wrappers over the ``ablation_*@<scale>`` perf scenarios; each run
persists its ``benchmarks/results/ablation_*.json`` document.
"""

from __future__ import annotations

from repro.bench import banner, format_series, format_table


def _render_team_delay(series) -> str:
    text = banner("Ablation E7 — team delay d_t (two teams, d_l=1, d_u=4)")
    text += "\n" + format_series("node", [(dt, v) for dt, v in series],
                                 "d_t", "MLUP/s", floatfmt=".1f")
    return text


def test_team_delay(perf_bench, bench_scale):
    series = perf_bench("ablation_team_delay", _render_team_delay)
    vals = dict(series)
    base = vals[0]
    # Paper: only a very slight impact (few per cent either way); the
    # small quick-scale problem exaggerates the relative swing.
    tolerance = 0.10 if bench_scale == "paper" else 0.35
    for dt, v in vals.items():
        assert abs(v - base) / base < tolerance, (dt, v, base)


def _render_block_size(rows) -> str:
    text = banner("Ablation E8 — inner block length b_x (socket, d_u=4)")
    text += "\n" + format_table(["b_x", "MLUP/s", "cache reloads"],
                                [[bx, v, r] for bx, v, r in rows],
                                floatfmt="8.1f")
    return text


def test_block_size(perf_bench):
    rows = perf_bench("ablation_block_size", _render_block_size)
    perf = {bx: v for bx, v, _ in rows}
    # b_x = 120 (the paper's optimum) performs within 10 % of the best.
    assert perf[120] > 0.9 * max(perf.values())


def _render_nt_stores(vals) -> str:
    text = banner("Ablation E9 — storage scheme and non-temporal stores "
                  "(socket, d_u=4)")
    text += "\n" + format_table(["variant", "MLUP/s"],
                                [[k, v] for k, v in vals.items()],
                                floatfmt="8.1f")
    return text


def test_storage_and_nt_stores(perf_bench):
    vals = perf_bench("ablation_nt_stores", _render_nt_stores)
    # NT stores leak every update to memory: clearly counterproductive.
    assert vals["two-grid + NT stores"] < 0.9 * vals["two-grid"]
    # Compressed grid is at least as good as two-grid here.
    assert vals["compressed"] >= 0.95 * vals["two-grid"]
