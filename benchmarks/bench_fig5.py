"""E4 — Fig. 5: theoretical multi-layer halo advantage vs subdomain size.

Regenerates the model curves for h ∈ {2,4,8,16,32} with the paper's
parameters (QDR-IB 3.2 GB/s / 1.8 µs, 2000 MLUP/s node) and the
computation/overall-time inset for h = 2 and h = 32.  Expected shape:
no influence at large L; degradation from extra halo work in the
20 ≲ L ≲ 100 range (relevant for large h); substantial gains from
message aggregation at L ≲ 20.

Thin wrapper over the scale-independent ``fig5`` perf scenario;
persists ``benchmarks/results/fig5.json`` alongside the ASCII series.
"""

from __future__ import annotations

from repro.bench import banner, fig5_series, format_series


def _render(data) -> str:
    expanded = fig5_series(expanded_messages=True)
    text = banner("Fig. 5 — multi-layer halo advantage "
                  "(paper accounting: unexpanded messages)")
    for h, series in data["advantage"].items():
        text += "\n" + format_series(f"h={h}", series, "L", "advantage")
    text += "\n\nInset: computation / overall time"
    for h, series in data["efficiency"].items():
        text += "\n" + format_series(f"h={h}", series, "L", "efficiency")
    text += "\n\nSelf-consistent variant (ghost-expansion message growth):"
    for h, series in expanded["advantage"].items():
        text += "\n" + format_series(f"h={h}", series, "L", "advantage")
    return text


def test_fig5(perf_bench):
    data = perf_bench("fig5", _render)

    adv = {h: dict(s) for h, s in data["advantage"].items()}
    # No influence at large subdomains for moderate h; our full trapezoid
    # accounting keeps a residual work overhead for very wide halos that
    # the paper's simplified model neglects (see EXPERIMENTS.md).
    assert 0.95 < adv[2][320] < 1.05
    assert 0.90 < adv[4][320] < 1.05
    for h in adv:
        assert 0.70 < adv[h][320] < 1.1, (h, adv[h][320])
    # Substantial gains at small L from message aggregation.
    assert max(adv[h][5] for h in adv) > 2.0
    # Extra halo work degrades the mid range, relevantly so for h >= 16.
    assert adv[16][50] < 0.95
    assert adv[32][50] < adv[8][50]
    # h=2 barely hurts anywhere in the mid range.
    assert adv[2][80] > 0.9
    # Inset: below L ~ 100 the algorithm is strongly comm-limited.
    eff = {h: dict(s) for h, s in data["efficiency"].items()}
    assert eff[2][20] < 0.5
    assert eff[2][320] > 0.8
