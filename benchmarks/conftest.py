"""Shared helpers for the figure benchmarks.

Each bench regenerates one paper artifact (table/figure series), prints
it, and archives it under ``benchmarks/results/`` so the run leaves a
reviewable record even when pytest captures stdout.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_output(results_dir):
    """Return a writer that prints and archives a bench's report."""

    def write(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return write
