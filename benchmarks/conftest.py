"""Shared helpers for the figure benchmarks.

Each bench regenerates one paper artifact (table/figure series) by
running its registered ``repro.perf`` scenario, prints the ASCII render,
and archives **both** forms under ``benchmarks/results/`` — the ``.txt``
table for human review and a schema-versioned ``.json`` results document
that ``python -m repro.perf compare`` can diff.

``--quick`` (or ``REPRO_BENCH_QUICK=1``) switches every bench to the
``quick`` suite's problem sizes so a full smoke run finishes in well
under 30 s per bench; the strict paper-shape assertions only apply at
``paper`` scale, where the DES rates are size-stable (>= 250^3).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="run benches at the perf harness's quick-suite scale "
             "(smoke mode; paper-shape assertions relaxed)")


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    """Which scenario scale the benches run at: 'quick' or 'paper'."""
    if request.config.getoption("--quick") or \
            os.environ.get("REPRO_BENCH_QUICK"):
        return "quick"
    return "paper"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_output(results_dir):
    """Return a writer that prints and archives a bench's report."""

    def write(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture()
def perf_bench(benchmark, bench_scale, record_output, results_dir):
    """Run a registered perf scenario under pytest-benchmark.

    Returns the scenario payload for the bench's assertions after
    rendering the ASCII table (via ``render``) and persisting the JSON
    results document through :mod:`repro.perf.store`.
    """
    from repro.perf import (capture_environment, find_scenario,
                            make_document, record_from_payload,
                            save_document)

    def run(base_name: str, render=None, rounds: int = 1):
        sc = find_scenario(base_name, bench_scale)
        state = sc.setup() if sc.setup is not None else None
        t0 = time.perf_counter()
        payload = benchmark.pedantic(lambda: sc.run_once(state),
                                     rounds=rounds, iterations=1)
        fallback = (time.perf_counter() - t0) / rounds
        stats = getattr(benchmark, "stats", None)
        try:
            wall = stats["median"] if stats is not None else fallback
        except (KeyError, TypeError):
            wall = fallback
        record = record_from_payload(sc, payload, wall, repeats=rounds)
        doc = make_document(suite=bench_scale, records=[record],
                            environment=capture_environment(),
                            run_config={"source": "benchmarks",
                                        "rounds": rounds})
        save_document(doc, results_dir / f"{base_name}.json")
        run.last_record = record
        if render is not None:
            record_output(base_name, render(payload))
        return payload

    run.last_record = None
    return run
