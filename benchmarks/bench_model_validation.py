"""E3/E6 — the diagnostic performance model vs the simulator.

Validates Eq. 2 (P0 from STREAM), the Nehalem closed form 16T/(7+4T),
the Eq. 5 speedup-vs-T table (model matches at T=1, fails at T>=2), and
the speedup ceiling Mc/Ms ≈ 4.

The Eq. 5 table is the ``model_validation@<scale>`` perf scenario —
the same comparison is available standalone as
``python -m repro.perf compare --model BENCH_<suite>.json``.
"""

from __future__ import annotations

import pytest

from repro.bench import banner, format_table
from repro.machine import nehalem_ep, simulated_stream_copy
from repro.models import (
    PipelineModel,
    baseline_lups,
    nehalem_speedup_formula,
    socket_p0,
)


def test_eq2_baseline(benchmark, record_output):
    m = nehalem_ep()
    p0_socket = benchmark.pedantic(lambda: socket_p0(m), rounds=1, iterations=1)
    stream = simulated_stream_copy(m, 4)
    text = banner("Eq. 2 — baseline expectation from STREAM COPY")
    text += (f"\nMs (socket)        : {m.mem_bw_socket / 1e9:.1f} GB/s"
             f"\nP0 socket          : {p0_socket / 1e9:.3f} GLUP/s"
             f"\nP0 node            : {2 * p0_socket / 1e9:.3f} GLUP/s "
             f"(paper: 2.3 GLUP/s)"
             f"\nsim STREAM (4 thr) : {stream.gbs():.1f} GB/s")
    record_output("eq2_baseline", text)
    assert abs(2 * p0_socket / 1e9 - 2.3125) < 0.01
    assert baseline_lups(18.5e9) == pytest.approx(1.15625e9)


def _render(rows) -> str:
    table = format_table(
        ["T", "Eq.5 speedup", "16T/(7+4T)", "model MLUP/s", "sim MLUP/s",
         "sim speedup"],
        [[r["T"], r["model_speedup"], r["formula_16T"], r["model_mlups"],
          r["sim_mlups"], r["sim_speedup"]] for r in rows],
        floatfmt="8.3f")
    text = banner("Eq. 5 — diagnostic model vs simulation (one socket, "
                  "t=4)") + "\n" + table
    m = nehalem_ep()
    pm = PipelineModel.from_machine(m)
    text += (f"\n\nspeedup ceiling Mc/Ms = {pm.speedup_limit():.2f} "
             f"(paper: ~4)")
    return text


def test_eq5_model_vs_sim(perf_bench, bench_scale):
    rows = perf_bench("model_validation", _render)

    # Closed form: 1.45 at T=1 as quoted.
    assert nehalem_speedup_formula(1) == pytest.approx(16 / 11)
    by_T = {int(r["T"]): r for r in rows}
    # Model matches simulation at T=1 ("almost exactly"): within 15 % at
    # paper scale, slightly looser on the small quick problem.
    t1_tolerance = 0.15 if bench_scale == "paper" else 0.20
    assert abs(by_T[1]["model_mlups"] - by_T[1]["sim_mlups"]) \
        / by_T[1]["sim_mlups"] < t1_tolerance
    # Model fails completely at larger T: overpredicts by > 20 %.
    assert by_T[2]["model_mlups"] > 1.2 * by_T[2]["sim_mlups"]
    assert by_T[4]["model_mlups"] > 1.3 * by_T[4]["sim_mlups"]
    # Ceiling.
    m = nehalem_ep()
    pm = PipelineModel.from_machine(m)
    assert 3.5 < pm.speedup_limit() < 5.0
