"""E5 — Fig. 6: distributed-memory strong/weak scaling on 1–64 nodes.

Regenerates the four measured curves (standard Jacobi 1PPN/8PPN,
pipelined 1PPN/2PPN) plus the ideal-scaling references.  Expected shape
(paper): standard 1PPN clearly inferior; pipelined strong scaling loses
its benefit at large node count (communication-dominated); weak scaling
retains most of the pipelined speedup, with 2PPN substantially better
than 1PPN.

Thin wrapper over the scale-independent ``fig6`` perf scenario;
persists ``benchmarks/results/fig6.json`` alongside the ASCII series.
"""

from __future__ import annotations

from repro.bench import banner, format_series


def _render(data) -> str:
    text = banner("Fig. 6 — strong & weak scaling, GLUP/s "
                  "(600^3 strong / 600^3-per-process weak)")
    for scaling in ("strong", "weak"):
        text += f"\n--- {scaling} scaling ---"
        for name, series in data[scaling].items():
            text += "\n" + format_series(name, series, "nodes", "GLUP/s",
                                         floatfmt=".2f")
    return text


def test_fig6(perf_bench):
    data = perf_bench("fig6", _render)

    strong = {k: dict(v) for k, v in data["strong"].items()}
    weak = {k: dict(v) for k, v in data["weak"].items()}

    # Standard 1PPN ("hybrid vector mode") is clearly inferior.
    assert strong["standard 1PPN"][64] < 0.65 * strong["standard 8PPN"][64]
    # Single node: pipelining wins ~1.5x.
    assert weak["pipelined 2PPN"][1] > 1.3 * weak["standard 8PPN"][1]
    # Strong scaling: the temporal-blocking benefit is NOT maintained at
    # 64 nodes (within 15 % of standard, or below).
    assert strong["pipelined 2PPN"][64] < 1.15 * strong["standard 8PPN"][64]
    # Weak scaling keeps most of the speedup.
    single_speedup = weak["pipelined 2PPN"][1] / weak["standard 8PPN"][1]
    weak_speedup = weak["pipelined 2PPN"][64] / weak["standard 8PPN"][64]
    kept = (weak_speedup - 1) / (single_speedup - 1)
    assert kept > 0.6, f"only {kept:.0%} of the pipelined speedup kept"
    # 2PPN beats 1PPN for the pipelined code (ccNUMA placement).
    assert weak["pipelined 2PPN"][64] > weak["pipelined 1PPN"][64]
