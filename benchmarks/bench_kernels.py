"""E10 — host micro-benchmarks of the real NumPy kernels (sanity rail).

These time the actual vectorised Jacobi sweep and the functional
pipelined executor on this container.  No paper figure depends on host
speed; the numbers contextualise the functional rail and give
pytest-benchmark something real to time statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Grid3D, PipelineConfig, RelaxedSpec, run_pipelined
from repro.bench import banner
from repro.grid import random_field
from repro.kernels import jacobi_sweep_blocked, jacobi_sweep_padded
from repro.machine import host_stream_copy

N = 128


@pytest.fixture(scope="module")
def padded_pair():
    grid = Grid3D((N, N, N))
    src = grid.padded(random_field(grid.shape, np.random.default_rng(0)))
    return src, src.copy()


def test_host_stream(benchmark, record_output):
    res = benchmark.pedantic(lambda: host_stream_copy(n_mb=128, repeats=3),
                             rounds=1, iterations=1)
    text = banner("Host STREAM COPY (numpy copyto, 2-stream accounting)")
    text += f"\nbandwidth: {res.gbs():.1f} GB/s"
    text += (f"\nEq. 2 expectation for a perfect host Jacobi: "
             f"{res.bandwidth / 16 / 1e6:.0f} MLUP/s")
    record_output("host_stream", text)
    assert res.bandwidth > 1e8  # anything slower means the timer broke


def test_jacobi_sweep(benchmark, padded_pair):
    src, dst = padded_pair
    benchmark(jacobi_sweep_padded, src, dst)
    mlups = N ** 3 / benchmark.stats["mean"] / 1e6
    print(f"\nplain sweep: {mlups:.1f} MLUP/s on this host")


def test_jacobi_sweep_blocked(benchmark, padded_pair):
    src, dst = padded_pair
    benchmark(jacobi_sweep_blocked, src, dst, (N, 20, 20))
    mlups = N ** 3 / benchmark.stats["mean"] / 1e6
    print(f"\nblocked sweep: {mlups:.1f} MLUP/s on this host")


def test_pipelined_executor_throughput(benchmark):
    grid = Grid3D((48, 48, 48))
    field = random_field(grid.shape, np.random.default_rng(1))
    cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=2,
                         block_size=(6, 100, 100), sync=RelaxedSpec(1, 4))

    def run():
        return run_pipelined(grid, field, cfg, validate=False)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    updates = res.stats.cells_updated
    print(f"\nfunctional executor: {updates / benchmark.stats['mean'] / 1e6:.2f} "
          "M cell-updates/s (validation off)")


def test_validation_overhead(benchmark):
    grid = Grid3D((32, 32, 32))
    field = random_field(grid.shape, np.random.default_rng(2))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 100, 100), sync=RelaxedSpec(1, 2))
    benchmark.pedantic(
        lambda: run_pipelined(grid, field, cfg, validate=True),
        rounds=3, iterations=1)
