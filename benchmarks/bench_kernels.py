"""E10 — host micro-benchmarks of the real NumPy kernels (sanity rail).

These time the actual vectorised Jacobi sweep and the functional
pipelined/distributed solvers on this container.  No paper figure
depends on host speed; the numbers contextualise the functional rail.

Thin wrappers over the ``kernel``/``solver`` perf scenarios
(``jacobi_sweep@<scale>``, ``solve_shared@<scale>``, ...): the JSON
records they persist carry the host throughputs as non-gated metrics
and the deterministic communication counters as gated ones.
"""

from __future__ import annotations

from repro.bench import banner, format_table


def test_host_stream(perf_bench, record_output):
    res = perf_bench("host_stream")
    text = banner("Host STREAM COPY (numpy copyto, 2-stream accounting)")
    text += f"\nbandwidth: {res.gbs():.1f} GB/s"
    text += (f"\nEq. 2 expectation for a perfect host Jacobi: "
             f"{res.bandwidth / 16 / 1e6:.0f} MLUP/s")
    record_output("host_stream", text)
    assert res.bandwidth > 1e8  # anything slower means the timer broke


def test_jacobi_sweep(perf_bench):
    perf_bench("jacobi_sweep", rounds=5)
    mlups = perf_bench.last_record.metrics["mlups"].value
    print(f"\nplain sweep: {mlups:.1f} MLUP/s on this host")
    assert mlups > 0


def test_jacobi_sweep_blocked(perf_bench):
    perf_bench("jacobi_sweep_blocked", rounds=5)
    mlups = perf_bench.last_record.metrics["mlups"].value
    print(f"\nblocked sweep: {mlups:.1f} MLUP/s on this host")
    assert mlups > 0


def _render_solver(record) -> str:
    rows = [[name, m.value, m.unit] for name, m in record.metrics.items()]
    return (banner(f"Functional solver — {record.scenario}") + "\n" +
            format_table(["metric", "value", "unit"], rows,
                         floatfmt="12.3f"))


def test_pipelined_executor_throughput(perf_bench):
    res = perf_bench("solve_shared", rounds=3)
    rec = perf_bench.last_record
    print(f"\nfunctional executor: {rec.metrics['mcups'].value:.2f} "
          "M cell-updates/s (validation off)")
    assert res.stats.cells_updated > 0
    # The shared backend exchanges nothing.
    assert res.bytes_exchanged == 0 and res.messages == 0


def test_validation_overhead(perf_bench):
    res = perf_bench("solve_shared_validated", rounds=3)
    rec = perf_bench.last_record
    print(f"\nvalidated executor: {rec.metrics['mcups'].value:.2f} "
          "M cell-updates/s (validation on)")
    assert res.stats.cells_updated > 0


def test_solve_simmpi(perf_bench, record_output):
    res = perf_bench("solve_simmpi")
    record_output("solve_simmpi", _render_solver(perf_bench.last_record))
    # The distributed backend really communicates, deterministically.
    assert res.n_ranks > 1
    assert res.bytes_exchanged > 0 and res.messages > 0
