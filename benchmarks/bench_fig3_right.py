"""E2 — Fig. 3 (right): performance vs pipeline looseness ``d_u - d_l``.

Expected shape (paper): rigid lockstep (d_u - d_l = 0) is far below the
plateau reached for looseness 1–4 ("a performance gain of about 80 % can
be observed" for loose vs lockstep), on both socket and node.

Thin wrapper over the ``fig3_right@<scale>`` perf scenario; persists
``benchmarks/results/fig3_right.json`` alongside the ASCII series.
"""

from __future__ import annotations

from repro.bench import banner, format_series


def _render(data) -> str:
    text = banner("Fig. 3 (right) — influence of pipeline looseness "
                  "(d_l = 1, GLUP/s)")
    for label in ("socket", "node"):
        text += "\n" + format_series(label, data[label],
                                     xlabel="d_u - d_l", ylabel="GLUP/s")
    return text


def test_fig3_right(perf_bench):
    data = perf_bench("fig3_right", _render)

    for label in ("socket", "node"):
        series = dict(data[label])
        lockstep = series[0]
        plateau = max(series[k] for k in series if k >= 1)
        # Loose pipelines beat lockstep by a large margin (paper: ~80 %).
        assert plateau / lockstep > 1.4, (label, lockstep, plateau)
        # The curve saturates: going from looseness 2 to 5 changes little.
        assert abs(series[5] - series[2]) / plateau < 0.15
