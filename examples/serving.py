#!/usr/bin/env python
"""The serving layer: submit many solves, pay the setup once.

Stands up a :class:`repro.Service`, pushes a stream of jobs through the
warm procmpi worker pool, and shows the three serving-layer effects:
setup amortisation (one pair of rank processes serves every job),
duplicate coalescing, and a bit-identical content-addressed cache hit —
plus ``config="auto"`` resolving through ``repro.autotune``.

Run:  python examples/serving.py
"""

import numpy as np

from repro import Grid3D, PipelineConfig, RelaxedSpec, Service, SolveJob
from repro.dist.procmpi import process_spawns
from repro.grid import random_field
from repro.kernels import reference_sweeps


def main() -> None:
    grid = Grid3D((16, 16, 16))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    fields = [random_field(grid.shape, np.random.default_rng(i))
              for i in range(8)]

    spawns_before = process_spawns()
    with Service(workers=2) as svc:
        # --- a batch of distinct procmpi jobs through the warm pool -----------
        futures = [svc.submit(grid, f, cfg, topology=(1, 1, 2),
                              backend="procmpi") for f in fields]
        for f, fut in zip(fields, futures):
            ref = reference_sweeps(grid, f, cfg.total_updates)
            assert np.allclose(fut.result().field, ref, atol=1e-13)
        spawned = process_spawns() - spawns_before
        print(f"{len(fields)} procmpi jobs, {spawned} rank processes "
              f"spawned (a cold loop would spawn {2 * len(fields)})  ✓")

        # --- content-addressed cache: same job again, no backend runs ---------
        warm = svc.submit(grid, fields[0], cfg, topology=(1, 1, 2),
                          backend="procmpi")
        res = warm.result()
        assert warm.cache_hit
        assert np.array_equal(res.field, futures[0].result().field)
        print("cache hit: bit-identical result, zero backend work  ✓")

        # --- config='auto': the autotuner picks the pipeline ------------------
        auto = svc.submit(grid, fields[1], "auto")
        tuned = auto.result()
        print(f"autotuned config: {tuned.config.describe()}")

        # --- map: many jobs, results in submission order ----------------------
        jobs = [SolveJob(grid=grid, field=f, config=cfg) for f in fields[:4]]
        results = svc.map(jobs)
        assert all(np.allclose(r.field,
                               reference_sweeps(grid, j.field,
                                                cfg.total_updates),
                               atol=1e-13)
                   for j, r in zip(jobs, results))
        print(f"map: {len(results)} results in order  ✓")

        st = svc.stats
        print(f"stats: submitted={st.submitted} backend_solves="
              f"{st.backend_solves} cache_hits={st.cache_hits} "
              f"coalesced={st.coalesced} sessions_created="
              f"{st.sessions_created} sessions_reused={st.sessions_reused}")


if __name__ == "__main__":
    main()
