#!/usr/bin/env python
"""Hybrid distributed run + Fig. 6-style scaling projection.

Part 1 executes the paper's *hybrid* code for real (functionally): four
SimMPI ranks, each running the pipelined temporal-blocking executor over
its trapezoid, exchanging ``h = n*t*T`` halo layers with the 3-phase
ghost-cell-expansion protocol — and checks the result against a
single-domain reference.

Part 2 asks the cluster model for the strong/weak scaling curves of the
standard and pipelined variants on the paper's QDR-IB cluster.

Run:  python examples/cluster_scaling.py
"""

import numpy as np

from repro import Grid3D, PipelineConfig, RelaxedSpec
from repro.bench import format_series
from repro.dist import ClusterModel, distributed_jacobi_pipelined, fig6_variants
from repro.grid import random_field
from repro.kernels import reference_sweeps
from repro.machine import nehalem_ep


def main() -> None:
    # --- part 1: real hybrid execution ---------------------------------------
    grid = Grid3D((24, 16, 16))
    field = random_field(grid.shape, np.random.default_rng(3))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2),
                         passes=2)
    h = cfg.updates_per_pass
    print(f"hybrid run: 2x2x1 ranks, h = {h} halo layers, "
          f"{cfg.passes} supersteps")
    res = distributed_jacobi_pipelined(grid, field, (2, 2, 1), cfg)
    ref = reference_sweeps(grid, field, cfg.total_updates)
    assert np.allclose(res.field, ref, atol=1e-13)
    print(f"distributed == single-domain reference  ✓ "
          f"({res.bytes_exchanged / 1024:.0f} KiB exchanged in "
          f"{res.messages} messages)")

    # --- part 2: scaling projection -------------------------------------------
    cm = ClusterModel(nehalem_ep())
    print("\nFig. 6 projection (GLUP/s):")
    for v in fig6_variants():
        for scaling in ("strong", "weak"):
            pts = [(p.nodes, p.glups) for p in cm.series(v, scaling=scaling)]
            print(format_series(f"{v.name} [{scaling}]", pts,
                                "nodes", "GLUP/s", floatfmt=".1f"))


if __name__ == "__main__":
    main()
