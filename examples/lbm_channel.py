#!/usr/bin/env python
"""Lattice-Boltzmann channel flow — the paper's motivating workload.

The outlook of the paper announces a temporally blocked LBM solver built
on the same principles; this example runs the D2Q9 kernel (the flow
solver those principles would block) on plane Poiseuille flow and
validates the steady velocity profile against the analytic parabola.

Run:  python examples/lbm_channel.py
"""

import numpy as np

from repro.kernels.lbm import D2Q9, poiseuille_profile


def main() -> None:
    ny, nx = 34, 16
    fx = 1e-6
    sim = D2Q9((ny, nx), tau=0.8, body_force=(fx, 0.0))
    print(f"D2Q9 channel {ny}x{nx}, tau=0.8 "
          f"(viscosity {sim.viscosity:.4f}), body force {fx:g}")

    state = sim.run_to_steady(max_steps=40000, check_every=500, tol=1e-12)
    print(f"steady after {sim.steps_done} steps; "
          f"total mass {state.total_mass:.3f} (started at {ny * nx:.1f})")

    profile = state.ux[1:-1, nx // 2]
    analytic = poiseuille_profile(ny, fx, sim.viscosity)
    err = float(np.abs(profile - analytic).max() / analytic.max())
    print("\n  y    u(simulated)   u(analytic)")
    for i in range(0, len(profile), 4):
        print(f"  {i + 1:2d}   {profile[i]:.6e}   {analytic[i]:.6e}")
    print(f"\nmax relative profile error: {err:.2%}")
    assert err < 0.05, "Poiseuille profile mismatch"
    print("parabolic Poiseuille profile reproduced  ✓")


if __name__ == "__main__":
    main()
