#!/usr/bin/env python
"""Quickstart: pipelined temporal blocking in five minutes.

Runs the paper's scheme on a small 3-D Jacobi problem, verifies it is
bit-identical to plain sweeps, then asks the calibrated machine model
what the same configuration buys on the paper's Nehalem EP node.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Grid3D, PipelineConfig, RelaxedSpec, run_pipelined
from repro.grid import random_field
from repro.kernels import reference_sweeps
from repro.machine import nehalem_ep
from repro.sim import simulate_pipelined, standard_jacobi_mlups


def main() -> None:
    # --- functional rail: the algorithm itself --------------------------------
    grid = Grid3D((48, 32, 32))
    field = random_field(grid.shape, np.random.default_rng(7))

    cfg = PipelineConfig(
        teams=2,                 # one team per shared cache (socket)
        threads_per_team=4,      # the paper's quad-core cache group
        updates_per_thread=2,    # T = 2, the paper's sweet spot
        block_size=(6, 64, 64),  # slabs along z for this small demo
        sync=RelaxedSpec(d_l=1, d_u=4),   # Eq. 3 window
        storage="compressed",    # single grid, alternating shift
    )
    print(f"running {cfg.describe()}")
    result = run_pipelined(grid, field, cfg)
    ref = reference_sweeps(grid, field, cfg.total_updates)
    assert np.allclose(result.field, ref, atol=1e-13)
    print(f"pipelined result == {cfg.total_updates} plain Jacobi sweeps  ✓")
    print(f"block operations: {result.stats.block_ops}, "
          f"cell updates: {result.stats.cells_updated:,}")

    # --- performance rail: what this buys on the paper's machine ---------------
    machine = nehalem_ep()
    print(f"\nmachine model: {machine.describe()}")
    std = standard_jacobi_mlups(machine, threads=8).mlups
    sim_cfg = PipelineConfig(teams=2, threads_per_team=4, updates_per_thread=2,
                             block_size=(20, 20, 120),
                             sync=RelaxedSpec(1, 4), storage="compressed")
    pipe = simulate_pipelined(machine, sim_cfg, (300, 300, 300)).mlups
    print(f"standard Jacobi (node) : {std:8.0f} MLUP/s")
    print(f"pipelined blocking     : {pipe:8.0f} MLUP/s "
          f"(speedup {pipe / std:.2f}x — paper: 50-60 %)")


if __name__ == "__main__":
    main()
