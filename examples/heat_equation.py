#!/usr/bin/env python
"""Solve a steady-state heat problem with temporally blocked Jacobi.

A box with one hot face (T=100) and cold walls (T=0): the Jacobi
iteration converges to the harmonic temperature field.  We advance the
solve in chunks of ``n*t*T`` sweeps using the pipelined executor —
demonstrating that the blocking machinery slots into a real
boundary-value workflow, convergence monitoring included.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro import DirichletBoundary, Grid3D, PipelineConfig, RelaxedSpec
from repro.core import PipelineExecutor
from repro.kernels import change_norm, jacobi7, jacobi_residual


def main() -> None:
    hot, cold = 100.0, 0.0
    bc = DirichletBoundary(cold, faces={(0, -1): hot})  # hot bottom face
    grid = Grid3D((24, 24, 24), boundary=bc)
    field = grid.make_field(cold)

    cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 3),
                         passes=1)
    sweeps_per_chunk = cfg.updates_per_pass
    print(f"advancing {sweeps_per_chunk} sweeps per pipelined chunk")

    tol = 1e-3
    prev = field.copy()
    for chunk in range(1, 201):
        ex = PipelineExecutor(grid, prev, cfg, jacobi7(), validate=False)
        cur = ex.run()
        delta = change_norm(cur, prev)
        if chunk % 10 == 0 or delta < tol:
            print(f"chunk {chunk:3d} ({chunk * sweeps_per_chunk:5d} sweeps): "
                  f"max change {delta:.5f}")
        prev = cur
        if delta < tol:
            break

    res = jacobi_residual(grid, prev)
    mid = prev[:, 12, 12]
    print(f"\nfinal residual: {res:.5f}")
    print("temperature along the hot->cold axis (centre column):")
    print("  " + "  ".join(f"{v:6.1f}" for v in mid[::3]))
    assert mid[0] > mid[-1], "heat must decay away from the hot face"
    assert hot > mid[0] > cold
    print("monotone decay from the hot face  ✓")


if __name__ == "__main__":
    main()
