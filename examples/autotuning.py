#!/usr/bin/env python
"""Reproduce the paper's empirical parameter tuning (Sect. 1.5).

"The optimal choices reported here have been obtained experimentally":
this example sweeps block size, T and d_u on the calibrated Nehalem
model and prints the ranked outcome — the paper's findings (b_x ≈ 120,
T = 2, d_u in 1..4, compressed grid) should rank near the top.

Run:  python examples/autotuning.py
"""

from repro.core.autotune import autotune
from repro.core.wavefront import compare_wavefront
from repro.machine import nehalem_ep


def main() -> None:
    machine = nehalem_ep()
    print(f"autotuning on: {machine.describe()}\n")
    results = autotune(
        machine,
        shape=(300, 300, 300),
        bx_values=(60, 120, 240),
        bz_values=(10, 20),
        T_values=(1, 2, 4),
        du_values=(1, 2, 4),
        storages=("compressed",),
    )
    print("top 10 configurations:")
    for r in results[:10]:
        print("  " + r.describe())
    print("\nworst 3 (for contrast):")
    for r in results[-3:]:
        print("  " + r.describe())

    best = results[0]
    print(f"\nbest: T={best.config.updates_per_thread}, "
          f"b={best.config.block_size}, {best.config.sync.describe()}")

    wf, pipe = compare_wavefront(machine)
    print(f"\nwavefront baseline (ref. [2] style): {wf:8.1f} MLUP/s")
    print(f"pipelined blocking                 : {pipe:8.1f} MLUP/s "
          f"(+{(pipe / wf - 1) * 100:.0f}% — no boundary copies, T=2, "
          "compressed grid)")


if __name__ == "__main__":
    main()
