#!/usr/bin/env python
"""Static schedule analysis: prove legality before running anything.

The relaxed-synchronisation window of Eq. 3 admits a whole family of
schedules — and most of the neighbouring parameter space is *illegal*:
windows that race, windows that deadlock on drain, traversals that
alias the compressed grid, halos too shallow for the trapezoids.  The
:mod:`repro.analysis` checker walks that boundary symbolically, with
no stencil execution at all, and returns either a certification or a
concrete witness interleaving.

This walkthrough certifies the paper's default window, rejects four
adversarial neighbours (showing each witness), pre-prunes an autotune
sweep, and runs a certified schedule with ``validate="static"`` —
the proof standing in for the runtime checks.

Run:  python examples/analysis.py
"""

import numpy as np

from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.analysis import ScheduleSpec, analyze_schedule
from repro.grid import random_field
from repro.kernels import reference_sweeps

SHAPE = (32, 32, 32)
BLOCK = (8, 64, 64)


def show(title: str, spec) -> None:
    report = analyze_schedule(spec, SHAPE)
    verdict = "CERTIFIED" if report.ok else "REJECTED"
    print(f"\n--- {title}: {verdict}")
    for f in report.findings:
        print("   ", f.describe().replace("\n", "\n    "))


def main() -> None:
    # --- the paper's schedule, proven race- and deadlock-free ---------------
    show("paper default (4 stages, d_l=1, d_u=4)",
         ScheduleSpec(teams=1, threads_per_team=4, updates_per_thread=1,
                      block_size=BLOCK, sync_kind="relaxed", d_l=1, d_u=4))

    # --- four illegal neighbours, each with a concrete witness --------------
    show("window floor removed (d_l=0): RAW race",
         ScheduleSpec(threads_per_team=4, block_size=BLOCK,
                      sync_kind="relaxed", d_l=0, d_u=4))
    show("empty window (d_l=3, d_u=1): drain deadlock",
         ScheduleSpec(threads_per_team=4, block_size=BLOCK,
                      sync_kind="relaxed", d_l=3, d_u=1))
    show("radius-2 stencil under the one-cell shift",
         ScheduleSpec(threads_per_team=4, block_size=BLOCK,
                      sync_kind="relaxed", d_l=1, d_u=4, radius=2))
    show("fused in-place engine forced to descend",
         ScheduleSpec(threads_per_team=4, block_size=BLOCK,
                      sync_kind="relaxed", d_l=1, d_u=4,
                      storage="compressed", engine="inplace",
                      inplace_step=-1))

    # --- the analyzer as an autotune pre-prune ------------------------------
    from repro.core.autotune import autotune
    from repro.machine import nehalem_ep

    results = autotune(nehalem_ep(), shape=(120, 120, 120),
                       bx_values=(60, 120), bz_values=(10,),
                       T_values=(1, 2), du_values=(1, 4), top=3)
    print("\nautotune over analyzer-certified configs only:")
    for r in results:
        print("   ", r.describe())

    # --- solve under the proof: validate='static' ---------------------------
    grid = Grid3D(SHAPE)
    field = random_field(SHAPE, np.random.default_rng(7))
    cfg = PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=2,
                         block_size=BLOCK, sync=RelaxedSpec(1, 4))
    res = solve(grid, field, cfg, validate="static")
    ref = reference_sweeps(grid, field, cfg.total_updates)
    ok = np.array_equal(res.field, ref)
    print(f"\nvalidate='static' solve bit-identical to reference: {ok}")
    assert ok


if __name__ == "__main__":
    main()
