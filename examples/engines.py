#!/usr/bin/env python
"""Execution engines: same schedule, interchangeable inner kernels.

The paper's point (Sect. 1.1/1.4) is that the temporal-blocking
*schedule* is independent of how the innermost stencil update is
executed — spatial blocking, in-place compressed-grid updates and
compiled loops only move throughput closer to the hardware limit.
This walkthrough runs one pipelined configuration through every engine
registered in this process, proves the results are bit-identical,
shows the engine riding the configuration through a distributed
backend, and finishes with the serving layer treating an engine change
as a pure cache hit.

Run:  python examples/engines.py
"""

import time

import numpy as np

from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.engine import available_engines, get_engine
from repro.grid import random_field
from repro.serve import Service


def main() -> None:
    engines = available_engines()
    print("registered engines:")
    for name in engines:
        print(f"  {name:8s} {get_engine(name).describe()}")

    # --- one schedule, every engine, identical bits ----------------------------
    grid = Grid3D((32, 32, 32))
    field = random_field(grid.shape, np.random.default_rng(5))
    cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 4),
                         storage="compressed", passes=2)
    print(f"\nsolving {cfg.describe()} with every engine:")
    reference = None
    for name in engines:
        t0 = time.perf_counter()
        res = solve(grid, field, cfg, engine=name)
        dt = time.perf_counter() - t0
        if reference is None:
            reference = res.field
            verdict = "(reference)"
        else:
            assert np.array_equal(res.field, reference)
            verdict = "bit-identical ✓"
        print(f"  {name:8s} {res.stats.cells_updated / dt / 1e6:8.1f} "
              f"Mcell/s  {verdict}")

    # --- the engine rides the config through the distributed rail --------------
    dist_cfg = PipelineConfig(teams=1, threads_per_team=2,
                              updates_per_thread=2, block_size=(4, 64, 64),
                              sync=RelaxedSpec(1, 2), engine="blocked")
    dist = solve(grid, field, dist_cfg, topology=(1, 1, 2), backend="simmpi")
    shared = solve(grid, field, dist_cfg)
    assert np.array_equal(dist.field, shared.field)
    print("\nsimmpi ranks inherited the 'blocked' engine: "
          "bit-identical to shared ✓")

    # --- engines of one semantics class share cache entries --------------------
    with Service(workers=0) as svc:
        cold = svc.submit(grid, field, dist_cfg)
        svc.drain()
        warm = svc.submit(grid, field, dist_cfg, engine="inplace")
        stats = svc.stats
        assert np.array_equal(cold.result(timeout=0).field,
                              warm.result(timeout=0).field)
    assert warm.cache_hit and stats.backend_solves == 1
    print("engine change in repro.serve: pure cache hit, zero extra "
          "backend solves ✓")


if __name__ == "__main__":
    main()
