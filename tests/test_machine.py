"""Tests for the machine substrate: topology, cache model, STREAM."""

from __future__ import annotations

import pytest

from repro.machine import (
    GB,
    MB,
    CacheLevel,
    MachineSpec,
    SharedCacheModel,
    core2_quad,
    future_manycore,
    get_preset,
    nehalem_ep,
    simulated_stream_copy,
)
from repro.machine.stream import saturation_curve


class TestTopology:
    def test_nehalem_paper_constants(self):
        m = nehalem_ep()
        assert m.sockets == 2 and m.cores_per_socket == 4
        assert m.mem_bw_socket == pytest.approx(18.5 * GB)
        assert m.mem_bw_single == pytest.approx(10.0 * GB)
        assert m.shared_cache.size == 8 * MB
        assert m.shared_cache.bandwidth == pytest.approx(80 * GB)
        # Ms/Ms,1 ~ 2, Mc/Ms ~ 4 (Sect. 1.4).
        assert 1.7 < m.bandwidth_starvation < 2.1
        assert 3.9 < m.cache_memory_ratio < 4.7

    def test_core_socket_mapping(self):
        m = nehalem_ep()
        assert m.core_socket(0) == 0
        assert m.core_socket(3) == 0
        assert m.core_socket(4) == 1
        with pytest.raises(IndexError):
            m.core_socket(8)

    def test_barrier_cost_grows_across_sockets(self):
        m = nehalem_ep()
        assert m.barrier_cost(8, 2) > m.barrier_cost(4, 1)
        assert m.barrier_cost(8, 2) > 4 * m.barrier_cost(8, 1) * 0.9

    def test_coherence_latency(self):
        m = nehalem_ep()
        assert m.coherence_latency(0, 0) < m.coherence_latency(0, 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="Ms,1 cannot exceed"):
            MachineSpec(
                name="bad", sockets=1, cores_per_socket=2, clock_hz=2e9,
                caches=(CacheLevel("L3", 4 * MB, 2, 40 * GB),),
                mem_bw_socket=10 * GB, mem_bw_single=20 * GB,
                remote_bw=10 * GB, core_mlups=400e6,
            )
        with pytest.raises(ValueError, match="outer cache level"):
            MachineSpec(
                name="bad", sockets=1, cores_per_socket=4, clock_hz=2e9,
                caches=(CacheLevel("L2", 4 * MB, 2, 40 * GB),),
                mem_bw_socket=10 * GB, mem_bw_single=8 * GB,
                remote_bw=10 * GB, core_mlups=400e6,
            )

    def test_presets(self):
        assert get_preset("core2_quad").name.startswith("Core 2")
        with pytest.raises(KeyError):
            get_preset("epyc")
        # Core 2 is bandwidth-starved, the future chip even more so per-core.
        assert core2_quad().bandwidth_starvation < 1.2
        assert future_manycore().cores_per_socket == 16


class TestStream:
    def test_single_thread_capped(self):
        m = nehalem_ep()
        r = simulated_stream_copy(m, 1)
        assert r.bandwidth == pytest.approx(
            m.mem_bw_single * m.stream_efficiency)

    def test_socket_saturation(self):
        m = nehalem_ep()
        r4 = simulated_stream_copy(m, 4)
        assert r4.bandwidth == pytest.approx(
            m.mem_bw_socket * m.stream_efficiency)

    def test_node_saturation_compact_fill(self):
        m = nehalem_ep()
        r8 = simulated_stream_copy(m, 8)
        assert r8.bandwidth == pytest.approx(
            m.mem_bw_node * m.stream_efficiency)

    def test_spread_vs_compact(self):
        m = nehalem_ep()
        spread = simulated_stream_copy(m, 2, spread_sockets=True)
        compact = simulated_stream_copy(m, 2, spread_sockets=False)
        assert spread.bandwidth > compact.bandwidth  # two controllers active

    def test_curve_monotone(self):
        m = nehalem_ep()
        curve = saturation_curve(m)
        bws = [r.bandwidth for r in curve]
        assert all(b2 >= b1 - 1e-6 for b1, b2 in zip(bws, bws[1:]))

    def test_invalid_thread_counts(self):
        m = nehalem_ep()
        with pytest.raises(ValueError):
            simulated_stream_copy(m, 0)
        with pytest.raises(ValueError):
            simulated_stream_copy(m, 9)


class TestCacheModel:
    def test_hit_and_miss(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        hit, ev = c.touch("a", 400)
        assert not hit and not ev
        hit, ev = c.touch("a", 400)
        assert hit
        assert c.hit_rate == 0.5

    def test_lru_eviction_order(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        c.touch("a", 400)
        c.touch("b", 400)
        c.touch("a", 400)        # refresh a -> b is LRU
        _, ev = c.touch("c", 400)
        assert [e.key for e in ev] == ["b"]

    def test_dirty_writeback_bytes(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        c.touch("a", 600, dirty_bytes=300)
        _, ev = c.touch("b", 600)
        assert ev[0].dirty_bytes == 300

    def test_oversized_block_streams_alone(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        c.touch("a", 400)
        _, ev = c.touch("big", 5000)
        assert c.contains("big")
        assert not c.contains("a")

    def test_forced_evict_and_flush(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        c.touch("a", 300, dirty_bytes=100)
        c.touch("b", 300)
        rec = c.evict("a")
        assert rec is not None and rec.dirty_bytes == 100
        assert c.evict("a") is None
        rest = c.flush()
        assert [e.key for e in rest] == ["b"]
        assert c.used_bytes == 0

    def test_mark_dirty(self):
        c = SharedCacheModel(1000, usable_fraction=1.0)
        c.touch("a", 300)
        c.mark_dirty("a", 250)
        _, ev = c.touch("b", 900)
        assert ev[0].dirty_bytes == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedCacheModel(0)
        with pytest.raises(ValueError):
            SharedCacheModel(100, usable_fraction=0.0)
        c = SharedCacheModel(100)
        with pytest.raises(ValueError):
            c.touch("a", 0)
