"""Coverage for the repro.perf subsystem.

Registry resolution, runner statistics on a stub timer, results-store
JSON round-trips, compare/regression verdicts, and the CLI contract
(``compare`` exits non-zero on an injected >10 % slowdown).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.perf import (
    DEFAULT_THRESHOLD,
    Metric,
    RunRecord,
    Scenario,
    SchemaError,
    StoreError,
    WallStats,
    all_scenarios,
    archive_document,
    compare_documents,
    compare_to_model,
    find_scenario,
    get_scenario,
    load_document,
    make_document,
    records_of,
    regressions,
    register,
    render_deltas,
    run_scenario,
    save_document,
    select_scenarios,
    unregister,
)
from repro.perf.cli import main
from repro.perf.scenarios import SUITES


def _stub(name, value=100.0, suites=("quick",), gate=True,
          higher_is_better=True, model=None, setup=None):
    return Scenario(
        name=name,
        kind="kernel",
        suites=suites,
        fn=(lambda state=None: value) if setup is None
        else (lambda state: (state, value)),
        summarize=lambda payload, wall: {
            "metric": Metric(value, unit="u", gate=gate,
                             higher_is_better=higher_is_better)},
        params={"n": 1},
        setup=setup,
        model=model,
    )


@pytest.fixture()
def stub():
    sc = register(_stub("stub@test"))
    yield sc
    unregister("stub@test")


class TestRegistry:
    def test_builtin_matrix_is_nonempty_per_suite(self):
        for suite in SUITES:
            names = {sc.name for sc in select_scenarios(suite=suite)}
            assert any(n.startswith("fig3_left") for n in names)
            assert any(n.startswith("solve_simmpi") for n in names), suite
            # The process-backed rail measures in every suite too.
            assert f"solve_procmpi@{suite}" in names
            # Scale-independent models appear in every suite.
            assert {"fig5", "fig6"} <= names

    def test_procmpi_scenarios_declare_their_backend(self):
        for suite in SUITES:
            sc = get_scenario(f"solve_procmpi@{suite}")
            assert sc.kind == "solver"
            assert sc.params["backend"] == "procmpi"
            assert tuple(sc.params["topology"]) >= (1, 1, 1)

    def test_get_scenario_exact(self, stub):
        assert get_scenario("stub@test") is stub

    def test_unknown_scenario_suggests_siblings(self):
        with pytest.raises(KeyError, match="fig3_left"):
            get_scenario("fig3_left@nope")

    def test_find_scenario_prefers_scale_variant(self):
        assert find_scenario("fig3_left", "quick").name == "fig3_left@quick"
        # Scale-independent scenarios fall back to the bare name.
        assert find_scenario("fig5", "quick").name == "fig5"

    def test_duplicate_registration_rejected(self, stub):
        with pytest.raises(ValueError, match="already registered"):
            register(_stub("stub@test"))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suites"):
            register(_stub("bad@test", suites=("quickest",)))
        with pytest.raises(ValueError, match="unknown suite"):
            select_scenarios(suite="quickest")

    def test_pattern_selection(self, stub):
        assert [sc.name for sc in select_scenarios(pattern="stub@*")] \
            == ["stub@test"]

    def test_registry_is_sorted(self):
        names = [sc.name for sc in all_scenarios()]
        assert names == sorted(names)


class TestRunner:
    def test_stats_from_scripted_clock(self, stub):
        # Two timer calls per repeat: durations 1.0, 3.0, 2.0.
        ticks = iter([0.0, 1.0, 10.0, 13.0, 20.0, 22.0])
        rec = run_scenario(stub, repeats=3, warmup=0,
                           timer=lambda: next(ticks))
        assert rec.wall.repeats == 3
        assert rec.wall.min == 1.0
        assert rec.wall.median == 2.0
        assert rec.wall.mean == pytest.approx(2.0)
        assert rec.wall.stddev == pytest.approx((2 / 3) ** 0.5)

    def test_warmup_not_timed(self):
        calls = []
        counting = Scenario(
            name="count@test", kind="kernel", suites=("quick",),
            fn=lambda: calls.append(1),
            summarize=lambda p, w: {})
        ticks = iter(float(i) for i in range(100))
        rec = run_scenario(counting, repeats=2, warmup=3,
                           timer=lambda: next(ticks))
        assert len(calls) == 5  # 3 warmups + 2 timed
        assert rec.wall.warmup == 3

    def test_setup_runs_outside_timed_region(self):
        events = []
        sc = Scenario(
            name="setup@test", kind="kernel", suites=("quick",),
            setup=lambda: events.append("setup") or "state",
            fn=lambda state: events.append(f"run:{state}"),
            summarize=lambda p, w: {})
        rec = run_scenario(sc, repeats=2, warmup=1)
        assert events == ["setup", "run:state", "run:state", "run:state"]
        assert rec.scenario == "setup@test"

    def test_invalid_repeats_rejected(self, stub):
        with pytest.raises(ValueError):
            run_scenario(stub, repeats=0)
        with pytest.raises(ValueError):
            run_scenario(stub, warmup=-1)


def _doc(values, suite="quick", gate=True, higher_is_better=True):
    records = [
        RunRecord(scenario=name, kind="kernel",
                  params={"n": 1},
                  wall=WallStats.from_samples([0.5, 0.6, 0.7], warmup=1),
                  metrics={m: Metric(v, unit="u", gate=gate,
                                     higher_is_better=higher_is_better)
                           for m, v in metrics.items()})
        for name, metrics in values.items()]
    return make_document(suite, records, environment={"numpy": "test"})


class TestStore:
    def test_json_round_trip(self, tmp_path):
        doc = _doc({"a@quick": {"m1": 1.5, "m2": 2.5}})
        path = save_document(doc, tmp_path / "BENCH_quick.json")
        loaded = load_document(path)
        assert loaded == doc
        (rec,) = records_of(loaded)
        assert rec.metrics["m1"].value == 1.5
        assert rec.wall.median == 0.6
        assert rec.wall.stddev > 0

    def test_schema_version_enforced(self, tmp_path):
        doc = _doc({"a@quick": {"m": 1.0}})
        doc["schema"] = "repro.perf/999"
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(doc))
        with pytest.raises(StoreError, match="repro.perf/999"):
            load_document(p)

    def test_malformed_json_and_records_rejected(self, tmp_path):
        p = tmp_path / "broken.json"
        p.write_text("{not json")
        with pytest.raises(StoreError, match="not valid JSON"):
            load_document(p)
        doc = _doc({"a@quick": {"m": 1.0}})
        del doc["records"][0]["scenario"]
        p2 = tmp_path / "norecord.json"
        p2.write_text(json.dumps(doc))
        with pytest.raises(SchemaError):
            load_document(p2)

    def test_nan_metric_round_trips_as_strict_json(self, tmp_path):
        import math
        rec = RunRecord(scenario="nan@quick", kind="kernel",
                        wall=WallStats.from_samples([0.1]),
                        metrics={"m": Metric(float("nan"), gate=False)})
        path = save_document(make_document("quick", [rec]),
                             tmp_path / "nan.json")
        # Strict parsers must accept the artifact (no bare NaN token).
        assert "NaN" not in path.read_text()
        (loaded,) = records_of(load_document(path))
        assert math.isnan(loaded.metrics["m"].value)

    def test_archive_never_clobbers(self, tmp_path):
        doc = _doc({"a@quick": {"m": 1.0}})
        first = archive_document(doc, tmp_path)
        second = archive_document(doc, tmp_path)
        assert first != second
        assert first.exists() and second.exists()
        assert first.name.startswith("quick-")


class TestCompare:
    def test_identical_docs_all_ok(self):
        doc = _doc({"a@quick": {"m": 100.0}})
        deltas = compare_documents(doc, doc)
        assert [d.status for d in deltas] == ["ok"]
        assert not regressions(deltas)

    def test_slowdown_beyond_threshold_regresses(self):
        base = _doc({"a@quick": {"m": 100.0}})
        new = _doc({"a@quick": {"m": 89.0}})  # -11 % < -10 %
        deltas = compare_documents(base, new, threshold=DEFAULT_THRESHOLD)
        (d,) = regressions(deltas)
        assert d.scenario == "a@quick" and d.metric == "m"
        assert d.rel == pytest.approx(-0.11)

    def test_slowdown_within_threshold_ok(self):
        base = _doc({"a@quick": {"m": 100.0}})
        new = _doc({"a@quick": {"m": 91.0}})  # -9 %
        assert not regressions(compare_documents(base, new))

    def test_speedup_reported_as_improved(self):
        base = _doc({"a@quick": {"m": 100.0}})
        new = _doc({"a@quick": {"m": 130.0}})
        (d,) = compare_documents(base, new)
        assert d.status == "improved"

    def test_lower_is_better_direction(self):
        base = _doc({"a@quick": {"bytes": 1000.0}}, higher_is_better=False)
        grew = _doc({"a@quick": {"bytes": 1200.0}}, higher_is_better=False)
        (d,) = regressions(compare_documents(base, grew))
        assert d.rel == pytest.approx(0.2)
        shrank = _doc({"a@quick": {"bytes": 500.0}}, higher_is_better=False)
        assert not regressions(compare_documents(base, shrank))

    def test_gated_metric_turning_nan_fails_the_gate(self):
        base = _doc({"a@quick": {"m": 100.0}})
        new = _doc({"a@quick": {"m": float("nan")}})
        (d,) = regressions(compare_documents(base, new))
        assert d.metric == "m" and d.rel is None
        # ... and NaN -> NaN stays quiet, NaN -> finite reads as improved.
        assert not regressions(compare_documents(new, new))
        (back,) = compare_documents(new, base)
        assert back.status == "improved"

    def test_zero_base_direction(self):
        none = _doc({"a@quick": {"bytes": 0.0}}, higher_is_better=False)
        some = _doc({"a@quick": {"bytes": 64.0}}, higher_is_better=False)
        # Traffic appearing out of nowhere is a regression...
        (d,) = regressions(compare_documents(none, some))
        assert d.new == 64.0
        # ... throughput appearing is an improvement, 0 -> 0 is ok.
        up = compare_documents(_doc({"a@quick": {"m": 0.0}}),
                               _doc({"a@quick": {"m": 5.0}}))
        assert [d.status for d in up] == ["improved"]
        assert not regressions(compare_documents(none, none))

    def test_added_and_removed_never_gate(self):
        base = _doc({"a@quick": {"m": 1.0}})
        new = _doc({"b@quick": {"m": 1.0}})
        statuses = {d.scenario: d.status for d in
                    compare_documents(base, new)}
        assert statuses == {"a@quick": "removed", "b@quick": "added"}
        assert not regressions(compare_documents(base, new))

    def test_non_gated_metrics_skipped_by_default(self):
        base = _doc({"a@quick": {"m": 100.0}}, gate=False)
        new = _doc({"a@quick": {"m": 10.0}}, gate=False)
        assert compare_documents(base, new) == []
        deltas = compare_documents(base, new, gate_only=False)
        assert [d.status for d in deltas] == ["regressed"]

    def test_wall_comparison_opt_in(self):
        base = _doc({"a@quick": {"m": 100.0}})
        new = _doc({"a@quick": {"m": 100.0}})
        deltas = compare_documents(base, new, include_wall=True)
        assert any(d.metric == "wall/median" for d in deltas)

    def test_render_deltas_mentions_every_status(self):
        base = _doc({"a@quick": {"m": 100.0}, "gone@quick": {"m": 1.0}})
        new = _doc({"a@quick": {"m": 50.0}})
        text = render_deltas(compare_documents(base, new))
        assert "regressed" in text and "removed" in text
        assert render_deltas([]) == "(no comparable metrics)"

    def test_compare_to_model(self):
        sc = register(_stub(
            "modelled@test", value=90.0,
            model=lambda: {"metric": 100.0, "unmeasured": 5.0}))
        try:
            rec = run_scenario(sc, repeats=1, warmup=0)
            doc = make_document("quick", [rec])
            deltas = compare_to_model(doc, threshold=0.15)
            by_metric = {d.metric: d for d in deltas}
            assert by_metric["metric"].status == "ok"
            assert by_metric["metric"].rel == pytest.approx(-0.1)
            assert by_metric["unmeasured"].status == "removed"
            # Tighter threshold flips the verdict.
            tight = compare_to_model(doc, threshold=0.05)
            assert {d.status for d in tight if d.metric == "metric"} \
                == {"deviates"}
        finally:
            unregister("modelled@test")


class TestCLI:
    def _write(self, tmp_path, name, value):
        return save_document(_doc({"a@quick": {"m": value}}),
                             tmp_path / name)

    def test_compare_ok_exit_zero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 100.0)
        b = self._write(tmp_path, "b.json", 95.0)
        assert main(["compare", str(a), str(b)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 100.0)
        b = self._write(tmp_path, "b.json", 85.0)  # -15 % > 10 % gate
        assert main(["compare", str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_threshold_flag(self, tmp_path):
        a = self._write(tmp_path, "a.json", 100.0)
        b = self._write(tmp_path, "b.json", 85.0)
        assert main(["compare", "--threshold", "0.2", str(a), str(b)]) == 0

    def test_compare_missing_file_is_error(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 100.0)
        assert main(["compare", str(a), str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_writes_schema_versioned_doc(self, tmp_path, capsys):
        sc = register(_stub("clirun@test"))
        try:
            out = tmp_path / "BENCH_quick.json"
            code = main(["run", "--suite", "quick", "--filter",
                         "clirun@*", "--repeats", "2", "--out", str(out),
                         "--archive-dir", str(tmp_path / "archive")])
            assert code == 0
            doc = load_document(out)
            assert doc["suite"] == "quick"
            assert doc["run_config"]["repeats"] == 2
            assert doc["environment"]["numpy"]
            (rec,) = records_of(doc)
            assert rec.scenario == "clirun@test"
            assert list((tmp_path / "archive").glob("quick-*.json"))
        finally:
            unregister("clirun@test")

    def test_run_empty_selection_is_usage_error(self, tmp_path, capsys):
        code = main(["run", "--suite", "quick", "--filter", "nope*",
                     "--out", str(tmp_path / "x.json")])
        assert code == 2
        assert "no scenarios match" in capsys.readouterr().err

    def test_figure_params_are_the_generator_call(self):
        # The persisted metadata must be the kwargs that actually ran.
        sc = get_scenario("model_validation@quick")
        rec = run_scenario(sc, repeats=1, warmup=0)
        assert tuple(rec.params["T_values"]) == (1, 2, 4)
        assert {f"T={t}/sim_mlups" for t in rec.params["T_values"]} \
            <= set(rec.metrics)

    def test_list_shows_matrix(self, capsys):
        assert main(["list", "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        assert "fig3_left@quick" in out and "solve_simmpi@quick" in out

    def test_report_renders_doc(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", 100.0)
        assert main(["report", str(a)]) == 0
        out = capsys.readouterr().out
        assert "a@quick" in out and "wall median" in out

    def test_report_renders_procmpi_entries_with_nan_and_zero(self, tmp_path,
                                                              capsys):
        # A procmpi scenario record with a NaN throughput (unmeasurable
        # host clock) and a zero traffic counter must render, not crash,
        # and keep the gate column honest.
        rec = RunRecord(
            scenario="solve_procmpi@quick", kind="solver",
            params={"backend": "procmpi", "topology": (2, 1, 1)},
            wall=WallStats.from_samples([0.2, 0.3], warmup=1),
            metrics={
                "mcups": Metric(float("nan"), unit="Mcell/s", gate=False),
                "bytes_exchanged": Metric(0.0, unit="B",
                                          higher_is_better=False),
            })
        p = save_document(make_document("quick", [rec]),
                          tmp_path / "proc.json")
        assert main(["report", str(p)]) == 0
        out = capsys.readouterr().out
        assert "solve_procmpi@quick" in out
        assert "bytes_exchanged" in out and "nan" in out.lower()

    def test_compare_zero_baseline_procmpi_counters(self, tmp_path, capsys):
        # Zero-baseline edge on the deterministic procmpi counters: the
        # degenerate (1,1,1) run exchanges nothing; traffic appearing in
        # the candidate must fail the gate even though no finite relative
        # change exists.
        base = _doc({"solve_procmpi@quick": {"bytes_exchanged": 0.0}},
                    higher_is_better=False)
        new = _doc({"solve_procmpi@quick": {"bytes_exchanged": 4096.0}},
                   higher_is_better=False)
        a = save_document(base, tmp_path / "base.json")
        b = save_document(new, tmp_path / "new.json")
        assert main(["compare", str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out
        # ... and the reverse direction (traffic disappearing) passes.
        assert main(["compare", str(b), str(a)]) == 0

    def test_compare_model_nan_and_zero_prediction_edges(self):
        # A zero model prediction has no finite relative error and a NaN
        # measurement compares false against any threshold: both must
        # surface as 'deviates' (never 'ok', never a crash).
        sc = register(_stub(
            "proc_model@test", value=float("nan"),
            model=lambda: {"metric": 100.0, "zero_pred": 0.0}))
        try:
            rec = run_scenario(sc, repeats=1, warmup=0)
            rec.metrics["zero_pred"] = Metric(5.0, unit="u")
            doc = make_document("quick", [rec])
            by_metric = {d.metric: d for d in compare_to_model(doc)}
            nan_delta = by_metric["metric"]
            assert nan_delta.status == "deviates"
            assert math.isnan(nan_delta.new)
            zero_delta = by_metric["zero_pred"]
            assert zero_delta.status == "deviates"
            assert zero_delta.rel is None and zero_delta.base == 0.0
        finally:
            unregister("proc_model@test")

    def test_model_compare_single_file(self, tmp_path, capsys):
        sc = register(_stub("climodel@test", value=100.0,
                            model=lambda: {"metric": 100.0}))
        try:
            rec = run_scenario(sc, repeats=1, warmup=0)
            p = save_document(make_document("quick", [rec]),
                              tmp_path / "m.json")
            assert main(["compare", "--model", str(p)]) == 0
            assert main(["compare", "--model", "--strict", str(p)]) == 0
            # Two positional files together with --model is a usage error.
            assert main(["compare", "--model", str(p), str(p)]) == 2
        finally:
            unregister("climodel@test")
