"""Unified front-end: backend dispatch, result parity, error paths."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import (
    BACKENDS,
    Grid3D,
    PipelineConfig,
    PipelineResult,
    RelaxedSpec,
    SolveResult,
    run_pipelined,
    solve,
)
from repro.dist.solver import distributed_jacobi_sweeps
from repro.grid import random_field
from repro.kernels import reference_sweeps

RNG = np.random.default_rng(17)


def small_problem():
    grid = Grid3D((16, 12, 12))
    field = random_field(grid.shape, RNG)
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(3, 64, 64), sync=RelaxedSpec(1, 2),
                         passes=2)
    return grid, field, cfg


class TestDispatch:
    def test_default_is_shared(self):
        grid, field, cfg = small_problem()
        res = solve(grid, field, cfg)
        assert res.backend == "shared"
        assert res.n_ranks == 1 and res.topology == (1, 1, 1)
        np.testing.assert_allclose(
            res.field, reference_sweeps(grid, field, cfg.total_updates),
            rtol=0, atol=1e-13)

    def test_simmpi_dispatch(self):
        grid, field, cfg = small_problem()
        res = solve(grid, field, cfg, topology=(2, 1, 1), backend="simmpi")
        assert res.backend == "simmpi"
        assert res.n_ranks == 2 and res.topology == (2, 1, 1)
        assert res.halo == cfg.updates_per_pass
        np.testing.assert_allclose(
            res.field, reference_sweeps(grid, field, cfg.total_updates),
            rtol=0, atol=1e-13)

    def test_procmpi_dispatch(self):
        # The PR's acceptance shape: procmpi on (1, 1, 2) must be
        # allclose to the shared backend.
        grid, field, cfg = small_problem()
        shared = solve(grid, field, cfg)
        res = solve(grid, field, cfg, topology=(1, 1, 2), backend="procmpi")
        assert res.backend == "procmpi"
        assert res.n_ranks == 2 and res.topology == (1, 1, 2)
        assert res.halo == cfg.updates_per_pass
        np.testing.assert_allclose(res.field, shared.field,
                                   rtol=0, atol=1e-13)

    def test_backends_bit_identical_on_trivial_topology(self):
        grid, field, cfg = small_problem()
        shared = solve(grid, field, cfg, backend="shared")
        for backend in ("simmpi", "procmpi"):
            dist = solve(grid, field, cfg, topology=(1, 1, 1),
                         backend=backend)
            assert np.array_equal(shared.field, dist.field), backend

    def test_run_pipelined_is_the_shared_backend(self):
        grid, field, cfg = small_problem()
        a = run_pipelined(grid, field, cfg)
        b = solve(grid, field, cfg)
        assert isinstance(a, SolveResult)
        assert np.array_equal(a.field, b.field)

    def test_pipeline_result_alias(self):
        assert PipelineResult is SolveResult


class TestResultParity:
    def test_same_fields_both_backends(self):
        grid, field, cfg = small_problem()
        shared = solve(grid, field, cfg)
        dist = solve(grid, field, cfg, topology=(2, 1, 1), backend="simmpi")
        names = {f.name for f in dataclasses.fields(SolveResult)}
        for res in (shared, dist):
            for name in names:
                assert hasattr(res, name)
        assert shared.levels_advanced == dist.levels_advanced
        assert shared.messages == 0 and shared.bytes_exchanged == 0
        assert dist.messages > 0 and dist.bytes_exchanged > 0

    def test_sweeps_solver_returns_solve_result(self):
        grid, field, _ = small_problem()
        res = distributed_jacobi_sweeps(grid, field, (2, 1, 1),
                                        supersteps=1, halo=2)
        assert isinstance(res, SolveResult)
        assert res.stats is None and res.config is None
        assert res.levels_advanced == 2
        assert res.cells_updated == 0  # no executor stats to count

    def test_stats_aggregated_across_ranks(self):
        grid, field, cfg = small_problem()
        shared = solve(grid, field, cfg)
        dist = solve(grid, field, cfg, topology=(2, 1, 1), backend="simmpi")
        # Trapezoid ghost updates are performed redundantly by both ranks,
        # so the distributed run does strictly more cell updates.
        assert dist.cells_updated > shared.cells_updated


class TestErrorPaths:
    def test_unknown_backend(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match="backend"):
            solve(grid, field, cfg, backend="mpi")

    def test_backends_constant(self):
        assert set(BACKENDS) == {"shared", "threads", "simmpi", "procmpi"}

    def test_unknown_transport_at_solver_level(self):
        grid, field, _ = small_problem()
        with pytest.raises(ValueError, match="transport"):
            distributed_jacobi_sweeps(grid, field, (2, 1, 1), supersteps=1,
                                      halo=2, transport="smoke-signals")

    def test_shared_rejects_nontrivial_topology(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match="single-process"):
            solve(grid, field, cfg, topology=(2, 1, 1), backend="shared")

    def test_bad_topology_shape(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match="triple"):
            solve(grid, field, cfg, topology=(2, 1), backend="simmpi")

    def test_nonpositive_topology(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match=">= 1"):
            solve(grid, field, cfg, topology=(2, 0, 1), backend="simmpi")

    def test_oversubscribed_topology(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match="oversubscribe"):
            solve(grid, field, cfg, topology=(1, 1, 64), backend="simmpi")
