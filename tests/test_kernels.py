"""Tests for stencil kernels, reference sweeps and convergence tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import DirichletBoundary, Grid3D, random_field
from repro.kernels import (
    StarStencil,
    anisotropic_jacobi,
    change_norm,
    jacobi5_2d,
    jacobi7,
    jacobi_residual,
    jacobi_sweep_blocked,
    jacobi_sweep_padded,
    reference_sweeps,
    solve_to_tolerance,
)
from repro.kernels.reference import reference_sweep_region

RNG = np.random.default_rng(11)


class TestStarStencil:
    def test_jacobi7_offsets_and_weights(self):
        st = jacobi7()
        assert st.n_neighbors == 6
        assert st.center_weight == 0.0
        assert abs(sum(st.weights.values()) - 1.0) < 1e-15

    def test_rejects_diagonal_offsets(self):
        with pytest.raises(ValueError, match="radius-1 axis offset"):
            StarStencil(weights={(1, 1, 0): 0.5})

    def test_rejects_radius_two(self):
        with pytest.raises(ValueError):
            StarStencil(weights={(2, 0, 0): 0.5})

    def test_flops_per_cell(self):
        assert jacobi7().flops_per_cell == 11
        assert jacobi5_2d().flops_per_cell == 7
        assert jacobi7().damped(0.5).flops_per_cell == 13

    def test_apply_matches_manual(self):
        st = jacobi7()
        c = np.zeros((2, 2, 2))
        neigh = [np.full((2, 2, 2), float(i)) for i in range(6)]
        out = st.apply(c, neigh)
        np.testing.assert_allclose(out, np.full((2, 2, 2), 15.0 / 6.0))

    def test_apply_wrong_arity(self):
        with pytest.raises(ValueError):
            jacobi7().apply(np.zeros((1, 1, 1)), [np.zeros((1, 1, 1))] * 5)

    def test_damped_weights_sum(self):
        st = jacobi7().damped(0.7)
        total = sum(st.weights.values()) + st.center_weight
        assert abs(total - 1.0) < 1e-14

    def test_scaled(self):
        st = jacobi7().scaled(6.0)
        assert all(abs(w - 1.0) < 1e-15 for w in st.weights.values())


class TestSweeps:
    def test_sweep_matches_eq1_by_hand(self):
        grid = Grid3D((3, 3, 3))
        f = np.zeros(grid.shape)
        f[1, 1, 1] = 6.0
        out = reference_sweeps(grid, f, 1)
        # Each face neighbor of the centre receives 1.0; centre becomes 0.
        assert out[1, 1, 1] == 0.0
        assert out[0, 1, 1] == 1.0
        assert out[1, 0, 1] == 1.0
        assert out[1, 1, 0] == 1.0
        assert out[2, 1, 1] == 1.0

    def test_boundary_enters_update(self):
        bc = DirichletBoundary(6.0)
        grid = Grid3D((1, 1, 1), boundary=bc)
        out = reference_sweeps(grid, np.zeros((1, 1, 1)), 1)
        assert out[0, 0, 0] == pytest.approx(6.0)

    def test_zero_sweeps_identity(self):
        grid = Grid3D((4, 4, 4))
        f = random_field(grid.shape, RNG)
        np.testing.assert_array_equal(reference_sweeps(grid, f, 0), f)

    def test_negative_sweeps_rejected(self):
        grid = Grid3D((4, 4, 4))
        with pytest.raises(ValueError):
            reference_sweeps(grid, np.zeros(grid.shape), -1)

    def test_blocked_sweep_equals_plain(self):
        grid = Grid3D((12, 10, 9))
        f = random_field(grid.shape, RNG)
        src = grid.padded(f)
        plain = jacobi_sweep_padded(src)
        blocked = np.empty_like(src)
        jacobi_sweep_blocked(src, blocked, (5, 3, 4))
        np.testing.assert_array_equal(plain, blocked)

    @pytest.mark.parametrize("block", [(1, 1, 1), (100, 100, 100), (2, 7, 3)])
    def test_blocked_sweep_any_block(self, block):
        grid = Grid3D((6, 6, 6))
        f = random_field(grid.shape, RNG)
        src = grid.padded(f)
        plain = jacobi_sweep_padded(src)
        blocked = jacobi_sweep_blocked(src, np.empty_like(src), block)
        np.testing.assert_array_equal(plain, blocked)

    def test_region_sweep_partial(self):
        grid = Grid3D((6, 6, 6))
        f = random_field(grid.shape, RNG)
        src = grid.padded(f)
        dst = src.copy()
        reference_sweep_region(src, dst, (0, 0, 0), (3, 6, 6))
        full = jacobi_sweep_padded(src)
        np.testing.assert_array_equal(dst[1:4, 1:7, 1:7], full[1:4, 1:7, 1:7])
        np.testing.assert_array_equal(dst[4:7], src[4:7])

    def test_region_sweep_empty_region_noop(self):
        grid = Grid3D((4, 4, 4))
        src = grid.padded(random_field(grid.shape, RNG))
        dst = src.copy()
        reference_sweep_region(src, dst, (2, 0, 0), (2, 4, 4))
        np.testing.assert_array_equal(dst, src)

    def test_anisotropic_conserves_constant(self):
        # With weights summing to 1, a constant field stays constant.
        bc = DirichletBoundary(3.0)
        grid = Grid3D((5, 5, 5), boundary=bc)
        f = np.full(grid.shape, 3.0)
        out = reference_sweeps(grid, f, 4, stencil=anisotropic_jacobi(1, 2, 3))
        np.testing.assert_allclose(out, f)


class TestConvergence:
    def test_change_norm(self):
        a = np.zeros((2, 2, 2))
        b = np.ones((2, 2, 2))
        assert change_norm(a, b) == 1.0
        assert change_norm(a, b, ord=2) == pytest.approx(np.sqrt(8.0))

    def test_residual_zero_at_fixed_point(self):
        bc = DirichletBoundary(2.0)
        grid = Grid3D((4, 4, 4), boundary=bc)
        f = np.full(grid.shape, 2.0)
        assert jacobi_residual(grid, f) == pytest.approx(0.0, abs=1e-14)

    def test_solver_converges_to_boundary_constant(self):
        bc = DirichletBoundary(1.0)
        grid = Grid3D((6, 6, 6), boundary=bc)
        hist = solve_to_tolerance(grid, np.zeros(grid.shape), tol=1e-10,
                                  max_sweeps=5000, sweep_batch=10)
        assert hist.converged
        np.testing.assert_allclose(hist.field, np.ones(grid.shape), atol=1e-7)

    def test_contraction_rate_below_one(self):
        grid = Grid3D((6, 6, 6))
        f = random_field(grid.shape, RNG)
        hist = solve_to_tolerance(grid, f, tol=1e-12, max_sweeps=500)
        assert 0.0 < hist.contraction_rate() < 1.0

    def test_callback_invoked(self):
        grid = Grid3D((4, 4, 4))
        seen = []
        solve_to_tolerance(grid, random_field(grid.shape, RNG), tol=1e-3,
                           max_sweeps=50,
                           callback=lambda k, n: seen.append((k, n)))
        assert seen

    def test_not_converged_flag(self):
        grid = Grid3D((8, 8, 8))
        hist = solve_to_tolerance(grid, random_field(grid.shape, RNG),
                                  tol=1e-300, max_sweeps=3)
        assert not hist.converged
        assert hist.sweeps == 3

    def test_bad_args(self):
        grid = Grid3D((4, 4, 4))
        with pytest.raises(ValueError):
            solve_to_tolerance(grid, np.zeros(grid.shape), tol=0.0)
        with pytest.raises(ValueError):
            solve_to_tolerance(grid, np.zeros(grid.shape), sweep_batch=0)
