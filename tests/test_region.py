"""Unit and property tests for the box algebra (repro.grid.region)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.region import Box, bounding_box, boxes_are_disjoint, boxes_partition


def boxes(max_coord=12):
    """Strategy generating (possibly empty) small boxes."""
    coord = st.integers(-max_coord, max_coord)
    return st.builds(
        lambda a, b: Box(tuple(min(x, y) for x, y in zip(a, b)),
                         tuple(max(x, y) for x, y in zip(a, b))),
        st.tuples(coord, coord, coord),
        st.tuples(coord, coord, coord),
    )


class TestBasics:
    def test_from_shape_and_ncells(self):
        b = Box.from_shape((3, 4, 5))
        assert b.ncells == 60
        assert b.shape == (3, 4, 5)
        assert not b.is_empty

    def test_empty_box(self):
        assert Box.empty().is_empty
        assert Box.empty().ncells == 0
        assert Box((0, 0, 0), (2, 0, 2)).is_empty

    def test_contains(self):
        b = Box((1, 1, 1), (4, 4, 4))
        assert b.contains((1, 1, 1))
        assert b.contains((3, 3, 3))
        assert not b.contains((4, 3, 3))
        assert not b.contains((0, 3, 3))

    def test_contains_box_empty_always(self):
        assert Box((0, 0, 0), (2, 2, 2)).contains_box(Box.empty())

    def test_shift(self):
        b = Box((0, 0, 0), (2, 2, 2)).shift((1, -1, 0))
        assert b == Box((1, -1, 0), (3, 1, 2))

    def test_grow_and_shrink(self):
        b = Box((2, 2, 2), (4, 4, 4))
        assert b.grow(1) == Box((1, 1, 1), (5, 5, 5))
        assert b.grow(-1).is_empty
        assert b.grow_vec((1, 0, 2)) == Box((1, 2, 0), (5, 4, 6))

    def test_intersect(self):
        a = Box((0, 0, 0), (4, 4, 4))
        b = Box((2, 2, 2), (6, 6, 6))
        assert a.intersect(b) == Box((2, 2, 2), (4, 4, 4))
        assert a.intersect(Box((5, 5, 5), (6, 6, 6))).is_empty

    def test_surface_cells(self):
        assert Box.from_shape((3, 3, 3)).surface_cells() == 26
        assert Box.from_shape((1, 3, 3)).surface_cells() == 9
        assert Box.empty().surface_cells() == 0

    def test_face_and_outer_face(self):
        b = Box((0, 0, 0), (4, 4, 4))
        assert b.face(0, -1) == Box((0, 0, 0), (1, 4, 4))
        assert b.face(0, 1, width=2) == Box((2, 0, 0), (4, 4, 4))
        assert b.outer_face(1, 1) == Box((0, 4, 0), (4, 5, 4))
        assert b.outer_face(2, -1, width=3) == Box((0, 0, -3), (4, 4, 0))
        with pytest.raises(ValueError):
            b.face(0, 0)
        with pytest.raises(ValueError):
            b.outer_face(0, 2)

    def test_slices_roundtrip(self):
        arr = np.zeros((6, 6, 6))
        b = Box((1, 2, 3), (3, 4, 6))
        arr[b.slices()] = 1.0
        assert arr.sum() == b.ncells

    def test_slices_with_offset(self):
        arr = np.zeros((8, 6, 6))
        b = Box((-2, 0, 0), (0, 6, 6))
        arr[b.slices((2, 0, 0))] = 1.0
        assert arr[:2].sum() == b.ncells

    def test_iter_cells(self):
        b = Box((0, 0, 0), (2, 1, 2))
        assert list(b.iter_cells()) == [(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)]


class TestAggregates:
    def test_bounding_box(self):
        bs = [Box((0, 0, 0), (1, 1, 1)), Box((3, 3, 3), (5, 4, 4)), Box.empty()]
        assert bounding_box(bs) == Box((0, 0, 0), (5, 4, 4))
        assert bounding_box([]).is_empty

    def test_disjoint(self):
        a = Box((0, 0, 0), (2, 2, 2))
        b = Box((2, 0, 0), (4, 2, 2))
        assert boxes_are_disjoint([a, b, Box.empty()])
        assert not boxes_are_disjoint([a, a])

    def test_partition(self):
        dom = Box.from_shape((4, 2, 2))
        halves = [Box((0, 0, 0), (2, 2, 2)), Box((2, 0, 0), (4, 2, 2))]
        assert boxes_partition(halves, dom)
        assert not boxes_partition(halves[:1], dom)
        # Overhang outside the domain disqualifies.
        over = [Box((0, 0, 0), (2, 2, 2)), Box((2, 0, 0), (5, 2, 2))]
        assert not boxes_partition(over, dom)


class TestProperties:
    @given(boxes(), st.tuples(st.integers(-5, 5), st.integers(-5, 5),
                              st.integers(-5, 5)))
    @settings(max_examples=100)
    def test_shift_preserves_volume(self, b, vec):
        assert b.shift(vec).ncells == b.ncells

    @given(boxes(), boxes())
    @settings(max_examples=100)
    def test_intersection_commutative_and_bounded(self, a, b):
        i1 = a.intersect(b)
        i2 = b.intersect(a)
        assert i1.ncells == i2.ncells
        assert i1.ncells <= min(a.ncells, b.ncells)
        assert a.contains_box(i1) or i1.is_empty

    @given(boxes())
    @settings(max_examples=100)
    def test_intersect_self_identity(self, b):
        assert b.intersect(b).ncells == b.ncells

    @given(boxes(), st.integers(0, 4))
    @settings(max_examples=100)
    def test_grow_shrink_roundtrip(self, b, k):
        if not b.is_empty:
            assert b.grow(k).grow(-k) == b

    @given(boxes(), boxes(), boxes())
    @settings(max_examples=100)
    def test_intersection_associative(self, a, b, c):
        lhs = a.intersect(b).intersect(c)
        rhs = a.intersect(b.intersect(c))
        assert lhs.ncells == rhs.ncells

    @given(boxes())
    @settings(max_examples=100)
    def test_face_within_box(self, b):
        for dim in range(3):
            for side in (-1, 1):
                f = b.face(dim, side)
                assert b.contains_box(f) or f.is_empty

    @given(boxes())
    @settings(max_examples=100)
    def test_outer_face_disjoint_from_box(self, b):
        for dim in range(3):
            for side in (-1, 1):
                f = b.outer_face(dim, side)
                assert f.intersect(b).is_empty
