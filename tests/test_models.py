"""Tests for the analytic models (Eq. 2, Eqs. 4/5, Hockney, Fig. 5)."""

from __future__ import annotations

import pytest

from repro.machine import nehalem_ep
from repro.models import (
    HaloModel,
    NetworkModel,
    PipelineModel,
    baseline_lups,
    fig5_parameters,
    nehalem_speedup_formula,
    node_p0,
    qdr_infiniband,
    socket_p0,
)


class TestEq2:
    def test_paper_numbers(self):
        # 18.5 GB/s socket -> 1.156 GLUP/s; node expectation 2.3 GLUP/s.
        m = nehalem_ep()
        assert socket_p0(m) == pytest.approx(1.15625e9)
        assert node_p0(m) == pytest.approx(2.3125e9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            baseline_lups(0.0)
        with pytest.raises(ValueError):
            baseline_lups(1e9, bytes_per_lup=0)


class TestEq5:
    def test_paper_closed_form(self):
        # 16T/(7+4T): 1.45 at T=1, 2.13 at T=2, limit 4.
        assert nehalem_speedup_formula(1) == pytest.approx(1.4545, abs=1e-3)
        assert nehalem_speedup_formula(2) == pytest.approx(2.1333, abs=1e-3)

    def test_exact_ratios_reproduce_formula(self):
        # With Ms/Ms,1 exactly 2 and Mc/Ms,1 exactly 8, Eq. 5 IS 16T/(7+4T).
        pm = PipelineModel(ms=20e9, ms1=10e9, mc=80e9)
        for T in (1, 2, 4, 8):
            assert pm.speedup(4, T) == pytest.approx(nehalem_speedup_formula(T))

    def test_limit(self):
        pm = PipelineModel(ms=20e9, ms1=10e9, mc=80e9)
        assert pm.speedup_limit() == pytest.approx(4.0)
        assert pm.speedup(4, 1000) == pytest.approx(4.0, rel=0.05)

    def test_block_time_eq4(self):
        pm = PipelineModel(ms=20e9, ms1=10e9, mc=80e9)
        # Eq. 4 at t*T = 1 degenerates to 16/Ms,1.
        assert pm.block_time(1, 1) == pytest.approx(16 / 10e9)

    def test_bandwidth_scaling_kills_blocking(self):
        # If memory bandwidth scales with cores (Ms,1 == Ms), speedup at
        # large cache bw -> t*T cancellation fails: speedup stays ~1 when
        # Mc ~ Ms ("making such an architecture a bad candidate").
        pm = PipelineModel(ms=10e9, ms1=10e9, mc=12e9)
        assert pm.speedup(4, 2) < 1.3
        assert pm.bandwidth_starved()

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(ms=10e9, ms1=20e9, mc=80e9)
        pm = PipelineModel(ms=20e9, ms1=10e9, mc=80e9)
        with pytest.raises(ValueError):
            pm.speedup(0, 1)


class TestNetwork:
    def test_paper_parameters(self):
        n = qdr_infiniband()
        assert n.latency == pytest.approx(1.8e-6)
        assert n.bandwidth == pytest.approx(3.2e9)

    def test_message_time(self):
        n = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert n.message_time(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_copy_factor_doubles_wire(self):
        n = NetworkModel(latency=0.0, bandwidth=1e9, copy_factor=1.0)
        assert n.message_time(1e6) == pytest.approx(2e-3)

    def test_effective_bandwidth_rolloff(self):
        n = qdr_infiniband()
        assert n.effective_bandwidth(1e3) < 0.2 * n.bandwidth
        assert n.effective_bandwidth(1e8) > 0.9 * n.bandwidth

    def test_half_performance_length(self):
        n = NetworkModel(latency=1e-6, bandwidth=1e9)
        m = n.half_performance_length()
        assert n.effective_bandwidth(m) == pytest.approx(0.5e9)


class TestFig5Model:
    def test_bulk_cells_trapezoid(self):
        hm = fig5_parameters()
        # h=1: just L^3; h=2: (L+2)^3 + L^3.
        assert hm.bulk_cells(10, 1) == 1000
        assert hm.bulk_cells(10, 2) == 12 ** 3 + 10 ** 3

    def test_large_L_no_influence_for_small_h(self):
        hm = HaloModel(expanded_messages=False)
        assert hm.advantage(320, 2) == pytest.approx(1.0, abs=0.05)

    def test_small_L_aggregation_gain(self):
        hm = HaloModel(expanded_messages=False)
        assert max(hm.advantage(5, h) for h in (4, 8, 16, 32)) > 2.0

    def test_midrange_degradation_grows_with_h(self):
        hm = HaloModel(expanded_messages=False)
        assert hm.advantage(50, 32) < hm.advantage(50, 8) < hm.advantage(50, 2)

    def test_efficiency_comm_limited_below_100(self):
        hm = fig5_parameters()
        assert hm.evaluate(20, 2).efficiency < 0.5
        assert hm.evaluate(320, 2).efficiency > 0.8

    def test_expanded_messages_cost_more(self):
        a = HaloModel(expanded_messages=True)
        b = HaloModel(expanded_messages=False)
        assert a.comm_time(20, 8) > b.comm_time(20, 8)

    def test_crossover_shrinks_with_h(self):
        hm = HaloModel(expanded_messages=False)
        assert hm.crossover_L(2, L_max=128) >= hm.crossover_L(32, L_max=128)

    def test_validation(self):
        hm = fig5_parameters()
        with pytest.raises(ValueError):
            hm.bulk_cells(0, 1)
        with pytest.raises(ValueError):
            HaloModel(node_lups=0)
