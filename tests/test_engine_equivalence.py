"""The engine differential battery: every engine bit-identical to numpy.

The invariant of :mod:`repro.engine` is the repo's signature move — an
execution engine may reorder the traversal, fuse writes into the
destination storage or compile the loops, but the produced bits must
equal the ``numpy`` reference engine on every kernel × storage ×
backend combination.  This file pins that invariant:

* shared / ``simmpi`` / ``procmpi`` solves for the 7-point Jacobi, the
  embedded 2-D star and an anisotropic stencil, per engine, compared
  bit-for-bit (``np.array_equal``) against the numpy engine;
* cache sharing in :mod:`repro.serve`: engines of one semantics class
  produce one content key, so an engine change is a pure cache hit;
* edge cases: degenerate 1-cell-axis grids, zero-weight and absent
  offsets, empty regions, pure-center stencils and float32/float64
  dtype preservation;
* the optional ``numba`` leg, skip-marked so the suite passes in a
  clean environment (CI runs both ways);
* the ``numba-deep`` whole-block-traversal engine: where numba is
  installed it rides every parametrized battery above (it is in
  ``available_engines()``); everywhere, its *traversal logic* is
  certified in interpreted mode — the compiled loop body is a plain
  Python function, so the identical gather/patch/write sequence runs
  under the test without the dependency;
* the JIT-cache pin: ``cache=True`` compilations mean a warm worker
  process re-importing the engine package never re-JITs per job
  (subprocess probe over ``jit_cache_stats``, skip-marked).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro
from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.core.storage import TwoGridStorage
from repro.engine import (
    HAVE_NUMBA,
    Engine,
    available_engines,
    engine_semantics,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.grid import Box, random_field
from repro.kernels import (
    StarStencil,
    anisotropic_jacobi,
    jacobi5_2d,
    jacobi7,
    jacobi_sweep_padded,
    reference_sweeps,
)

RNG_SEED = 7

ENGINES = available_engines()
NONDEFAULT = [e for e in ENGINES if e != "numpy"]

STENCILS = {
    "jacobi": jacobi7(),
    "star2d": jacobi5_2d(),
    "aniso": anisotropic_jacobi(1.0, 2.0, 0.5),
}


def _cfg(storage: str = "twogrid", engine: str = "numpy",
         passes: int = 2) -> PipelineConfig:
    return PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                          block_size=(4, 64, 64), sync=RelaxedSpec(1, 2),
                          storage=storage, passes=passes, engine=engine)


def _problem(shape=(12, 10, 11), dtype=np.float64):
    grid = Grid3D(shape, dtype=dtype)
    field = random_field(grid.shape, np.random.default_rng(RNG_SEED))
    return grid, field.astype(dtype)


# ---------------------------------------------------------------------------
# Registry behaviour
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_registered_in_canonical_order(self):
        names = available_engines()
        expected = ("numpy", "blocked", "inplace") + (
            ("numba", "numba-deep") if HAVE_NUMBA else ())
        assert names == expected

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("fortran")

    def test_missing_optional_dependency_is_named(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed: the engine is available here")
        with pytest.raises(ValueError, match="numba.*not installed"):
            get_engine("numba")

    def test_config_validates_engine_name(self):
        with pytest.raises(ValueError, match="engine"):
            _cfg(engine="fortran")

    def test_all_builtins_share_the_vector_semantics_class(self):
        classes = {engine_semantics(n) for n in available_engines()}
        assert classes == {"vector-v1"}

    def test_custom_engine_registers_and_unregisters(self):
        class Stub(Engine):
            name = "stub-engine"
            semantics = "stub-v1"

        try:
            register_engine(Stub())
            assert "stub-engine" in available_engines()
            with pytest.raises(ValueError, match="already registered"):
                register_engine(Stub())
        finally:
            unregister_engine("stub-engine")
        assert "stub-engine" not in available_engines()


# ---------------------------------------------------------------------------
# Bit identity on the shared backend, both storage schemes
# ---------------------------------------------------------------------------

class TestSharedBitIdentity:
    @pytest.mark.parametrize("engine", NONDEFAULT)
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_engine_matches_numpy_bitwise(self, engine, kernel, storage):
        grid, field = _problem()
        st = STENCILS[kernel]
        ref = solve(grid, field, _cfg(storage=storage), stencil=st)
        got = solve(grid, field, _cfg(storage=storage, engine=engine),
                    stencil=st)
        assert np.array_equal(got.field, ref.field)
        # And both stay equivalent to plain sweeps (sanity, not bits).
        plain = reference_sweeps(grid, field, ref.levels_advanced, stencil=st)
        np.testing.assert_allclose(got.field, plain, rtol=0, atol=1e-13)

    @pytest.mark.parametrize("engine", NONDEFAULT)
    def test_engine_override_argument_wins(self, engine):
        grid, field = _problem()
        a = solve(grid, field, _cfg(), engine=engine)
        b = solve(grid, field, _cfg(engine=engine))
        assert a.config.engine == engine
        assert np.array_equal(a.field, b.field)


# ---------------------------------------------------------------------------
# Bit identity through the distributed backends (engine rides the config)
# ---------------------------------------------------------------------------

class TestDistributedBitIdentity:
    @pytest.mark.parametrize("engine", NONDEFAULT)
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    def test_simmpi_engine_matches_numpy(self, engine, kernel):
        grid, field = _problem()
        st = STENCILS[kernel]
        ref = solve(grid, field, _cfg(), topology=(1, 1, 2),
                    backend="simmpi", stencil=st)
        got = solve(grid, field, _cfg(engine=engine), topology=(1, 1, 2),
                    backend="simmpi", stencil=st)
        assert np.array_equal(got.field, ref.field)

    @pytest.mark.parametrize("engine", NONDEFAULT)
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    def test_procmpi_inherits_engine_and_matches(self, engine, kernel):
        grid, field = _problem()
        st = STENCILS[kernel]
        sim = solve(grid, field, _cfg(engine=engine), topology=(1, 1, 2),
                    backend="simmpi", stencil=st)
        proc = solve(grid, field, _cfg(engine=engine), topology=(1, 1, 2),
                     backend="procmpi", stencil=st)
        shared = solve(grid, field, _cfg(), stencil=st)
        assert np.array_equal(proc.field, sim.field)
        np.testing.assert_allclose(proc.field, shared.field,
                                   rtol=0, atol=1e-13)

    @pytest.mark.parametrize("engine", NONDEFAULT)
    def test_multi_halo_sweeps_take_an_engine(self, engine):
        from repro.dist.solver import distributed_jacobi_sweeps

        grid, field = _problem((10, 9, 8))
        ref = distributed_jacobi_sweeps(grid, field, (1, 1, 2),
                                        supersteps=2, halo=2)
        got = distributed_jacobi_sweeps(grid, field, (1, 1, 2),
                                        supersteps=2, halo=2, engine=engine)
        proc = distributed_jacobi_sweeps(grid, field, (1, 1, 2),
                                         supersteps=2, halo=2, engine=engine,
                                         transport="procmpi")
        assert np.array_equal(got.field, ref.field)
        assert np.array_equal(proc.field, ref.field)


# ---------------------------------------------------------------------------
# Serving layer: one semantics class, one cache entry
# ---------------------------------------------------------------------------

class TestServeRoundTrip:
    def test_content_keys_shared_across_engines(self):
        from repro.serve import SolveJob

        grid, field = _problem()
        base = SolveJob(grid=grid, field=field, config=_cfg()).content_key()
        for engine in NONDEFAULT:
            job = SolveJob(grid=grid, field=field,
                           config=_cfg(engine=engine))
            assert job.content_key() == base

    def test_custom_semantics_class_changes_the_key(self):
        from repro.serve import SolveJob

        class OtherSemantics(Engine):
            name = "other-sem"
            semantics = "approx-v1"

        grid, field = _problem()
        base = SolveJob(grid=grid, field=field, config=_cfg()).content_key()
        try:
            register_engine(OtherSemantics())
            other = SolveJob(grid=grid, field=field,
                             config=_cfg(engine="other-sem")).content_key()
        finally:
            unregister_engine("other-sem")
        assert other != base

    def test_engine_change_is_a_pure_cache_hit(self):
        """solve(engine=...) round-trips through the service: the second
        engine's job is served from the first engine's cache entry."""
        from repro.serve import Service

        grid, field = _problem()
        direct = [solve(grid, field, _cfg(engine=e)) for e in ENGINES]
        with Service(workers=0) as svc:
            cold = svc.submit(grid, field, _cfg())
            svc.drain()
            warm = [svc.submit(grid, field, _cfg(engine=e))
                    for e in NONDEFAULT]
            stats = svc.stats
            results = [cold.result(timeout=0)] + \
                [w.result(timeout=0) for w in warm]
        assert stats.backend_solves == 1
        assert stats.cache_hits == len(NONDEFAULT)
        assert all(w.cache_hit for w in warm)
        for served, ran in zip(results[1:], results[:-1]):
            assert np.array_equal(served.field, ran.field)
        for a, b in zip(direct, direct[1:]):
            assert np.array_equal(a.field, b.field)

    def test_auto_config_rejects_engine_override(self):
        grid, field = _problem()
        with pytest.raises(ValueError, match="auto"):
            repro.submit(grid, field, "auto", engine="blocked")


# ---------------------------------------------------------------------------
# Edge cases: degenerate geometry, pathological stencils, dtypes
# ---------------------------------------------------------------------------

class TestEdgeCases:
    @pytest.mark.parametrize("engine", NONDEFAULT)
    @pytest.mark.parametrize("shape", [(1, 6, 7), (6, 1, 7), (6, 7, 1),
                                       (1, 1, 5), (1, 1, 1)])
    def test_degenerate_one_cell_axes(self, engine, shape):
        grid, field = _problem(shape)
        ref = solve(grid, field, _cfg())
        got = solve(grid, field, _cfg(engine=engine))
        assert np.array_equal(got.field, ref.field)
        plain = reference_sweeps(grid, field, ref.levels_advanced)
        np.testing.assert_allclose(got.field, plain, rtol=0, atol=1e-13)

    @pytest.mark.parametrize("engine", NONDEFAULT)
    def test_zero_weight_offsets_are_skipped_not_gathered_into_nan(self, engine):
        # A present-but-zero weight must contribute nothing — even when
        # the neighbour value is non-finite, 0 * inf == nan must not
        # leak into the result (the numpy reference skips such terms).
        st = StarStencil(weights={(0, 0, -1): 0.5, (0, 0, 1): 0.0,
                                  (0, -1, 0): 0.5}, name="half-dead")
        grid = Grid3D((4, 4, 4))
        field = np.full(grid.shape, np.inf)
        padded_ref = grid.padded(field)
        ref = jacobi_sweep_padded(padded_ref.copy(), stencil=st)
        got = jacobi_sweep_padded(padded_ref.copy(), stencil=st,
                                  engine=engine)
        assert np.array_equal(got, ref)
        # Interior cells away from the low-x/low-y faces read only inf
        # neighbours through the nonzero weights; nothing may be NaN.
        assert not np.isnan(got).any()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kernel", ["star2d", "jacobi"])
    def test_absent_offsets_match_reference(self, engine, kernel):
        grid, field = _problem((6, 7, 8))
        st = STENCILS[kernel]
        ref = reference_sweeps(grid, field, 4, stencil=st)
        got = reference_sweeps(grid, field, 4, stencil=st, engine=engine)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pure_center_stencil(self, engine):
        st = StarStencil(weights={}, center_weight=0.5, name="decay")
        grid, field = _problem((5, 4, 3))
        ref = reference_sweeps(grid, field, 3, stencil=st)
        got = reference_sweeps(grid, field, 3, stencil=st, engine=engine)
        assert np.array_equal(got, ref)
        np.testing.assert_allclose(got, field * 0.125, rtol=0, atol=0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_region_is_a_noop(self, engine):
        grid, field = _problem((4, 4, 4))
        storage = TwoGridStorage(grid, field)
        before = storage.extract(0)
        levels = storage.levels.copy()
        get_engine(engine).apply(jacobi7(), storage, Box.empty(), 1)
        assert np.array_equal(storage.extract(0), before)
        assert np.array_equal(storage.levels, levels)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_padded_region_is_a_noop(self, engine):
        grid, field = _problem((4, 4, 4))
        src = grid.padded(field)
        dst = src.copy()
        get_engine(engine).apply_padded(jacobi7(), src, dst,
                                        (2, 0, 0), (2, 4, 4))
        assert np.array_equal(dst, src)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_dtype_preserved_and_bits_match(self, engine, dtype, storage):
        grid, field = _problem(dtype=dtype)
        ref = solve(grid, field, _cfg(storage=storage))
        got = solve(grid, field, _cfg(storage=storage, engine=engine))
        assert got.field.dtype == np.dtype(dtype)
        assert np.array_equal(got.field, ref.field)


# ---------------------------------------------------------------------------
# The optional numba leg (skip-marked; CI runs with and without numba)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaEngine:
    def test_registered_with_jit_flag(self):
        eng = get_engine("numba")
        assert eng.jit and eng.requires == "numba"

    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_bit_identical_to_numpy(self, kernel, storage):
        grid, field = _problem()
        st = STENCILS[kernel]
        ref = solve(grid, field, _cfg(storage=storage), stencil=st)
        got = solve(grid, field, _cfg(storage=storage, engine="numba"),
                    stencil=st)
        assert np.array_equal(got.field, ref.field)

    def test_float32_bits_match(self):
        grid, field = _problem(dtype=np.float32)
        ref = solve(grid, field, _cfg())
        got = solve(grid, field, _cfg(engine="numba"))
        assert got.field.dtype == np.float32
        assert np.array_equal(got.field, ref.field)


# ---------------------------------------------------------------------------
# The deep-JIT engine: interpreted-mode traversal battery (no numba needed)
# ---------------------------------------------------------------------------

@pytest.fixture
def deep_engine():
    """The numba-deep engine, runnable with or without numba.

    With numba installed the registered engine is used as-is.  Without
    it, the engine class is instantiated around its *interpreted* loop
    body (``prange`` is plain ``range`` there) and registered for the
    test's duration: the per-cell operation sequence is the same either
    way, so this certifies the fused traversal — plane ordering,
    permuted axes, boundary patching, destination writes — in a clean
    environment.
    """
    from repro.engine import NumbaDeepEngine

    if HAVE_NUMBA:
        yield get_engine("numba-deep")
        return
    eng = object.__new__(NumbaDeepEngine)
    register_engine(eng)
    try:
        yield eng
    finally:
        unregister_engine("numba-deep")


class TestDeepTraversal:
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_bit_identical_to_numpy(self, deep_engine, kernel, storage):
        grid, field = _problem()
        st = STENCILS[kernel]
        ref = solve(grid, field, _cfg(storage=storage), stencil=st)
        got = solve(grid, field, _cfg(storage=storage,
                                      engine="numba-deep"), stencil=st)
        assert np.array_equal(got.field, ref.field)

    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_boundary_faces_and_callable(self, deep_engine, storage):
        from repro.grid import DirichletBoundary

        for boundary in (
                DirichletBoundary(1.25),
                DirichletBoundary(faces={(0, -1): 2.0, (1, 1): -0.5,
                                         (2, -1): 0.75}),
                DirichletBoundary(
                    func=lambda z, y, x: 0.1 * z + 0.2 * y - 0.05 * x)):
            grid = Grid3D((9, 8, 10), boundary=boundary)
            field = random_field(grid.shape,
                                 np.random.default_rng(RNG_SEED))
            ref = solve(grid, field, _cfg(storage=storage))
            got = solve(grid, field, _cfg(storage=storage,
                                          engine="numba-deep"))
            assert np.array_equal(got.field, ref.field)

    @pytest.mark.parametrize("shape", [(1, 6, 7), (6, 1, 7), (6, 7, 1),
                                       (1, 1, 1)])
    def test_degenerate_axes(self, deep_engine, shape):
        # twogrid only: compressed storage rejects degenerate shapes
        # outright (no axis can carry the shift), for every engine.
        grid, field = _problem(shape)
        ref = solve(grid, field, _cfg())
        got = solve(grid, field, _cfg(engine="numba-deep"))
        assert np.array_equal(got.field, ref.field)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_preserved(self, deep_engine, dtype):
        grid, field = _problem(dtype=dtype)
        ref = solve(grid, field, _cfg(storage="compressed"))
        got = solve(grid, field, _cfg(storage="compressed",
                                      engine="numba-deep"))
        assert got.field.dtype == np.dtype(dtype)
        assert np.array_equal(got.field, ref.field)

    def test_damped_center_term(self, deep_engine):
        st = STENCILS["jacobi"].damped(0.8)
        grid, field = _problem()
        for storage in ("twogrid", "compressed"):
            ref = solve(grid, field, _cfg(storage=storage), stencil=st)
            got = solve(grid, field, _cfg(storage=storage,
                                          engine="numba-deep"), stencil=st)
            assert np.array_equal(got.field, ref.field)

    def test_threads_backend_bit_identical(self, deep_engine):
        grid, field = _problem()
        ref = solve(grid, field, _cfg(), backend="threads")
        got = solve(grid, field, _cfg(engine="numba-deep"),
                    backend="threads")
        assert np.array_equal(got.field, ref.field)

    def test_simmpi_backend_bit_identical(self, deep_engine):
        grid, field = _problem()
        ref = solve(grid, field, _cfg(), topology=(1, 1, 2),
                    backend="simmpi")
        got = solve(grid, field, _cfg(engine="numba-deep"),
                    topology=(1, 1, 2), backend="simmpi")
        assert np.array_equal(got.field, ref.field)

    def test_shares_the_vector_semantics_class(self, deep_engine):
        assert deep_engine.semantics == "vector-v1"
        assert deep_engine.name == "numba-deep"
        assert deep_engine.jit and deep_engine.requires == "numba"

    def test_storage_deep_access_validates_reads(self, deep_engine):
        """check_traversal runs the same legality validation a gather
        sequence would — an illegal read is refused up front."""
        from repro.core.storage import StorageError, TwoGridStorage

        grid, field = _problem((6, 6, 6))
        storage = TwoGridStorage(grid, field)
        inside = Box((0, 0, 0), (2, 6, 6))
        storage.check_traversal(inside, [(0, 0, 1)], 0)  # legal: no raise
        with pytest.raises(StorageError):
            storage.check_traversal(Box((0, 0, 0), (7, 6, 6)),
                                    [(0, 0, 1)], 0)
        arr, origin = storage.raw_read_array(0)
        assert origin == (0, 0, 0)
        assert np.shares_memory(arr, storage.extract(0)) or \
            np.array_equal(arr, field)


# ---------------------------------------------------------------------------
# JIT cache behaviour (cache=True): warm workers never re-JIT per job
# ---------------------------------------------------------------------------

class TestJitCache:
    def test_stats_are_zero_without_numba(self):
        from repro.engine import jit_cache_stats

        stats = jit_cache_stats()
        assert set(stats) == {"hits", "misses"}
        if not HAVE_NUMBA:
            assert stats == {"hits": 0, "misses": 0}

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_warm_worker_loads_from_disk_cache(self, tmp_path):
        """A fresh process that re-imports the engine package and runs a
        solve per engine must satisfy every compilation from the on-disk
        cache (hits), not fresh JITs (misses) — the second run is the
        'warm spawned worker' of the serve/procmpi rails."""
        import subprocess
        import sys

        probe = (
            "import json, numpy as np\n"
            "import repro\n"
            "from repro import Grid3D, PipelineConfig, RelaxedSpec, solve\n"
            "from repro.engine import jit_cache_stats\n"
            "from repro.grid import random_field\n"
            "grid = Grid3D((8, 8, 8))\n"
            "field = random_field(grid.shape, np.random.default_rng(0))\n"
            "cfg = PipelineConfig(teams=1, threads_per_team=2,\n"
            "                     updates_per_thread=2,\n"
            "                     block_size=(4, 64, 64),\n"
            "                     sync=RelaxedSpec(1, 2))\n"
            "for engine in ('numba', 'numba-deep'):\n"
            "    solve(grid, field, cfg, engine=engine)\n"
            "print(json.dumps(jit_cache_stats()))\n"
        )

        def run() -> dict:
            out = subprocess.run([sys.executable, "-c", probe],
                                 capture_output=True, text=True,
                                 check=True)
            return __import__("json").loads(out.stdout.strip()
                                            .splitlines()[-1])

        first = run()   # may compile (cold disk cache)
        second = run()  # fresh process, warm disk cache
        assert second["misses"] == 0, (
            f"warm worker re-JITted: {second} (cold run: {first})")
        assert second["hits"] >= 1
