"""The truly-threaded rail: differential battery, sync board, hammers.

What this file pins, in dependency order:

* **CounterBoard semantics** — the condition-variable sync counters
  behind the threaded executor: Eq. 3 gating, the drain-waiver wakeup
  (a stage becomes ready because its predecessor *finished*, not
  because a counter moved — the missed-wakeup bug class the board's
  notify-on-finish fixes), abort propagation, the watchdog, and a
  multi-thread hammer that must neither deadlock nor lose a count.
* **threads ≡ shared ≡ simmpi** — the cross-backend differential leg:
  bit-identity over kernels × storage schemes × sync windows and over
  every certified quick-suite schedule, with matching executor
  counters.  Legality certification is what makes this a theorem
  rather than luck: any interleaving the window permits — including
  true concurrency — produces the same bytes.
* **Unconditional legality gate** — ``backend="threads"`` refuses any
  schedule ``assert_legal`` rejects even with ``validate=False``; no
  thread starts and the input field is untouched.
* **Obs under threads** — a traced threaded solve merges every stage
  thread's spans onto one timeline; the tracer and registry survive a
  many-threads hammer without losing an event; the disabled-tracer
  zero-allocation contract holds off the main thread too.
* **ResultCache concurrency** — concurrent hits/misses/puts keep the
  LRU bounded and the counters exact (the serve-layer bugfix).
* **Speedup gate** — with the numba engine on a multicore host the
  threaded rail must beat the simulated rail >1x wall-clock.  Skipped,
  with the reason in the skip message, when numba is absent or the
  host has one core — single-core CI still proves correctness, never
  speed.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

import repro
from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.analysis import StaticAnalysisError
from repro.core.parameters import BarrierSpec
from repro.core.sync import (CounterBoard, SyncAborted, SyncWaitTimeout,
                             make_policy)
from repro.grid import random_field
from repro.kernels.jacobi import anisotropic_jacobi, jacobi5_2d, jacobi7
from repro.threads import ThreadedPipelineExecutor, run_threaded

STENCILS = {
    "jacobi7": jacobi7,
    "jacobi5_2d": jacobi5_2d,
    "anisotropic": lambda: anisotropic_jacobi(1.0, 2.0, 0.5),
}


def small_config(storage: str = "twogrid", sync=None,
                 passes: int = 2) -> PipelineConfig:
    return PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                          block_size=(3, 64, 64),
                          sync=sync or RelaxedSpec(1, 2),
                          storage=storage, passes=passes)


def board_config(sync=None) -> PipelineConfig:
    """A 4-stage config whose policy the board unit tests gate on."""
    return PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=1,
                          block_size=(2, 64, 64), sync=sync or RelaxedSpec(1, 3))


# ---------------------------------------------------------------------------
# CounterBoard unit tests
# ---------------------------------------------------------------------------


class TestCounterBoard:
    def test_gating_follows_policy(self):
        cfg = board_config()
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=8)
        # Stage 0 (overall front) is always ready; stage 1 needs
        # c0 - c1 >= d_l = 1.
        board.wait_ready(0)  # returns immediately
        # Every non-front stage waits on its predecessor's counter.
        assert board.waiting_now() == [1, 2, 3]
        assert board.advance(0) == 1
        board.wait_ready(1)  # window now open
        assert board.advance(1) == 1

    def test_drain_waiver_wakes_blocked_stage(self):
        # The missed-wakeup regression: with d_l=3 and only 2 blocks,
        # stage 1's lower bound can NEVER be met by counter values —
        # it becomes ready only through the drain waiver when stage 0
        # finishes.  The finish flag is set inside advance()'s critical
        # section and notify_all-ed; a wakeup scheme keyed on counter
        # changes alone parks this waiter forever.
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=1, block_size=(2, 64, 64),
                             sync=RelaxedSpec(3, 3))
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=2,
                             timeout=20.0)
        woke = threading.Event()

        def waiter():
            board.wait_ready(1)
            woke.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not woke.is_set()  # genuinely blocked
        board.advance(0)
        time.sleep(0.05)
        assert not woke.is_set()  # c0 - c1 = 1 < 3: still blocked
        board.advance(0)  # finishes stage 0 -> drain waiver
        t.join(timeout=10.0)
        assert woke.is_set()
        assert board.blocked_polls >= 2

    def test_drain_blocks_counts_waits_during_drain(self):
        # A stage that re-blocks while some other stage has already
        # finished is a drain-phase wait: the threaded analogue of the
        # simulated rail's ``core.drain_blocks`` counter.
        cfg = PipelineConfig(teams=1, threads_per_team=3,
                             updates_per_thread=1, block_size=(2, 64, 64),
                             sync=RelaxedSpec(1, 4))
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=1,
                             timeout=20.0)
        woke = threading.Event()

        def waiter():
            board.wait_ready(2)
            woke.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        board.advance(0)  # stage 0 finishes; stage 2 still blocked on 1
        time.sleep(0.05)
        assert not woke.is_set()
        board.advance(1)  # stage 1 finishes -> waiver -> stage 2 ready
        t.join(timeout=10.0)
        assert woke.is_set()
        assert board.drain_blocks >= 1

    def test_watchdog_times_out_stuck_wait(self):
        cfg = board_config()
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=4,
                             timeout=0.05)
        with pytest.raises(SyncWaitTimeout):
            board.wait_ready(1)  # nobody will ever advance stage 0
        assert isinstance(board.failure, SyncWaitTimeout)

    def test_abort_unblocks_waiters_and_keeps_real_cause(self):
        cfg = board_config()
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=4,
                             timeout=20.0)
        raised = []

        def waiter():
            try:
                board.wait_ready(1)
            except SyncAborted as exc:
                raised.append(exc)

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        cause = RuntimeError("engine exploded")
        board.abort(cause)
        t.join(timeout=10.0)
        assert len(raised) == 1
        assert board.failure is cause
        # A later SyncAborted from an unwinding peer must not mask it.
        board.abort(SyncAborted("peer unwound"))
        assert board.failure is cause

    def test_snapshot_and_done(self):
        cfg = board_config()
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks=1)
        assert not board.done
        for s in range(cfg.n_stages):
            board.advance(s)
        counters, finished = board.snapshot()
        assert counters == [1] * cfg.n_stages
        assert all(finished) and board.done

    def test_hammer_full_run_loses_nothing(self):
        # 4 stage threads drain a 60-block traversal through the real
        # wait/advance protocol.  The assertions are exact: no lost
        # counter update, no deadlock (watchdog would trip), and the
        # max gap respects the window d_u + team_delay.
        cfg = board_config(sync=RelaxedSpec(1, 3, team_delay=1))
        n_blocks = 60
        board = CounterBoard(make_policy(cfg), cfg.n_stages, n_blocks,
                             timeout=60.0)

        def stage_body(s):
            for _ in range(n_blocks):
                board.wait_ready(s)
                board.advance(s)

        threads = [threading.Thread(target=stage_body, args=(s,), daemon=True)
                   for s in range(cfg.n_stages)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert board.done and board.failure is None
        counters, finished = board.snapshot()
        assert counters == [n_blocks] * cfg.n_stages
        assert board.max_counter_gap <= n_blocks

    def test_rejects_degenerate_shapes(self):
        cfg = board_config()
        with pytest.raises(ValueError):
            CounterBoard(make_policy(cfg), 0, 4)


# ---------------------------------------------------------------------------
# Differential battery: threads ≡ shared ≡ simmpi
# ---------------------------------------------------------------------------


class TestThreadsBitIdentity:
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_kernel_storage_matrix(self, kernel, storage):
        grid = Grid3D((16, 14, 12))
        field = random_field(grid.shape, np.random.default_rng(3))
        cfg = small_config(storage=storage)
        st = STENCILS[kernel]()
        shared = solve(grid, field, cfg, stencil=st)
        threaded = solve(grid, field, cfg, backend="threads", stencil=st)
        assert np.array_equal(shared.field, threaded.field)
        if storage == "twogrid":
            # The simmpi leg runs on twogrid only (ghost injection
            # cannot target the compressed layout).
            sim = solve(grid, field, cfg, topology=(1, 1, 1),
                        backend="simmpi", stencil=st)
            assert np.array_equal(sim.field, threaded.field)
        assert threaded.backend == "threads"
        assert threaded.levels_advanced == cfg.total_updates
        # Same schedule, same work: every deterministic counter matches.
        for attr in ("block_ops", "updates", "cells_updated"):
            assert getattr(threaded.stats, attr) == getattr(shared.stats, attr)
        assert threaded.stats.per_stage_blocks == shared.stats.per_stage_blocks

    @pytest.mark.parametrize("sync", [
        BarrierSpec(),
        RelaxedSpec(1, 1),
        RelaxedSpec(1, 4),
        RelaxedSpec(2, 4, team_delay=1),
    ], ids=lambda s: s.describe())
    def test_sync_window_sweep(self, sync):
        grid = Grid3D((12, 10, 10))
        field = random_field(grid.shape, np.random.default_rng(5))
        cfg = PipelineConfig(teams=2, threads_per_team=2,
                             updates_per_thread=1, block_size=(2, 64, 64),
                             sync=sync, passes=2)
        shared = solve(grid, field, cfg)
        threaded = solve(grid, field, cfg, backend="threads")
        assert np.array_equal(shared.field, threaded.field)

    def test_every_certified_quick_schedule(self):
        # The acceptance criterion verbatim: bit-identity on every
        # single-process schedule the quick-suite analyzer run
        # certifies (the same list `repro.analysis check-schedule
        # --suite quick` proves legal before each release).
        from repro.analysis import assert_legal
        from repro.perf.scenarios import solver_schedules

        checked = 0
        for name, shape, cfg, topo in solver_schedules("quick"):
            if topo != (1, 1, 1):
                continue  # distributed schedules have no threads leg
            assert_legal(cfg, shape, topo)
            grid = Grid3D(shape)
            field = random_field(shape, np.random.default_rng(17))
            shared = solve(grid, field, cfg)
            threaded = solve(grid, field, cfg, backend="threads")
            assert np.array_equal(shared.field, threaded.field), name
            checked += 1
        assert checked >= 3

    def test_run_threaded_direct_entry(self):
        grid = Grid3D((12, 10, 10))
        field = random_field(grid.shape, np.random.default_rng(2))
        cfg = small_config()
        res = run_threaded(grid, field.copy(), cfg)
        ref = solve(grid, field, cfg)
        assert np.array_equal(res.field, ref.field)
        assert res.backend == "threads"


# ---------------------------------------------------------------------------
# The unconditional legality gate
# ---------------------------------------------------------------------------


class _WideStencil:
    """Stub with the only attribute the static gate reads: radius 2.

    Radius 2 at d_l=1 violates the one-block distance (the analyzer
    proves a witness interleaving), and the Pipeline/RelaxedSpec
    constructors cannot reject it — only ``assert_legal`` sees the
    stencil — which makes it the exact lever for testing that the
    threaded entry refuses what the analyzer refuses.
    """

    radius = 2


class TestUnconditionalLegalityGate:
    @pytest.mark.parametrize("validate", [True, False, "static"])
    def test_refuses_illegal_schedule_any_validate(self, validate):
        grid = Grid3D((16, 12, 12))
        field = np.full(grid.shape, 7.0)
        before = field.copy()
        with pytest.raises(StaticAnalysisError):
            solve(grid, field, small_config(), backend="threads",
                  stencil=_WideStencil(), validate=validate)
        # No thread ever launched: the input is untouched.
        assert np.array_equal(field, before)

    def test_direct_entry_refuses_too(self):
        grid = Grid3D((16, 12, 12))
        field = np.zeros(grid.shape)
        with pytest.raises(StaticAnalysisError):
            run_threaded(grid, field, small_config(),
                         stencil=_WideStencil(), validate=False)

    def test_legal_schedule_passes_the_same_gate(self):
        grid = Grid3D((16, 12, 12))
        field = random_field(grid.shape, np.random.default_rng(0))
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=2, block_size=(3, 64, 64),
                             sync=RelaxedSpec(2, 4), passes=1)
        res = solve(grid, field, cfg, backend="threads",
                    stencil=_make_radius2_compatible())
        assert res.levels_advanced == cfg.total_updates

    def test_threads_backend_rejects_topology(self):
        grid = Grid3D((12, 10, 10))
        field = np.zeros(grid.shape)
        with pytest.raises(ValueError, match="single-process"):
            solve(grid, field, small_config(), backend="threads",
                  topology=(1, 1, 2))


def _make_radius2_compatible():
    """A real radius-1 stencil: d_l=2 schedules are legal for it."""
    return jacobi7()


# ---------------------------------------------------------------------------
# Obs under real threads
# ---------------------------------------------------------------------------


class TestObsUnderThreads:
    def test_traced_threaded_solve_merges_stage_rows(self):
        grid = Grid3D((14, 12, 10))
        field = random_field(grid.shape, np.random.default_rng(9))
        cfg = small_config()
        plain = solve(grid, field, cfg, backend="threads")
        traced = solve(grid, field, cfg, backend="threads", trace=True)
        assert np.array_equal(plain.field, traced.field)
        trace = traced.trace
        assert trace is not None and trace.pids() == [0]
        # One merged timeline with a span row per stage thread.
        block_tids = {s.tid for s in trace.spans if s.name == "block"}
        assert block_tids == {s + 1 for s in range(cfg.n_stages)}
        pass_spans = [s for s in trace.spans
                      if s.name == "pass" and s.cat == "threads"]
        assert len(pass_spans) == cfg.passes
        # Every stage's block spans sit inside some pass span.
        for s in trace.spans:
            if s.name == "block":
                assert any(p.start <= s.start and s.end <= p.end + 1e-9
                           for p in pass_spans)
        assert traced.metrics["spans"] == len(trace.spans)

    def test_blocked_waits_surface_as_counters(self):
        grid = Grid3D((16, 12, 12))
        field = random_field(grid.shape, np.random.default_rng(1))
        # A tight window forces real blocked waits.
        cfg = PipelineConfig(teams=1, threads_per_team=4,
                             updates_per_thread=1, block_size=(2, 64, 64),
                             sync=RelaxedSpec(1, 1), passes=2)
        res = solve(grid, field, cfg, backend="threads", trace=True)
        assert res.trace.counters.get("sync.blocked_polls", 0) > 0

    def test_tracer_many_threads_hammer(self):
        from repro.obs import Tracer
        tracer = Tracer(pid=0)
        n_threads, per_thread = 8, 200

        def worker(tid):
            for i in range(per_thread):
                with tracer.span("w", cat="hammer", tid=tid, i=i):
                    pass
                tracer.count("hammer.events")
                tracer.count(f"hammer.t{tid}")

        threads = [threading.Thread(target=worker, args=(t,), daemon=True)
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        trace = tracer.finish()
        # Exact totals: a lost update anywhere fails the equality.
        assert len(trace.spans) == n_threads * per_thread
        assert trace.counters["hammer.events"] == n_threads * per_thread
        for t in range(n_threads):
            assert trace.counters[f"hammer.t{t}"] == per_thread
            row = [s for s in trace.spans if s.tid == t]
            assert len(row) == per_thread
            # Per-thread completion order survives the merge.
            assert [s.arg("i") for s in row] == list(range(per_thread))

    def test_disabled_tracer_zero_alloc_off_main_thread(self):
        from repro.obs import NULL_SPAN, spans_started
        from repro.obs.tracer import NULL_TRACER
        before = spans_started()
        seen = []

        def worker():
            seen.append(NULL_TRACER.span("x") is NULL_SPAN)
            NULL_TRACER.count("never")

        t = threading.Thread(target=worker, daemon=True)
        t.start()
        t.join(timeout=10.0)
        assert seen == [True]
        assert spans_started() == before
        assert NULL_TRACER.finish().counters == {}

    def test_registry_many_threads_hammer(self):
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                reg.inc("hits")

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert reg.counter("hits") == n_threads * per_thread


# ---------------------------------------------------------------------------
# ResultCache concurrency (serve-layer bugfix regression)
# ---------------------------------------------------------------------------


class TestResultCacheConcurrency:
    def test_concurrent_hits_misses_and_puts(self):
        from repro.serve.cache import ResultCache
        grid = Grid3D((8, 8, 8))
        field = random_field(grid.shape, np.random.default_rng(0))
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=1, block_size=(2, 64, 64),
                             sync=RelaxedSpec(1, 2))
        res = solve(grid, field, cfg)
        cache = ResultCache(max_entries=4)
        keys = [format(i, "064x") for i in range(8)]
        for k in keys[:4]:
            cache.put(k, res)
        n_threads, per_thread = 8, 100
        errors = []

        def worker(tid):
            rng = np.random.default_rng(tid)
            try:
                for _ in range(per_thread):
                    k = keys[int(rng.integers(len(keys)))]
                    got = cache.get(k)
                    if got is not None:
                        # Clones: mutating my copy must not corrupt
                        # the cached bits other threads read.
                        got.field[:] = -1.0
                    if rng.integers(3) == 0:
                        cache.put(k, res)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,), daemon=True)
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert errors == []
        # Counter exactness: every get was a hit or a miss.
        assert cache.hits + cache.misses == n_threads * per_thread
        assert len(cache) <= 4
        # Surviving entries are uncorrupted despite the mutating readers.
        for k in keys:
            got = cache.get(k)
            if got is not None:
                assert np.array_equal(got.field, res.field)


# ---------------------------------------------------------------------------
# Executor plumbing details
# ---------------------------------------------------------------------------


class TestThreadedExecutorInternals:
    def test_stage_failure_unwinds_cleanly(self):
        grid = Grid3D((12, 10, 10))
        field = random_field(grid.shape, np.random.default_rng(4))
        cfg = small_config(passes=1)
        ex = ThreadedPipelineExecutor(grid, field, cfg, jacobi7(),
                                      watchdog_s=30.0)
        boom = RuntimeError("stage 1 exploded")
        orig = ex._execute_block

        def failing(pass_idx, stage, idx, stats=None):
            if stage == 1 and idx == 1:
                raise boom
            return orig(pass_idx, stage, idx, stats=stats)

        ex._execute_block = failing
        with pytest.raises(RuntimeError, match="stage 1 exploded"):
            ex.run_pass(0)
        # All threads unwound: none left alive.
        assert not [t for t in threading.enumerate()
                    if t.name.startswith("repro-stage-")]

    def test_record_trace_collects_per_stage_program_order(self):
        grid = Grid3D((12, 10, 10))
        field = random_field(grid.shape, np.random.default_rng(6))
        cfg = small_config(passes=1)
        res = run_threaded(grid, field, cfg, record_trace=True)
        trace = res.stats.trace
        assert trace is not None and trace
        for s in range(cfg.n_stages):
            idxs = [i for (_p, st, i) in trace if st == s]
            assert idxs == sorted(idxs)  # per-stage program order
        assert len(trace) == res.stats.block_ops


# ---------------------------------------------------------------------------
# The speedup gate (documented skip off multicore/numba hosts)
# ---------------------------------------------------------------------------


def _have_numba() -> bool:
    import importlib.util
    return importlib.util.find_spec("numba") is not None


@pytest.mark.skipif(
    not _have_numba() or (os.cpu_count() or 1) < 2,
    reason="the >1x threaded-vs-simulated speedup gate needs the numba "
           "engine (GIL-releasing compiled kernels) and >=2 cores; this "
           "host satisfies neither or only one — correctness legs above "
           "still ran")
class TestThreadedSpeedup:
    def test_threads_beat_simulated_rail_with_numba(self):
        from dataclasses import replace
        grid = Grid3D((64, 64, 64))
        field = random_field(grid.shape, np.random.default_rng(0))
        cfg = PipelineConfig(teams=2, threads_per_team=2,
                             updates_per_thread=2, block_size=(8, 64, 64),
                             sync=RelaxedSpec(1, 4), engine="numba")
        # Warm the JIT caches (both flavours) outside the timed region.
        solve(grid, field, cfg, backend="threads", validate=False)
        solve(grid, field, cfg, validate=False)

        def best_of(fn, n=3):
            return min(_timed(fn) for _ in range(n))

        def _timed(fn):
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0

        t_shared = best_of(lambda: solve(grid, field, cfg, validate=False))
        t_threads = best_of(lambda: solve(grid, field, cfg,
                                          backend="threads", validate=False))
        a = solve(grid, field, cfg, validate=False)
        b = solve(grid, field, cfg, backend="threads", validate=False)
        assert np.array_equal(a.field, b.field)
        assert t_shared / t_threads > 1.0, (
            f"threaded rail not faster: shared={t_shared:.3f}s "
            f"threads={t_threads:.3f}s")
