"""Behavioural tests of the pipelined DES against the paper's claims.

These assert *bands and orderings*, not exact numbers: the calibration
targets (EXPERIMENTS.md) say who must win and by roughly what factor.
"""

from __future__ import annotations

import pytest

from repro.core import BarrierSpec, PipelineConfig, RelaxedSpec
from repro.machine import core2_quad, nehalem_ep
from repro.sim import CodeBalance, simulate_pipelined, standard_jacobi_mlups

SHAPE = (200, 200, 200)


def cfg(teams=1, sync=None, T=2, block=(20, 20, 120), storage="compressed"):
    return PipelineConfig(teams=teams, threads_per_team=4,
                          updates_per_thread=T, block_size=block,
                          sync=sync or RelaxedSpec(1, 4), storage=storage)


class TestBaseline:
    def test_socket_matches_eq2_with_efficiency(self):
        m = nehalem_ep()
        rep = standard_jacobi_mlups(m, threads=4)
        expected = m.mem_bw_socket * m.stream_efficiency / 16 / 1e6
        assert rep.mlups == pytest.approx(expected)

    def test_node_doubles_socket_first_touch(self):
        m = nehalem_ep()
        s = standard_jacobi_mlups(m, threads=4).mlups
        n = standard_jacobi_mlups(m, threads=8).mlups
        assert n == pytest.approx(2 * s)

    def test_master_touch_halves_node(self):
        m = nehalem_ep()
        good = standard_jacobi_mlups(m, threads=8).mlups
        bad = standard_jacobi_mlups(m, threads=8,
                                    placement="master_touch").mlups
        assert bad == pytest.approx(good / 2, rel=0.01)

    def test_no_nt_stores_cost_rfo(self):
        m = nehalem_ep()
        nt = standard_jacobi_mlups(m, nt_stores=True).mlups
        rfo = standard_jacobi_mlups(m, nt_stores=False).mlups
        assert rfo == pytest.approx(nt * 16 / 24, rel=0.01)


class TestPipelinedBands:
    def test_socket_speedup_in_paper_band(self):
        m = nehalem_ep()
        std = standard_jacobi_mlups(m, threads=4).mlups
        pipe = simulate_pipelined(m, cfg(1), SHAPE).mlups
        assert 1.35 < pipe / std < 1.8  # paper: 50-60 %

    def test_node_speedup_in_paper_band(self):
        m = nehalem_ep()
        std = standard_jacobi_mlups(m, threads=8).mlups
        pipe = simulate_pipelined(m, cfg(2), SHAPE).mlups
        assert 1.3 < pipe / std < 1.8

    def test_lockstep_penalty(self):
        m = nehalem_ep()
        lock = simulate_pipelined(m, cfg(1, RelaxedSpec(1, 1)), SHAPE).mlups
        loose = simulate_pipelined(m, cfg(1, RelaxedSpec(1, 4)), SHAPE).mlups
        assert loose / lock > 1.4  # paper: ~80 %

    def test_relaxed_beats_barrier(self):
        m = nehalem_ep()
        bar = simulate_pipelined(m, cfg(2, BarrierSpec()), SHAPE).mlups
        rel = simulate_pipelined(m, cfg(2, RelaxedSpec(1, 4)), SHAPE).mlups
        assert rel > bar

    def test_T2_near_optimal(self):
        m = nehalem_ep()
        vals = {T: simulate_pipelined(m, cfg(1, T=T), SHAPE).mlups
                for T in (1, 2, 4)}
        # "The optimal number of updates ... is usually 2 with some very
        # minor improvement at T=4": all within ~10 % of each other.
        assert max(vals.values()) / min(vals.values()) < 1.15

    def test_core2_profits_more(self):
        # Bandwidth-starved designs profit more from temporal blocking
        # (summary/outlook) — relative speedup higher than on Nehalem.
        neh, c2 = nehalem_ep(), core2_quad()
        s_neh = simulate_pipelined(neh, cfg(1), SHAPE).mlups \
            / standard_jacobi_mlups(neh, threads=4).mlups
        s_c2 = simulate_pipelined(c2, cfg(1), SHAPE).mlups \
            / standard_jacobi_mlups(c2, threads=4).mlups
        assert s_c2 > s_neh

    def test_results_reproducible(self):
        m = nehalem_ep()
        a = simulate_pipelined(m, cfg(1), SHAPE, seed=3).mlups
        b = simulate_pipelined(m, cfg(1), SHAPE, seed=3).mlups
        assert a == b

    def test_rate_stable_in_problem_size(self):
        m = nehalem_ep()
        small = simulate_pipelined(m, cfg(1), (200, 200, 200)).mlups
        large = simulate_pipelined(m, cfg(1), (300, 300, 300)).mlups
        assert abs(small - large) / large < 0.1


class TestTrafficAccounting:
    def test_memory_traffic_once_per_pass(self):
        m = nehalem_ep()
        rep = simulate_pipelined(m, cfg(1), SHAPE)
        cells = SHAPE[0] * SHAPE[1] * SHAPE[2]
        # Load ~8 B/cell; writebacks ~8 B/cell (flushed at the end).
        assert rep.mem_bytes == pytest.approx(8 * cells, rel=0.15)
        assert rep.writeback_bytes == pytest.approx(8 * cells, rel=0.15)

    def test_cache_traffic_scales_with_updates(self):
        m = nehalem_ep()
        r1 = simulate_pipelined(m, cfg(1, T=1), SHAPE)
        r2 = simulate_pipelined(m, cfg(1, T=2), SHAPE)
        assert r2.cache_bytes > 1.5 * r1.cache_bytes

    def test_second_team_reads_remote_not_memory(self):
        m = nehalem_ep()
        rep = simulate_pipelined(m, cfg(2), SHAPE)
        cells = SHAPE[0] * SHAPE[1] * SHAPE[2]
        assert rep.remote_bytes == pytest.approx(8 * cells, rel=0.2)

    def test_nt_stores_counterproductive(self):
        m = nehalem_ep()
        bal_nt = CodeBalance.pipelined("twogrid", nt_stores=True)
        nt = simulate_pipelined(m, cfg(1, storage="twogrid"), SHAPE,
                                balance=bal_nt).mlups
        plain = simulate_pipelined(m, cfg(1, storage="twogrid"), SHAPE).mlups
        assert nt < 0.9 * plain

    def test_no_reloads_with_paper_parameters(self):
        m = nehalem_ep()
        rep = simulate_pipelined(m, cfg(1), SHAPE)
        assert rep.reloads == 0


class TestValidationErrors:
    def test_too_many_teams(self):
        m = nehalem_ep()
        with pytest.raises(ValueError, match="cache groups"):
            simulate_pipelined(m, cfg(3), SHAPE)

    def test_team_too_large(self):
        m = nehalem_ep()
        c = PipelineConfig(teams=1, threads_per_team=5, updates_per_thread=1,
                           block_size=(20, 20, 120))
        with pytest.raises(ValueError, match="does not fit"):
            simulate_pipelined(m, c, SHAPE)

    def test_bad_placement(self):
        m = nehalem_ep()
        with pytest.raises(ValueError, match="placement"):
            simulate_pipelined(m, cfg(1), SHAPE, placement="random")

    def test_exact_block_division_no_livelock(self):
        # Regression: blocks dividing the extent exactly once triggered a
        # frozen-timestamp livelock in the flow resource (sub-ulp horizon).
        m = nehalem_ep()
        rep = simulate_pipelined(m, cfg(1, block=(20, 20, 25)),
                                 (100, 100, 100))
        assert rep.total_time > 0
