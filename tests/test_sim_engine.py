"""Tests for the event engine and the max-min fair flow resource."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import FlowResource, waterfill_rates


class TestEngine:
    def test_order_and_time(self):
        e = Engine()
        seen = []
        e.schedule(2.0, lambda: seen.append(("b", e.now)))
        e.schedule(1.0, lambda: seen.append(("a", e.now)))
        e.run()
        assert seen == [("a", 1.0), ("b", 2.0)]

    def test_tie_break_by_insertion(self):
        e = Engine()
        seen = []
        e.schedule(1.0, lambda: seen.append(1))
        e.schedule(1.0, lambda: seen.append(2))
        e.run()
        assert seen == [1, 2]

    def test_cancel(self):
        e = Engine()
        seen = []
        ev = e.schedule(1.0, lambda: seen.append(1))
        ev.cancel()
        e.run()
        assert seen == []

    def test_run_until(self):
        e = Engine()
        seen = []
        e.schedule(5.0, lambda: seen.append(1))
        e.run(until=2.0)
        assert seen == [] and e.now == 2.0
        e.run()
        assert seen == [1]

    def test_rejects_past(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        e = Engine()
        seen = []
        e.schedule(1.0, lambda: e.schedule(1.0, lambda: seen.append(e.now)))
        e.run()
        assert seen == [2.0]


class TestWaterfill:
    def test_equal_share(self):
        assert waterfill_rates(9.0, [10, 10, 10]) == [3.0, 3.0, 3.0]

    def test_caps_respected(self):
        rates = waterfill_rates(10.0, [2.0, 100.0])
        assert rates == [2.0, 8.0]

    def test_work_conserving(self):
        rates = waterfill_rates(10.0, [1.0, 2.0, 100.0])
        assert sum(rates) == pytest.approx(10.0)
        assert rates[0] == 1.0 and rates[1] == 2.0

    def test_all_capped_below_capacity(self):
        rates = waterfill_rates(100.0, [1.0, 2.0])
        assert rates == [1.0, 2.0]

    def test_empty(self):
        assert waterfill_rates(5.0, []) == []


class TestFlowResource:
    def test_single_flow_time(self):
        e = Engine()
        r = FlowResource(e, 100.0)
        done = []
        r.start(200.0, on_done=lambda: done.append(e.now))
        e.run()
        assert done == [pytest.approx(2.0)]

    def test_cap_limits_single_flow(self):
        e = Engine()
        r = FlowResource(e, 100.0)
        done = []
        r.start(100.0, cap=10.0, on_done=lambda: done.append(e.now))
        e.run()
        assert done == [pytest.approx(10.0)]

    def test_two_flows_share(self):
        e = Engine()
        r = FlowResource(e, 100.0)
        done = {}
        r.start(100.0, on_done=lambda: done.setdefault("a", e.now))
        r.start(100.0, on_done=lambda: done.setdefault("b", e.now))
        e.run()
        # Both share 50 B/s each; both finish at t=2.
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_late_arrival_slows_first(self):
        e = Engine()
        r = FlowResource(e, 100.0)
        done = {}
        r.start(100.0, on_done=lambda: done.setdefault("a", e.now))
        e.schedule(0.5, lambda: r.start(
            100.0, on_done=lambda: done.setdefault("b", e.now)))
        e.run()
        # a: 50 B alone in 0.5 s, then 50 B at 50 B/s -> t = 1.5.
        assert done["a"] == pytest.approx(1.5)
        # b: 50 B while sharing (1.0 s), then 50 B alone (0.5 s) -> t = 2.0.
        assert done["b"] == pytest.approx(2.0)

    def test_zero_byte_flow_completes_immediately(self):
        e = Engine()
        r = FlowResource(e, 10.0)
        done = []
        r.start(0.0, on_done=lambda: done.append(e.now))
        e.run()
        assert done == [0.0]

    def test_byte_accounting(self):
        e = Engine()
        r = FlowResource(e, 10.0)
        r.start(30.0)
        r.start(20.0)
        e.run()
        assert r.total_bytes == pytest.approx(50.0)
        assert r.busy_time == pytest.approx(5.0)
        assert r.utilisation(10.0) == pytest.approx(0.5)

    def test_rejects_bad_args(self):
        e = Engine()
        with pytest.raises(ValueError):
            FlowResource(e, 0.0)
        r = FlowResource(e, 10.0)
        with pytest.raises(ValueError):
            r.start(-1.0)
