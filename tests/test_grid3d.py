"""Tests for Grid3D and DirichletBoundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import Box, DirichletBoundary, Grid3D, random_field


class TestDirichletBoundary:
    def test_scalar_default(self):
        bc = DirichletBoundary(2.5)
        box = Box((-1, 0, 0), (0, 3, 3))
        np.testing.assert_array_equal(bc.values_for_face(0, -1, box),
                                      np.full((1, 3, 3), 2.5))

    def test_per_face(self):
        bc = DirichletBoundary(0.0, faces={(1, 1): 7.0})
        assert bc.face_value(1, 1) == 7.0
        assert bc.face_value(1, -1) == 0.0
        box = Box((0, 8, 0), (3, 9, 3))
        np.testing.assert_array_equal(bc.values_for_face(1, 1, box),
                                      np.full((3, 1, 3), 7.0))

    def test_func_evaluated_at_coords(self):
        bc = DirichletBoundary(func=lambda z, y, x: x * 1.0 + 0 * y + 0 * z)
        box = Box((0, 0, -1), (2, 2, 0))
        np.testing.assert_array_equal(bc.values_for_face(2, -1, box),
                                      np.full((2, 2, 1), -1.0))

    def test_bad_face_key(self):
        with pytest.raises(ValueError):
            DirichletBoundary(0.0, faces={(3, 1): 1.0})
        with pytest.raises(ValueError):
            DirichletBoundary(0.0, faces={(0, 2): 1.0})


class TestGrid3D:
    def test_domain_and_ncells(self):
        g = Grid3D((3, 4, 5))
        assert g.domain == Box((0, 0, 0), (3, 4, 5))
        assert g.ncells == 60

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Grid3D((0, 4, 4))
        with pytest.raises(ValueError):
            Grid3D((4, 4))

    def test_make_field_scalar(self):
        g = Grid3D((2, 2, 2))
        np.testing.assert_array_equal(g.make_field(3.0), np.full((2, 2, 2), 3.0))

    def test_make_field_callable(self):
        g = Grid3D((2, 3, 4))
        f = g.make_field(lambda z, y, x: z * 100 + y * 10 + x)
        assert f[1, 2, 3] == 123.0
        assert f.shape == (2, 3, 4)

    def test_make_field_array_copy(self):
        g = Grid3D((2, 2, 2))
        src = np.ones((2, 2, 2))
        f = g.make_field(src)
        src[0, 0, 0] = 99
        assert f[0, 0, 0] == 1.0

    def test_make_field_shape_mismatch(self):
        g = Grid3D((2, 2, 2))
        with pytest.raises(ValueError):
            g.make_field(np.ones((3, 3, 3)))

    def test_padded_faces(self):
        bc = DirichletBoundary(0.0, faces={(0, -1): 5.0, (2, 1): -2.0})
        g = Grid3D((3, 3, 3), boundary=bc)
        p = g.padded(np.zeros((3, 3, 3)))
        assert p.shape == (5, 5, 5)
        np.testing.assert_array_equal(p[0, 1:-1, 1:-1], np.full((3, 3), 5.0))
        np.testing.assert_array_equal(p[1:-1, 1:-1, -1], np.full((3, 3), -2.0))
        np.testing.assert_array_equal(p[-1, 1:-1, 1:-1], np.zeros((3, 3)))

    def test_padded_preserves_interior(self):
        g = Grid3D((4, 4, 4))
        f = random_field(g.shape, np.random.default_rng(1))
        p = g.padded(f)
        np.testing.assert_array_equal(p[1:-1, 1:-1, 1:-1], f)

    def test_random_field_range(self):
        f = random_field((4, 4, 4), np.random.default_rng(0), lo=2.0, hi=3.0)
        assert f.min() >= 2.0 and f.max() <= 3.0
