"""Tests for the two-grid and compressed-grid storage schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.storage import (
    CompressedStorage,
    StorageError,
    TwoGridStorage,
    make_storage,
)
from repro.grid import Box, DirichletBoundary, Grid3D, random_field

RNG = np.random.default_rng(3)


def make_twogrid(shape=(6, 5, 5), bc=None):
    grid = Grid3D(shape, boundary=bc)
    field = random_field(shape, RNG)
    return grid, field, TwoGridStorage(grid, field)


class TestTwoGrid:
    def test_initial_extract(self):
        grid, field, st = make_twogrid()
        np.testing.assert_array_equal(st.extract(0), field)

    def test_write_then_extract(self):
        grid, field, st = make_twogrid()
        region = grid.domain
        vals = np.ones(region.shape)
        st.write(region, 1, vals)
        np.testing.assert_array_equal(st.extract(1), vals)

    def test_write_requires_previous_level(self):
        grid, field, st = make_twogrid()
        with pytest.raises(StorageError):
            st.write(grid.domain, 2, np.zeros(grid.shape))

    def test_write_shape_mismatch(self):
        grid, field, st = make_twogrid()
        with pytest.raises(StorageError):
            st.write(grid.domain, 1, np.zeros((1, 1, 1)))

    def test_two_buffer_window_ok(self):
        grid, field, st = make_twogrid()
        lower = Box((0, 0, 0), (3, 5, 5))
        st.write(lower, 1, np.zeros(lower.shape))
        # Reading level 0 next to cells now at level 1 is legal (window).
        out = st.gather(Box((3, 0, 0), (4, 5, 5)), (-1, 0, 0), 0)
        np.testing.assert_array_equal(out, np.zeros((1, 5, 5)) + field[2:3] * 0
                                      + st._arrays[0][2:3])

    def test_two_buffer_violation_detected(self):
        grid, field, st = make_twogrid()
        lower = Box((0, 0, 0), (3, 5, 5))
        st.write(lower, 1, np.zeros(lower.shape))
        st.write(lower, 2, np.zeros(lower.shape))
        # Cells at level 2 no longer hold level-0 values.
        with pytest.raises(StorageError, match="two-buffer"):
            st.gather(Box((3, 0, 0), (4, 5, 5)), (-1, 0, 0), 0)

    def test_gather_boundary_patch_low_face(self):
        bc = DirichletBoundary(7.5)
        grid, field, st = make_twogrid(bc=bc)
        out = st.gather(Box((0, 0, 0), (1, 5, 5)), (-1, 0, 0), 0)
        np.testing.assert_array_equal(out, np.full((1, 5, 5), 7.5))

    def test_gather_boundary_patch_high_face(self):
        bc = DirichletBoundary(0.0, faces={(2, 1): -3.0})
        grid, field, st = make_twogrid(bc=bc)
        out = st.gather(Box((0, 0, 3), (6, 5, 5)), (0, 0, 1), 0)
        # Interior part from the field, last x-plane from the boundary.
        np.testing.assert_array_equal(out[:, :, -1], np.full((6, 5), -3.0))
        np.testing.assert_array_equal(out[:, :, 0], field[:, :, 4])

    def test_gather_interior_is_view_fast_path(self):
        grid, field, st = make_twogrid()
        box = Box((1, 1, 1), (3, 3, 3))
        out = st.gather(box, (1, 0, 0), 0)
        np.testing.assert_array_equal(out, field[2:4, 1:3, 1:3])

    def test_gather_region_outside_domain_rejected(self):
        grid, field, st = make_twogrid()
        with pytest.raises(StorageError):
            st.gather(Box((-1, 0, 0), (1, 5, 5)), (1, 0, 0), 0)

    def test_inject_jumps_level(self):
        grid, field, st = make_twogrid()
        box = Box((0, 0, 0), (2, 5, 5))
        st.inject(box, 5, np.full(box.shape, 2.0))
        np.testing.assert_array_equal(st.extract_region(box, 5),
                                      np.full(box.shape, 2.0))

    def test_extract_nonuniform_level_rejected(self):
        grid, field, st = make_twogrid()
        st.write(Box((0, 0, 0), (2, 5, 5)), 1, np.zeros((2, 5, 5)))
        with pytest.raises(StorageError):
            st.extract(1)

    def test_array_bytes(self):
        grid, field, st = make_twogrid()
        assert st.array_bytes == 2 * field.nbytes


class TestCompressed:
    def make(self, shape=(8, 5, 5), upp=4):
        grid = Grid3D(shape)
        field = random_field(shape, RNG)
        st = CompressedStorage(grid, field, (1, 0, 0), upp)
        return grid, field, st

    def test_margin_allocation(self):
        grid, field, st = self.make(upp=4)
        assert st._array.shape == (12, 5, 5)
        assert st.margin == (4, 0, 0)

    def test_offsets_forward_and_unwind(self):
        _, _, st = self.make(upp=4)
        assert [st.offset_scalar(v) for v in range(0, 9)] == [
            0, -1, -2, -3, -4, -3, -2, -1, 0]

    def test_initial_extract(self):
        grid, field, st = self.make()
        np.testing.assert_array_equal(st.extract(0), field)

    def test_write_goes_to_shifted_position(self):
        grid, field, st = self.make()
        region = grid.domain
        vals = np.full(region.shape, 1.5)
        st.write(region, 1, vals)
        # Level-1 values live one cell lower in storage.
        np.testing.assert_array_equal(st._array[3:11], vals)
        np.testing.assert_array_equal(st.extract(1), vals)

    def test_clobber_detected_on_read(self):
        grid, field, st = self.make(shape=(8, 5, 5), upp=4)
        # Update the lower half twice; its level-1 write at offset -1
        # overwrites level-0 values of cells one layer below itself.
        lower = Box((0, 0, 0), (4, 5, 5))
        st.write(lower, 1, np.zeros(lower.shape))
        st.write(lower, 2, np.zeros(lower.shape))
        # The level-1 write at offset -1 covered storage rows [3, 7), which
        # is where cell z=2 keeps its level-0 value (row 2+margin=6): that
        # value is gone, and reading it must raise.
        with pytest.raises(StorageError, match="compressed-grid"):
            st.gather(Box((3, 0, 0), (4, 5, 5)), (-1, 0, 0), 0)
        # Cell z=3's level-0 value (row 7) survived and is still readable.
        out = st.gather(Box((4, 0, 0), (5, 5, 5)), (-1, 0, 0), 0)
        np.testing.assert_array_equal(out[0], field[3])

    def test_never_produced_value_detected(self):
        grid, field, st = self.make()
        with pytest.raises(StorageError):
            st._read_inside(Box((0, 0, 0), (1, 5, 5)), 3)

    def test_single_array_bytes(self):
        grid, field, st = self.make(upp=4)
        assert st.array_bytes == 12 * 5 * 5 * 8

    def test_rejects_bad_shift_vec(self):
        grid = Grid3D((4, 4, 4))
        f = np.zeros((4, 4, 4))
        with pytest.raises(ValueError):
            CompressedStorage(grid, f, (0, 0, 0), 2)
        with pytest.raises(ValueError):
            CompressedStorage(grid, f, (2, 0, 0), 2)


class TestWriteView:
    """The in-place engine's entry point: view out, fill, commit."""

    def test_twogrid_view_targets_the_other_array(self):
        grid, field, st = make_twogrid()
        view = st.write_view(grid.domain, 1)
        view[...] = 2.5
        st.commit_write(grid.domain, 1)
        np.testing.assert_array_equal(st.extract(1),
                                      np.full(grid.shape, 2.5))
        # The level-0 array was never touched.
        np.testing.assert_array_equal(st._arrays[0], field)

    def test_twogrid_view_validates_previous_level(self):
        grid, field, st = make_twogrid()
        with pytest.raises(StorageError):
            st.write_view(grid.domain, 2)
        with pytest.raises(StorageError):
            st.write_view(Box((0, 0, 0), (7, 5, 5)), 1)

    def test_compressed_view_is_shifted_and_commit_tracks_positions(self):
        grid = Grid3D((8, 5, 5))
        field = random_field(grid.shape, RNG)
        st = CompressedStorage(grid, field, (1, 0, 0), 4)
        region = Box((0, 0, 0), (8, 5, 5))
        view = st.write_view(region, 1)
        assert view.shape == region.shape
        view[...] = 3.0
        st.commit_write(region, 1)
        np.testing.assert_array_equal(st.extract(1),
                                      np.full(grid.shape, 3.0))
        # Positions shifted by -1 along z now carry level 1.
        assert bool(np.all(st._pos_level[3:11] == 1))

    def test_compressed_uncommitted_view_is_not_readable(self):
        grid = Grid3D((8, 5, 5))
        st = CompressedStorage(grid, random_field(grid.shape, RNG),
                               (1, 0, 0), 4)
        view = st.write_view(grid.domain, 1)
        view[...] = 1.0  # filled but never committed
        with pytest.raises(StorageError):
            st.extract(1)


class TestFactory:
    def test_make_twogrid(self):
        grid = Grid3D((4, 4, 4))
        st = make_storage("twogrid", grid, np.zeros(grid.shape), (1, 0, 0), 2)
        assert isinstance(st, TwoGridStorage)

    def test_make_compressed(self):
        grid = Grid3D((4, 4, 4))
        st = make_storage("compressed", grid, np.zeros(grid.shape), (1, 0, 0), 2)
        assert isinstance(st, CompressedStorage)

    def test_unknown_scheme(self):
        grid = Grid3D((4, 4, 4))
        with pytest.raises(ValueError):
            make_storage("tiled", grid, np.zeros(grid.shape), (1, 0, 0), 2)
