"""Service fault paths: one job's crash never takes the service down.

The contract (extending the rail-level guarantees of
``test_fault_injection``):

* a job whose rank raises — or is killed outright — fails **only its
  own future**, with the original exception (or the rail's
  ``ProcMPIError`` for a hard death) coming out of ``result()``;
* the broken warm session is dropped crash-only (its world, rank
  processes and shared-memory segments are already torn down) and the
  pool warms a fresh session, so **subsequent jobs keep being served**;
* after the service closes, ``/dev/shm`` holds no segment of ours and
  no rank process survives (the autouse fixture asserts both around
  every test).

Boundary functions are module-level so every test also runs under the
``spawn`` start method.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro import Grid3D, PipelineConfig, RelaxedSpec
from repro.dist.procmpi import ProcMPIError
from repro.dist.shm import live_segments
from repro.grid import DirichletBoundary, random_field
from repro.kernels import reference_sweeps
from repro.serve import Service


@pytest.fixture(autouse=True)
def no_shm_leaks_or_zombies():
    before = live_segments()
    yield
    after = live_segments()
    if before is not None:
        assert after == before
    assert mp.active_children() == []


def _poison_boundary(z, y, x):
    """A Dirichlet ``func`` that detonates when a rank evaluates it."""
    raise RuntimeError("poisoned boundary")


def _kill_boundary(z, y, x):
    """A Dirichlet ``func`` that kills the evaluating rank outright."""
    os._exit(17)


def _cfg() -> PipelineConfig:
    return PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                          block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))


def _good_problem(seed: int = 0):
    grid = Grid3D((12, 12, 12))
    return grid, random_field(grid.shape, np.random.default_rng(seed))


def _bad_problem(boundary_func):
    grid = Grid3D((12, 12, 12),
                  boundary=DirichletBoundary(0.0, func=boundary_func))
    return grid, random_field(grid.shape, np.random.default_rng(1))


class TestProcmpiFaults:
    def test_crashing_job_fails_only_its_future(self):
        cfg = _cfg()
        good_grid, good_field = _good_problem()
        bad_grid, bad_field = _bad_problem(_poison_boundary)
        ref = reference_sweeps(good_grid, good_field, cfg.total_updates)
        with Service(workers=1, cache=False) as svc:
            before = svc.submit(good_grid, good_field, cfg,
                                topology=(1, 1, 2), backend="procmpi")
            bad = svc.submit(bad_grid, bad_field, cfg,
                             topology=(1, 1, 2), backend="procmpi")
            after = [svc.submit(good_grid,
                                random_field(good_grid.shape,
                                             np.random.default_rng(i)),
                                cfg, topology=(1, 1, 2), backend="procmpi")
                     for i in range(2, 4)]
            # Fail-fast with the original exception, on this future only.
            with pytest.raises(RuntimeError, match="poisoned boundary"):
                bad.result(timeout=120)
            np.testing.assert_allclose(before.result(timeout=120).field,
                                       ref, rtol=0, atol=1e-13)
            for fut in after:
                res = fut.result(timeout=120)
                assert res.backend == "procmpi"
                assert res.field.shape == good_grid.shape
            st = svc.stats
        assert st.failed == 1 and st.completed == 3
        # The poisoned session was dropped and a fresh one warmed.
        assert st.sessions_dropped == 1
        assert st.sessions_created == 2

    def test_killed_rank_fails_only_its_future(self):
        cfg = _cfg()
        good_grid, good_field = _good_problem()
        bad_grid, bad_field = _bad_problem(_kill_boundary)
        with Service(workers=1, cache=False) as svc:
            bad = svc.submit(bad_grid, bad_field, cfg,
                             topology=(1, 1, 2), backend="procmpi")
            good = svc.submit(good_grid, good_field, cfg,
                              topology=(1, 1, 2), backend="procmpi")
            with pytest.raises(ProcMPIError, match="died without reporting"):
                bad.result(timeout=120)
            ref = reference_sweeps(good_grid, good_field, cfg.total_updates)
            np.testing.assert_allclose(good.result(timeout=120).field,
                                       ref, rtol=0, atol=1e-13)
            st = svc.stats
        assert st.failed == 1 and st.completed == 1
        assert st.sessions_dropped == 1

    def test_broken_session_segments_are_gone_while_service_lives(self):
        # Crash-only teardown happens at failure time, not service close:
        # after the bad future resolves, only the *fresh* session's
        # segments may exist — the poisoned world's are unlinked.
        cfg = _cfg()
        bad_grid, bad_field = _bad_problem(_poison_boundary)
        baseline = live_segments()
        with Service(workers=1, cache=False) as svc:
            bad = svc.submit(bad_grid, bad_field, cfg,
                             topology=(1, 1, 2), backend="procmpi")
            with pytest.raises(RuntimeError, match="poisoned boundary"):
                bad.result(timeout=120)
            if baseline is not None:
                assert live_segments() == baseline


class TestThreadBackendFaults:
    @pytest.mark.parametrize("backend,topology", [
        ("shared", (1, 1, 1)),
        ("simmpi", (1, 1, 2)),
    ])
    def test_failing_job_releases_only_its_future(self, backend, topology):
        cfg = _cfg()
        good_grid, good_field = _good_problem()
        bad_grid, bad_field = _bad_problem(_poison_boundary)
        with Service(workers=1, cache=False) as svc:
            bad = svc.submit(bad_grid, bad_field, cfg, topology=topology,
                             backend=backend)
            good = svc.submit(good_grid, good_field, cfg, topology=topology,
                              backend=backend)
            with pytest.raises(RuntimeError, match="poisoned boundary"):
                bad.result(timeout=120)
            ref = reference_sweeps(good_grid, good_field, cfg.total_updates)
            np.testing.assert_allclose(good.result(timeout=120).field,
                                       ref, rtol=0, atol=1e-13)
            st = svc.stats
        assert st.failed == 1 and st.completed == 1
