"""Equivalence of pipelined temporal blocking with plain Jacobi sweeps.

This is the central correctness claim of the reproduction: every
configuration of the pipelined scheme — any team count, team size, T,
block size, sync policy, storage scheme and interleaving order — must
produce exactly the same field as ``passes * n*t*T`` naive sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BarrierSpec,
    Grid3D,
    PipelineConfig,
    RelaxedSpec,
    run_pipelined,
)
from repro.grid import DirichletBoundary, random_field
from repro.kernels import anisotropic_jacobi, jacobi5_2d, jacobi7, reference_sweeps

RNG = np.random.default_rng(42)


def assert_matches_reference(grid, field, cfg, stencil=None, order="round_robin",
                             rng=None):
    res = run_pipelined(grid, field, cfg, stencil=stencil, order=order, rng=rng)
    ref = reference_sweeps(grid, field, cfg.total_updates, stencil=stencil)
    np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)
    return res


class TestSingleTeam:
    def test_one_thread_t1_is_plain_sweep(self):
        grid = Grid3D((10, 9, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=1, updates_per_thread=1,
                             block_size=(3, 100, 100))
        assert_matches_reference(grid, field, cfg)

    def test_two_threads_barrier(self):
        grid = Grid3D((12, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(4, 100, 100), sync=BarrierSpec())
        assert_matches_reference(grid, field, cfg)

    def test_four_threads_t2_barrier(self):
        grid = Grid3D((16, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=2,
                             block_size=(4, 100, 100), sync=BarrierSpec())
        assert_matches_reference(grid, field, cfg)

    def test_four_threads_t2_relaxed(self):
        grid = Grid3D((16, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=2,
                             block_size=(4, 100, 100), sync=RelaxedSpec(1, 4))
        assert_matches_reference(grid, field, cfg)


class TestMultiTeam:
    def test_two_teams_like_paper_node(self):
        # The paper's node setup scaled down: n=2 teams of t=4, T=2.
        grid = Grid3D((24, 10, 10))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=2, threads_per_team=4, updates_per_thread=2,
                             block_size=(4, 100, 100),
                             sync=RelaxedSpec(1, 4, team_delay=2))
        assert_matches_reference(grid, field, cfg)

    def test_team_delay_zero_vs_eight_same_result(self):
        grid = Grid3D((20, 8, 8))
        field = random_field(grid.shape, RNG)
        outs = []
        for dt in (0, 8):
            cfg = PipelineConfig(teams=2, threads_per_team=2,
                                 updates_per_thread=1,
                                 block_size=(4, 100, 100),
                                 sync=RelaxedSpec(1, 2, team_delay=dt))
            outs.append(run_pipelined(grid, field, cfg).field)
        np.testing.assert_array_equal(outs[0], outs[1])


class TestOrdersAndSync:
    @pytest.mark.parametrize("order", ["round_robin", "random", "front_first",
                                       "rear_first"])
    def test_all_orders_agree(self, order):
        grid = Grid3D((14, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=3, updates_per_thread=2,
                             block_size=(3, 100, 100), sync=RelaxedSpec(1, 3))
        assert_matches_reference(grid, field, cfg, order=order,
                                 rng=np.random.default_rng(7))

    @pytest.mark.parametrize("du", [1, 2, 5])
    def test_looseness_sweep(self, du):
        grid = Grid3D((16, 6, 6))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=4, updates_per_thread=1,
                             block_size=(2, 100, 100), sync=RelaxedSpec(1, du))
        assert_matches_reference(grid, field, cfg, order="front_first")


class TestStorageSchemes:
    @pytest.mark.parametrize("storage", ["twogrid", "compressed"])
    def test_storage_equivalence(self, storage):
        grid = Grid3D((18, 7, 7))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=3, updates_per_thread=2,
                             block_size=(3, 100, 100),
                             sync=RelaxedSpec(1, 3), storage=storage)
        assert_matches_reference(grid, field, cfg)

    def test_compressed_multi_pass_shift_unwinds(self):
        # Two passes: offsets go to -n*t*T then back to 0.
        grid = Grid3D((12, 6, 6))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(3, 100, 100), storage="compressed",
                             sync=RelaxedSpec(1, 2), passes=2)
        assert_matches_reference(grid, field, cfg)

    def test_compressed_three_passes(self):
        grid = Grid3D((10, 5, 5))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(2, 100, 100), storage="compressed",
                             passes=3)
        assert_matches_reference(grid, field, cfg)


class TestMultiPass:
    def test_two_passes_twogrid(self):
        grid = Grid3D((16, 6, 6))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(4, 100, 100),
                             sync=RelaxedSpec(1, 2), passes=2)
        assert_matches_reference(grid, field, cfg)


class TestBoundariesAndStencils:
    def test_nonzero_dirichlet_faces(self):
        bc = DirichletBoundary(0.0, faces={(0, -1): 2.0, (2, 1): -1.5})
        grid = Grid3D((12, 8, 8), boundary=bc)
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(3, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg)

    def test_functional_boundary(self):
        bc = DirichletBoundary(func=lambda z, y, x: np.sin(0.3 * x) + 0.1 * y + 0.0 * z)
        grid = Grid3D((10, 8, 8), boundary=bc)
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(3, 100, 100))
        assert_matches_reference(grid, field, cfg)

    def test_2d_stencil(self):
        grid = Grid3D((8, 16, 16))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(2, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg, stencil=jacobi5_2d())

    def test_anisotropic_stencil(self):
        grid = Grid3D((12, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=3, updates_per_thread=1,
                             block_size=(3, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg,
                                 stencil=anisotropic_jacobi(1.0, 2.0, 0.5))

    def test_damped_jacobi_center_weight(self):
        grid = Grid3D((12, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(3, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg, stencil=jacobi7().damped(0.8))


class TestAwkwardShapes:
    def test_block_not_dividing_extent(self):
        grid = Grid3D((13, 7, 5))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=3, updates_per_thread=2,
                             block_size=(4, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg)

    def test_block_thinner_than_pipeline_depth(self):
        # n*t*T = 8 but blocks are only 2 cells thick: clipped drain regions
        # must still cover everything.
        grid = Grid3D((11, 5, 5))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=2,
                             block_size=(2, 100, 100), sync=RelaxedSpec(1, 2))
        assert_matches_reference(grid, field, cfg)

    def test_single_block_domain(self):
        # Block spans the whole domain: untiled, no shift, still works.
        grid = Grid3D((6, 6, 6))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(2, 100, 100))
        assert_matches_reference(grid, field, cfg)
