"""Tests for the D2Q9 lattice-Boltzmann kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.lbm import D2Q9, poiseuille_profile


class TestBasics:
    def test_initial_state_at_rest(self):
        sim = D2Q9((8, 8))
        st = sim.macroscopic()
        np.testing.assert_allclose(st.density, 1.0)
        np.testing.assert_allclose(st.ux, 0.0)
        np.testing.assert_allclose(st.uy, 0.0)

    def test_viscosity(self):
        assert D2Q9((8, 8), tau=0.8).viscosity == pytest.approx(0.1)
        assert D2Q9((8, 8), tau=1.1).viscosity == pytest.approx(0.2)

    def test_rejects_unstable_tau(self):
        with pytest.raises(ValueError):
            D2Q9((8, 8), tau=0.5)

    def test_rejects_tiny_lattice(self):
        with pytest.raises(ValueError):
            D2Q9((2, 4))

    def test_equilibrium_conserves_moments(self):
        rng = np.random.default_rng(0)
        rho = 1.0 + 0.1 * rng.random((4, 4))
        ux = 0.05 * rng.random((4, 4))
        uy = 0.05 * rng.random((4, 4))
        feq = D2Q9.equilibrium(rho, ux, uy)
        np.testing.assert_allclose(feq.sum(0), rho, rtol=1e-12)


class TestConservation:
    def test_mass_conserved_without_force(self):
        sim = D2Q9((12, 10), tau=0.9)
        m0 = sim.macroscopic().total_mass
        sim.step(50)
        assert sim.macroscopic().total_mass == pytest.approx(m0, rel=1e-12)

    def test_rest_state_is_fixed_point(self):
        sim = D2Q9((8, 8), tau=0.7)
        f0 = sim.f.copy()
        sim.step(10)
        np.testing.assert_allclose(sim.f, f0, atol=1e-14)

    def test_walls_stay_at_zero_velocity(self):
        sim = D2Q9((10, 8), tau=0.8, body_force=(1e-5, 0.0))
        sim.step(100)
        st = sim.macroscopic()
        np.testing.assert_allclose(st.ux[0], 0.0, atol=1e-14)
        np.testing.assert_allclose(st.ux[-1], 0.0, atol=1e-14)


class TestPoiseuille:
    def test_profile_matches_analytic(self):
        fx = 1e-6
        sim = D2Q9((18, 8), tau=0.8, body_force=(fx, 0.0))
        st = sim.run_to_steady(max_steps=20000, check_every=400, tol=1e-12)
        profile = st.ux[1:-1, 4]
        analytic = poiseuille_profile(18, fx, sim.viscosity)
        err = np.abs(profile - analytic).max() / analytic.max()
        assert err < 0.03

    def test_profile_symmetric(self):
        sim = D2Q9((16, 6), tau=0.9, body_force=(1e-6, 0.0))
        st = sim.run_to_steady(max_steps=15000, check_every=400, tol=1e-12)
        p = st.ux[1:-1, 3]
        np.testing.assert_allclose(p, p[::-1], rtol=1e-6)

    def test_velocity_scales_with_force(self):
        outs = []
        for fx in (5e-7, 1e-6):
            sim = D2Q9((14, 6), tau=0.8, body_force=(fx, 0.0))
            st = sim.run_to_steady(max_steps=15000, check_every=400, tol=1e-13)
            outs.append(st.ux[7, 3])
        assert outs[1] == pytest.approx(2 * outs[0], rel=0.02)
