"""The static analyzer: adversarial schedules, certification, lint.

Three layers of evidence that the analyzer means what it says:

* **Adversarial** — every known-illegal schedule family (empty window,
  insufficient lead, sub-minimal halo, aliasing in-place traversal,
  radius beyond the one-cell shift's budget) is rejected with a
  concrete witness, and the near-miss legal neighbours of each are
  certified — the analyzer discriminates, it does not just say no.
* **Differential** — every schedule the analyzer certifies in the
  quick perf suite actually solves bit-identically to the reference
  sweep implementation: certification is sound on the cases we run.
* **Lint** — each project rule fires on a minimal bad example and the
  shipped tree has zero findings (pinned as a regression).
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import (
    Finding,
    Report,
    ScheduleSpec,
    StaticAnalysisError,
    analyze_schedule,
    assert_legal,
    lint_paths,
    lint_source,
    quick_check,
)
from repro.core.parameters import PipelineConfig, RelaxedSpec
from repro.grid import Grid3D, random_field
from repro.kernels import reference_sweeps

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

SHAPE = (32, 32, 32)
BLOCK = (8, 64, 64)


def spec(**kw):
    base = dict(teams=1, threads_per_team=4, updates_per_thread=1,
                block_size=BLOCK, sync_kind="relaxed", d_l=1, d_u=4)
    base.update(kw)
    return ScheduleSpec(**base)


def errors_of(report, checker):
    return [f for f in report.errors if f.checker == checker]


# -- report plumbing ---------------------------------------------------------


def test_finding_rejects_bad_severity():
    with pytest.raises(ValueError, match="severity"):
        Finding("x", "fatal", "loc", "msg")


def test_report_ok_ignores_warnings():
    r = Report(subject="s")
    r.add("w", "warning", "loc", "msg")
    assert r.ok and not r.errors
    r.add("e", "error", "loc", "msg")
    assert not r.ok
    assert "REJECTED" in r.describe()


# -- certification of legal schedules ----------------------------------------


def test_certifies_paper_default_window():
    report = analyze_schedule(spec(), SHAPE)
    assert report.ok, report.describe()
    assert any("explored" in n for n in report.notes)


def test_certifies_barrier_and_teams():
    assert analyze_schedule(spec(sync_kind="barrier"), SHAPE).ok
    assert analyze_schedule(
        spec(teams=2, threads_per_team=2, updates_per_thread=2,
             team_delay=1), SHAPE).ok


def test_certifies_compressed_inplace():
    report = analyze_schedule(
        spec(storage="compressed", engine="inplace"), SHAPE)
    assert report.ok, report.describe()


def test_drain_waiver_precision():
    # d_u = d_l - 1: RelaxedSpec refuses to construct this window, but
    # the automaton proves it actually drains (the finished-predecessor
    # waiver unblocks the tail) — the analyzer is *more* precise than
    # the constructor guard, not a mirror of it.
    report = analyze_schedule(spec(d_l=2, d_u=1), SHAPE)
    assert report.ok, report.describe()


# -- adversarial: hazard windows ---------------------------------------------


def test_d_l_zero_yields_raw_witness():
    report = analyze_schedule(spec(d_l=0), SHAPE)
    raw = errors_of(report, "raw-hazard")
    assert raw, report.describe()
    assert "witness interleaving" in raw[0].witness
    assert "required lead" in raw[0].witness


def test_empty_window_deadlocks_with_witness():
    report = analyze_schedule(spec(d_l=3, d_u=1), SHAPE)
    dead = errors_of(report, "deadlock")
    assert dead, report.describe()
    assert "interleaving" in dead[0].witness


def test_assert_legal_raises_with_report():
    cfg = PipelineConfig(teams=1, threads_per_team=4,
                         updates_per_thread=1, block_size=BLOCK,
                         sync=RelaxedSpec(1, 4))
    assert_legal(cfg, SHAPE)  # legal: no raise
    with pytest.raises(StaticAnalysisError) as exc:
        assert_legal(spec(d_l=0), SHAPE)
    assert not exc.value.report.ok


# -- adversarial: stencil radius vs the one-cell shift -----------------------


def test_radius_two_needs_lead_two_on_twogrid():
    assert not analyze_schedule(spec(radius=2), SHAPE).ok
    assert analyze_schedule(spec(radius=2, d_l=2), SHAPE).ok


def test_radius_two_structurally_illegal_on_compressed():
    # No window fixes this: the same-stage WAR runs against program
    # order, so the finding must not mention counters at all.
    report = analyze_schedule(
        spec(radius=2, d_l=4, d_u=8, storage="compressed"), SHAPE)
    war = errors_of(report, "war-hazard")
    assert war, report.describe()
    assert "program order" in war[0].message


# -- adversarial: in-place traversal direction -------------------------------


def test_forced_descending_inplace_is_flagged():
    report = analyze_schedule(
        spec(storage="compressed", engine="inplace", inplace_step=-1),
        SHAPE)
    assert errors_of(report, "inplace-aliasing"), report.describe()


def test_non_fused_engines_tolerate_either_direction():
    report = analyze_schedule(
        spec(storage="compressed", engine="numpy", inplace_step=-1),
        SHAPE)
    assert report.ok, report.describe()


def test_unknown_engine_is_a_finding_not_a_crash():
    report = analyze_schedule(spec(engine="nonesuch"), SHAPE)
    assert errors_of(report, "engine-unknown"), report.describe()


# -- adversarial: distributed geometry ---------------------------------------


def test_subminimal_halo_rejected_with_trapezoid_witness():
    s = spec(teams=2, threads_per_team=2, updates_per_thread=2)
    assert s.updates_per_pass == 8
    report = analyze_schedule(s, SHAPE, (2, 1, 1), halo=4)
    assert errors_of(report, "halo-depth"), report.describe()
    trap = errors_of(report, "trapezoid")
    assert trap and "is read but never stored" in trap[0].witness


def test_oversized_halo_is_a_warning_only():
    s = spec(teams=2, threads_per_team=2, updates_per_thread=2)
    report = analyze_schedule(s, SHAPE, (2, 1, 1), halo=10)
    assert report.ok
    assert any(f.checker == "halo-depth" and f.severity == "warning"
               for f in report.findings)


def test_compressed_storage_illegal_distributed():
    report = analyze_schedule(
        spec(storage="compressed"), SHAPE, (2, 1, 1))
    assert errors_of(report, "dist-storage"), report.describe()


def test_structural_config_errors_never_crash():
    report = analyze_schedule(spec(teams=0), SHAPE)
    assert errors_of(report, "config-error")
    report = analyze_schedule(spec(block_size=(0, 1, 1)), SHAPE)
    assert errors_of(report, "config-error")


# -- differential: certified => bit-identical to reference -------------------


def test_certified_quick_suite_solves_match_reference():
    from repro.perf.scenarios import solver_schedules

    for name, shape, cfg, topo in solver_schedules("quick"):
        report = analyze_schedule(cfg, shape, topo)
        assert report.ok, f"{name}: {report.describe()}"
        grid = Grid3D(shape)
        field = random_field(shape, np.random.default_rng(11))
        backend = "simmpi" if topo != (1, 1, 1) else "shared"
        got = repro.solve(grid, field, cfg, topology=topo,
                          backend=backend, validate="static")
        ref = reference_sweeps(grid, field, cfg.total_updates)
        assert np.array_equal(got.field, ref), name


def test_solve_validate_static_rejects_before_running():
    grid = Grid3D((16, 16, 16))
    field = random_field(grid.shape, np.random.default_rng(0))
    cfg = PipelineConfig(teams=1, threads_per_team=2,
                         updates_per_thread=1, block_size=(4, 64, 64),
                         sync=RelaxedSpec(1, 2))
    before = field.copy()
    res = repro.solve(grid, field, cfg, validate="static")
    assert res.field.shape == field.shape
    assert np.array_equal(field, before)  # input untouched
    with pytest.raises(ValueError, match="validate"):
        repro.solve(grid, field, cfg, validate="sometimes")


def test_autotune_prunes_illegal_candidates():
    from repro.core.autotune import autotune
    from repro.machine import nehalem_ep

    machine = nehalem_ep()
    legal = autotune(machine, shape=(60, 60, 60), bx_values=(60,),
                     bz_values=(10,), T_values=(1,), du_values=(1, 2))
    assert legal  # the stock axes survive the pre-prune
    unpruned = autotune(machine, shape=(60, 60, 60), bx_values=(60,),
                        bz_values=(10,), T_values=(1,), du_values=(1, 2),
                        prune_illegal=False)
    assert [r.config for r in legal] == [r.config for r in unpruned]


def test_quick_check_boolean_face():
    cfg = PipelineConfig(teams=1, threads_per_team=4,
                         updates_per_thread=1, block_size=BLOCK,
                         sync=RelaxedSpec(1, 4))
    assert quick_check(cfg, SHAPE)
    assert not quick_check(spec(d_l=0), SHAPE)


# -- lint: each rule fires on a minimal bad example --------------------------


def lint_findings(source, path="pkg/mod.py"):
    return [f.checker for f in lint_source(path, source)]


def test_lint_dead_import():
    assert "dead-import" in lint_findings("import os\nx = 1\n")
    assert "dead-import" not in lint_findings("import os\nprint(os.sep)\n")
    # __all__ counts as use; __init__.py without __all__ is exempt.
    assert "dead-import" not in lint_findings(
        "from .m import thing\n__all__ = ['thing']\n")
    assert "dead-import" not in lint_findings(
        "from .m import thing\n", path="pkg/__init__.py")


def test_lint_mutable_default():
    assert "mutable-default" in lint_findings("def f(x=[]):\n    pass\n")
    assert "mutable-default" in lint_findings(
        "def f(*, x=dict()):\n    pass\n")
    assert "mutable-default" not in lint_findings(
        "def f(x=None):\n    pass\n")


def test_lint_bare_except():
    assert "bare-except" in lint_findings(
        "try:\n    pass\nexcept:\n    pass\n")
    assert "bare-except" not in lint_findings(
        "try:\n    pass\nexcept ValueError:\n    pass\n")


def test_lint_spawn_pickle():
    assert "spawn-pickle" in lint_findings(
        "run_procs(2, lambda rank: rank)\n")
    nested = ("def outer():\n"
              "    def entry(rank):\n"
              "        return rank\n"
              "    pool.run_job(entry, ())\n")
    assert "spawn-pickle" in lint_findings(nested)
    module_level = ("def entry(rank):\n"
                    "    return rank\n"
                    "def outer():\n"
                    "    pool.run_job(entry, ())\n")
    assert "spawn-pickle" not in lint_findings(module_level)


def test_lint_shm_lifecycle():
    assert "shm-lifecycle" in lint_findings(
        "shm = SharedMemory(create=True, size=64)\n")
    # attach (create absent/False) is fine anywhere
    assert "shm-lifecycle" not in lint_findings(
        "shm = SharedMemory(name='x')\n")
    # the owning module itself is exempt
    assert "shm-lifecycle" not in lint_findings(
        "shm = SharedMemory(create=True, size=64)\n",
        path="src/repro/dist/shm.py")
    leak = "pool = ShmPool()\n"
    assert "shm-lifecycle" in lint_findings(leak)
    assert "shm-lifecycle" not in lint_findings(
        leak + "pool.cleanup()\n")


def test_lint_engine_contract():
    no_semantics = ("class FastEngine(Engine):\n"
                    "    name = 'fast'\n")
    assert "engine-contract" in lint_findings(
        no_semantics, path="src/repro/engine/fast.py")
    assert "engine-contract" not in lint_findings(
        no_semantics + "    semantics = JacobiSemantics\n",
        path="src/repro/engine/fast.py")
    # the rule is scoped to engine modules
    assert "engine-contract" not in lint_findings(
        no_semantics, path="src/repro/core/fast.py")
    poke = "def run(storage):\n    return storage._dst\n"
    assert "engine-contract" in lint_findings(
        poke, path="src/repro/engine/fast.py")
    uncommitted = ("def run(storage):\n"
                   "    v = storage.write_view(box, 1)\n"
                   "    v[:] = 0\n")
    assert "engine-contract" in lint_findings(
        uncommitted, path="src/repro/engine/fast.py")


def test_lint_naked_perf_counter():
    naked = "import time\nt0 = time.perf_counter()\nprint(t0)\n"
    bare = "from time import perf_counter\nt0 = perf_counter()\nprint(t0)\n"
    # Serving/observability modules must route timing through the
    # sanctioned clock wrappers, or monitor timestamps drift apart.
    assert "no-naked-perf-counter" in lint_findings(
        naked, path="src/repro/serve/service.py")
    assert "no-naked-perf-counter" in lint_findings(
        bare, path="src/repro/obs/monitor/core.py")
    assert "no-naked-perf-counter" in lint_findings(
        "import time\nt = time.perf_counter_ns()\nprint(t)\n",
        path="src/repro/obs/metrics.py")
    # The clock primitives themselves are the allowlist.
    assert "no-naked-perf-counter" not in lint_findings(
        naked, path="src/repro/obs/tracer.py")
    assert "no-naked-perf-counter" not in lint_findings(
        naked, path="src/repro/obs/monitor/sampling.py")
    # Out-of-scope trees (bench owns its own timing loops) are ignored.
    assert "no-naked-perf-counter" not in lint_findings(
        naked, path="src/repro/bench/harness.py")
    # The sanctioned spelling is clean in scope.
    assert "no-naked-perf-counter" not in lint_findings(
        "from .monitor import monotime\nt0 = monotime()\nprint(t0)\n",
        path="src/repro/serve/service.py")


def test_lint_syntax_error_is_a_finding():
    assert "syntax" in lint_findings("def broken(:\n")


# -- the shipped tree is clean (regression pin) ------------------------------


def test_src_tree_has_zero_lint_findings():
    report = lint_paths([str(SRC)])
    assert report.ok, report.describe()
    assert not report.findings, report.describe()


def test_shipped_engines_pass_contract_rule():
    report = lint_paths([str(SRC / "engine")])
    assert report.ok, report.describe()


# -- CLI ---------------------------------------------------------------------


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True,
        cwd=str(REPO), env={"PYTHONPATH": str(REPO / "src"),
                            "PATH": "/usr/bin:/bin"})


def test_cli_certifies_quick_suite():
    proc = run_cli("check-schedule", "--suite", "quick")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "10/10 schedule(s) certified" in proc.stdout


def test_cli_rejects_illegal_flags():
    proc = run_cli("check-schedule", "--d-l", "0", "--block", "8,64,64")
    assert proc.returncode == 1
    assert "REJECTED" in proc.stdout


def test_cli_lint_clean_tree():
    proc = run_cli("lint", "src/repro/analysis")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "CERTIFIED" in proc.stdout
