"""Observability battery: tracer, registry, exporters, merge, lint rule.

The contracts pinned here:

* the disabled tracer is a true no-op — identity-checked ``NULL_SPAN``
  and an *exact* "zero spans allocated" counter assertion, not a timing
  test;
* spans nest properly per ``(pid, tid)`` row and always pair (the lint
  rule enforcing with-statement scoping is itself tested);
* a traced solve is bit-identical to the untraced solve on every
  backend, its spans cover >= 95 % of the wall time, and the
  distributed backends merge every rank onto one timeline — for
  procmpi under fork *and* spawn;
* the Chrome ``trace_events`` export round-trips through JSON;
* the orphaned module counters (procmpi spawns, shm segments, cache
  hits) now live in the obs registry with their original functions as
  compatible reads;
* ``Service.stats`` is an immutable point-in-time snapshot.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro
from repro.core.parameters import PipelineConfig, RelaxedSpec
from repro.grid.grid3d import Grid3D
from repro.obs import (
    NULL_SPAN,
    REGISTRY,
    MetricsRegistry,
    Trace,
    Tracer,
    compare_stage_occupancy,
    load_chrome_trace,
    span_coverage,
    spans_started,
    stage_occupancy,
    to_chrome,
    trace_metrics,
    write_chrome_trace,
)
from repro.obs.tracer import NULL_TRACER


def small_problem():
    grid = Grid3D((16, 12, 12))
    field = np.random.default_rng(7).random(grid.shape)
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(3, 64, 64), sync=RelaxedSpec(1, 2),
                         passes=2)
    return grid, field, cfg


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        assert reg.inc("a") == 1
        assert reg.inc("a", 4) == 5
        reg.set_gauge("g", 2.5)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0
        assert reg.gauge("g") == 2.5
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        # The snapshot is a copy, not a live view.
        reg.inc("a")
        assert snap["counters"]["a"] == 5
        reg.reset()
        assert reg.counter("a") == 0

    def test_global_registry_module_functions(self):
        from repro.obs import registry as mod
        before = mod.counter("test.obs.global")
        mod.inc("test.obs.global", 3)
        assert mod.counter("test.obs.global") == before + 3
        assert mod.snapshot()["counters"]["test.obs.global"] == before + 3
        assert mod.REGISTRY is REGISTRY

    def test_concurrent_hammer_pins_exact_totals(self):
        # The monitor samples registries from its own thread while
        # worker threads increment them, so lost updates would show up
        # as drifting health counters.  8 threads x 2500 increments on
        # shared names must land on the exact totals.
        import threading

        reg = MetricsRegistry()
        threads, iters = 8, 2500
        start = threading.Barrier(threads)

        def hammer(tid: int) -> None:
            start.wait()
            for i in range(iters):
                reg.inc("shared")
                reg.inc(f"per.{tid}", 2)
                reg.set_gauge("last", float(i))
                if i % 100 == 0:
                    reg.snapshot()  # concurrent reads must not tear

        pool = [threading.Thread(target=hammer, args=(t,))
                for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.counter("shared") == threads * iters
        for tid in range(threads):
            assert reg.counter(f"per.{tid}") == 2 * iters
        assert reg.gauge("last") == float(iters - 1)


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


class TestTracerFastPath:
    def test_disabled_span_is_the_null_singleton(self):
        assert NULL_TRACER.span("x", cat="y", tid=3, any_arg=1) is NULL_SPAN
        t = Tracer(enabled=False)
        assert t.span("x") is NULL_SPAN

    def test_disabled_tracing_allocates_zero_spans(self):
        # The exact contract the whole "compiled to a no-op" claim
        # rests on: the process-wide allocation counter must not move.
        before = spans_started()
        for _ in range(100):
            with NULL_TRACER.span("hot", cat="loop", i=1):
                pass
            NULL_TRACER.count("c")
            NULL_TRACER.gauge("g", 1.0)
        assert spans_started() == before
        assert NULL_TRACER.finish().spans == []
        assert NULL_TRACER.finish().counters == {}

    def test_enabled_tracing_allocates(self):
        t = Tracer()
        before = spans_started()
        with t.span("a"):
            pass
        assert spans_started() == before + 1

    def test_untraced_solve_allocates_zero_spans(self):
        grid, field, cfg = small_problem()
        before = spans_started()
        repro.solve(grid, field, cfg)
        assert spans_started() == before


class TestTracerRecords:
    def test_span_records_name_args_and_order(self):
        t = Tracer(pid=5)
        with t.span("outer", cat="c", tid=2, k=1):
            with t.span("inner", cat="c", tid=2):
                pass
        trace = t.finish()
        names = [s.name for s in trace.spans]
        assert names == ["inner", "outer"]  # recorded on exit
        outer = trace.spans[1]
        assert outer.pid == 5 and outer.tid == 2
        assert outer.arg("k") == 1 and outer.arg("absent", -1) == -1
        assert outer.start <= trace.spans[0].start
        assert outer.end >= trace.spans[0].end

    def test_counters_and_gauges_collected(self):
        t = Tracer()
        t.count("n", 2)
        t.count("n")
        t.gauge("depth", 4)
        trace = t.finish()
        assert trace.counters == {"n": 3}
        assert trace.gauges == {"depth": 4.0}

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        trace = t.finish()
        assert [s.name for s in trace.spans] == ["risky"]
        assert trace.spans[0].end >= trace.spans[0].start

    def test_absorb_rebases_and_retags(self):
        child = Tracer(pid=0)
        with child.span("work"):
            pass
        ctrace = child.finish()
        parent = Tracer(pid=0)
        anchor = ctrace.start + 100.0  # any foreign clock origin
        parent.absorb(ctrace, pid=3, at=anchor, label="rank 2")
        merged = parent.finish()
        assert merged.pids() == [3]
        assert merged.spans[0].start == pytest.approx(anchor)
        assert merged.processes[3] == "rank 2"

    def test_absorb_sums_counters(self):
        parent = Tracer()
        parent.count("exchange.bytes", 10)
        for _ in range(2):
            child = Tracer()
            child.count("exchange.bytes", 5)
            parent.absorb(child.finish(), pid=1, at=0.0)
        assert parent.finish().counters["exchange.bytes"] == 20


def _assert_proper_nesting(trace: Trace) -> None:
    """Per (pid, tid) row, spans must nest: overlap implies containment."""
    rows = {}
    for s in trace.spans:
        rows.setdefault((s.pid, s.tid), []).append(s)
    for row in rows.values():
        row.sort(key=lambda s: (s.start, -s.end))
        stack = []
        for s in row:
            while stack and stack[-1].end <= s.start:
                stack.pop()
            if stack:
                assert s.end <= stack[-1].end + 1e-9, (
                    f"span {s.name} half-overlaps {stack[-1].name}")
            stack.append(s)


# ---------------------------------------------------------------------------
# Traced solves: bit-identity, coverage, merge
# ---------------------------------------------------------------------------


class TestTracedSolves:
    @pytest.mark.parametrize("backend,topology", [
        ("shared", None),
        ("simmpi", (1, 1, 2)),
        ("procmpi", (1, 1, 2)),
    ])
    def test_bit_identical_and_covered(self, backend, topology):
        grid, field, cfg = small_problem()
        plain = repro.solve(grid, field.copy(), cfg, topology=topology,
                            backend=backend)
        traced = repro.solve(grid, field.copy(), cfg, topology=topology,
                             backend=backend, trace=True)
        assert np.array_equal(plain.field, traced.field)
        assert plain.trace is None and plain.metrics == {}
        trace = traced.trace
        assert trace is not None
        assert span_coverage(trace) >= 0.95
        n_ranks = 1 if topology is None else int(np.prod(topology))
        if backend == "shared":
            assert trace.pids() == [0]
        else:
            # Driver pid 0 plus one pid per rank, one merged timeline.
            assert trace.pids() == list(range(n_ranks + 1))
        _assert_proper_nesting(trace)
        assert traced.metrics["spans"] == len(trace.spans)
        assert traced.metrics["ranks"] == len(trace.pids())

    def test_distributed_trace_has_exchange_signal(self):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                          backend="simmpi", trace=True)
        assert res.metrics["exchange.messages"] > 0
        assert res.metrics["exchange.bytes"] > 0
        assert res.metrics["exchange_wait_s"] >= 0
        assert 0.0 <= res.metrics["exchange_wait_frac"] <= 1.0
        waits = [s for s in res.trace.spans if s.name == "exchange.recv_wait"]
        assert waits and all(s.pid > 0 for s in waits)

    def test_stage_occupancy_shares(self):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, trace=True)
        shares = stage_occupancy(res.trace)
        assert sorted(shares) == list(range(cfg.n_stages))
        assert sum(shares.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_procmpi_merge_across_start_methods(self, start_method,
                                                monkeypatch):
        import multiprocessing as mp
        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"start method {start_method} unavailable")
        monkeypatch.setenv("REPRO_PROCMPI_START", start_method)
        grid, field, cfg = small_problem()
        plain = repro.solve(grid, field.copy(), cfg, topology=(1, 1, 2),
                            backend="procmpi")
        traced = repro.solve(grid, field.copy(), cfg, topology=(1, 1, 2),
                             backend="procmpi", trace=True)
        assert np.array_equal(plain.field, traced.field)
        trace = traced.trace
        assert trace.pids() == [0, 1, 2]
        assert span_coverage(trace) >= 0.95
        # Rank spans must land inside the driver's solve span even
        # though the children's clock origins are arbitrary (spawn!).
        solve_span = next(s for s in trace.spans if s.name == "solve")
        for s in trace.spans:
            if s.pid > 0:
                assert s.start >= solve_span.start - 1e-6
        _assert_proper_nesting(trace)


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_schema(self):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                          backend="simmpi", trace=True)
        doc = to_chrome(res.trace)
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(res.trace.spans)
        assert {m["pid"] for m in metas} == set(res.trace.pids())
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds, rebased
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert doc["otherData"]["counters"] == res.trace.counters

    def test_round_trip(self, tmp_path):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                          backend="simmpi", trace=True)
        path = tmp_path / "trace.json"
        write_chrome_trace(res.trace, path)
        json.loads(path.read_text())  # must literally be JSON
        back = load_chrome_trace(path)
        assert len(back.spans) == len(res.trace.spans)
        assert back.counters == res.trace.counters
        assert back.processes == res.trace.processes
        m0, m1 = trace_metrics(res.trace), trace_metrics(back)
        assert set(m0) == set(m1)
        for k in m0:
            assert m0[k] == pytest.approx(m1[k], abs=1e-5), k
        orig = sorted((s.name, s.pid, s.tid, tuple(sorted(
            (k, str(v)) for k, v in s.args))) for s in res.trace.spans)
        loaded = sorted((s.name, s.pid, s.tid, tuple(sorted(
            (k, str(v)) for k, v in s.args))) for s in back.spans)
        assert orig == loaded

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(Trace(), path)
        back = load_chrome_trace(path)
        assert back.spans == []
        assert span_coverage(back) == 0.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                          backend="simmpi", trace=True)
        path = tmp_path / "t.json"
        write_chrome_trace(res.trace, path)
        return path

    def test_dump(self, trace_file, capsys):
        from repro.obs.cli import main
        assert main(["dump", str(trace_file), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "solve" in out and "pid" in out

    def test_summarize(self, trace_file, capsys):
        from repro.obs.cli import main
        assert main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "span_coverage" in out and "exchange_wait_frac" in out

    def test_diff(self, trace_file, capsys):
        from repro.obs.cli import main
        assert main(["diff", str(trace_file), str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out

    def test_missing_file_is_usage_error(self, tmp_path):
        from repro.obs.cli import main
        with pytest.raises(SystemExit):
            main(["summarize", str(tmp_path / "nope.json")])

    @pytest.fixture()
    def empty_trace_file(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(Trace(), path)
        return path

    def test_summarize_empty_trace_is_clear_not_a_crash(
            self, empty_trace_file, capsys):
        # Regression: a zero-span trace used to render an all-zero
        # metrics table, indistinguishable from a measured run that did
        # nothing.  Now it must exit 0 with a plain explanation instead.
        from repro.obs.cli import main
        assert main(["summarize", str(empty_trace_file)]) == 0
        out = capsys.readouterr().out
        assert "no spans or counters recorded" in out
        assert "was tracing enabled?" in out

    def test_diff_with_empty_side_says_so(self, trace_file,
                                          empty_trace_file, capsys):
        from repro.obs.cli import main
        assert main(["diff", str(empty_trace_file),
                     str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "no spans or counters recorded" in out
        assert "nothing to diff" in out


# ---------------------------------------------------------------------------
# Counter unification (satellite): old functions read the registry
# ---------------------------------------------------------------------------


class TestCounterUnification:
    def test_process_spawns_reads_registry(self):
        from repro.dist.procmpi import SPAWNS_COUNTER, process_spawns
        from repro.obs import registry
        assert process_spawns() == int(registry.counter(SPAWNS_COUNTER))
        registry.inc(SPAWNS_COUNTER, 0)  # name exists / no effect
        assert process_spawns() == int(registry.counter(SPAWNS_COUNTER))

    def test_segment_creates_reads_registry(self):
        from repro.dist.shm import SEGMENTS_COUNTER, ShmPool, segment_creates
        from repro.obs import registry
        before = segment_creates()
        assert before == int(registry.counter(SEGMENTS_COUNTER))
        pool = ShmPool()
        try:
            pool.create_block(64)
        finally:
            pool.cleanup()
        assert segment_creates() == before + 1
        assert int(registry.counter(SEGMENTS_COUNTER)) == before + 1

    def test_cache_counters_are_registry_backed(self):
        from repro.obs import registry
        from repro.serve.cache import ResultCache
        cache = ResultCache(max_entries=1)
        g_hits = registry.counter("serve.cache.hits")
        g_miss = registry.counter("serve.cache.misses")
        assert cache.get("0" * 64) is None
        assert (cache.hits, cache.misses) == (0, 1)
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg)
        cache.put("a" * 64, res)
        assert cache.get("a" * 64) is not None
        assert cache.hits == 1
        cache.put("b" * 64, res)  # evicts "a"
        assert cache.evictions == 1
        # Per-instance counters mirror into the process-wide registry.
        assert registry.counter("serve.cache.hits") == g_hits + 1
        assert registry.counter("serve.cache.misses") == g_miss + 1
        with pytest.raises(AttributeError):
            cache.hits = 99  # read-only compatibility property


# ---------------------------------------------------------------------------
# Service.stats snapshot (satellite regression test)
# ---------------------------------------------------------------------------


class TestServiceStatsSnapshot:
    def test_snapshot_is_frozen_and_point_in_time(self):
        from repro.serve import Service
        grid, field, cfg = small_problem()
        with Service(workers=0) as svc:
            svc.submit(grid, field, cfg)
            svc.drain()
            before = svc.stats
            assert before.submitted == 1 and before.completed == 1
            with pytest.raises(dataclasses.FrozenInstanceError):
                before.submitted = 99
            svc.submit(grid, field, cfg)  # cache hit, counted immediately
            after = svc.stats
            # The earlier snapshot must not have drifted — this is the
            # regression the live-object stats property used to cause.
            assert before.submitted == 1
            assert after.submitted == 2
            assert after.cache_hits == before.cache_hits + 1
            assert svc.metrics.counter("submitted") == 2
            assert svc.metrics.gauge("queue_depth") == 0

    def test_future_result_metrics_attribute(self):
        from repro.serve import Service
        grid, field, cfg = small_problem()
        with Service(workers=0) as svc:
            fut = svc.submit(grid, field, cfg)
            svc.drain()
            res = fut.result(timeout=0)
        assert isinstance(res.metrics, dict)


# ---------------------------------------------------------------------------
# Differential hook: traced occupancy vs DES prediction
# ---------------------------------------------------------------------------


class TestDifferential:
    def test_compare_against_des(self):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, trace=True)
        rows = compare_stage_occupancy(res.trace, config=cfg,
                                       shape=grid.shape)
        assert [r.stage for r in rows] == list(range(cfg.n_stages))
        assert sum(r.traced_share for r in rows) == pytest.approx(1.0)
        assert sum(r.predicted_share for r in rows) == pytest.approx(1.0)
        for r in rows:
            assert abs(r.delta) <= 1.0

    def test_requires_report_or_config(self):
        with pytest.raises(ValueError):
            compare_stage_occupancy(Trace())


# ---------------------------------------------------------------------------
# Lint rule: span pairing
# ---------------------------------------------------------------------------


class TestSpanPairingLint:
    def _findings(self, source: str):
        from repro.analysis.lint import check_span_pairing, lint_source
        return [f for f in lint_source("pkg/mod.py", source,
                                       checkers=(check_span_pairing,))]

    def test_with_statement_is_clean(self):
        src = ("def f(tracer):\n"
               "    with tracer.span('a', cat='x'):\n"
               "        pass\n")
        assert self._findings(src) == []

    def test_try_finally_is_clean(self):
        src = ("def f(tracer):\n"
               "    try:\n"
               "        s = tracer.span('a')\n"
               "        s.__enter__()\n"
               "    finally:\n"
               "        pass\n")
        assert self._findings(src) == []

    def test_unpaired_span_is_flagged(self):
        src = ("def f(tracer):\n"
               "    s = tracer.span('a')\n"
               "    s.__enter__()\n")
        findings = self._findings(src)
        assert len(findings) == 1
        assert findings[0].checker == "span-pairing"

    def test_obs_package_is_exempt(self):
        from repro.analysis.lint import check_span_pairing, lint_source
        src = "def f(t):\n    s = t.span('a')\n"
        assert lint_source("src/repro/obs/tracer.py", src,
                           checkers=(check_span_pairing,)) == []

    def test_instrumented_modules_are_clean(self):
        # The rule at zero findings over the real instrumented modules —
        # the same assertion the CI lint gate enforces repo-wide.
        from pathlib import Path

        from repro.analysis.lint import check_span_pairing, lint_source
        root = Path(__file__).resolve().parents[1] / "src" / "repro"
        for rel in ("api.py", "core/executor.py", "dist/solver.py"):
            path = root / rel
            findings = lint_source(str(path), path.read_text(),
                                   checkers=(check_span_pairing,))
            assert findings == [], rel


# ---------------------------------------------------------------------------
# Perf integration
# ---------------------------------------------------------------------------


class TestPerfIntegration:
    def test_traced_scenario_registered_and_summarized(self):
        from repro.perf.scenarios import get_scenario
        sc = get_scenario("solve_traced@quick")
        assert sc.params["trace"] is True
        payload = sc.run_once()
        metrics = sc.summarize(payload, 1.0)
        assert metrics["obs_spans"].gate is True
        assert metrics["obs_spans"].value == len(payload.trace.spans)
        assert metrics["obs_span_coverage"].gate is False
        assert metrics["obs_span_coverage"].value >= 0.95
        assert "obs_exchange_wait_frac" in metrics

    def test_untraced_solve_has_no_obs_metrics(self):
        from repro.perf.scenarios import get_scenario
        sc = get_scenario("solve_shared@quick")
        metrics = sc.summarize(sc.run_once(), 1.0)
        assert not any(k.startswith("obs_") for k in metrics)
