"""Tests for the cluster model, wavefront baseline, autotuner and figure
data generators (shape-level; the benches assert the quantitative bands).
"""

from __future__ import annotations

import pytest

from repro.core.autotune import autotune
from repro.core.wavefront import compare_wavefront, wavefront_balance, wavefront_config
from repro.dist.cluster_sim import ClusterModel, balanced_grid, fig6_variants
from repro.machine import nehalem_ep


class TestBalancedGrid:
    def test_cubes(self):
        assert balanced_grid(8) == (2, 2, 2)
        assert balanced_grid(27) == (3, 3, 3)
        assert balanced_grid(64) == (4, 4, 4)

    def test_non_cubes(self):
        assert balanced_grid(1) == (1, 1, 1)
        assert balanced_grid(2) == (1, 1, 2)
        assert balanced_grid(12) == (2, 2, 3)

    def test_product_preserved(self):
        for n in (1, 2, 6, 16, 54, 128, 216):
            g = balanced_grid(n)
            assert g[0] * g[1] * g[2] == n


class TestClusterModel:
    @pytest.fixture(scope="class")
    def cm(self):
        return ClusterModel(nehalem_ep(), sim_shape=(200, 200, 200))

    def test_variants_defined(self):
        names = [v.name for v in fig6_variants()]
        assert "standard 8PPN" in names and "pipelined 2PPN" in names

    def test_single_node_rates_ordered(self, cm):
        v = {x.name: x for x in fig6_variants()}
        assert cm.node_rate(v["standard 1PPN"]) < cm.node_rate(v["standard 8PPN"])
        assert cm.node_rate(v["pipelined 2PPN"]) > cm.node_rate(v["standard 8PPN"])

    def test_weak_scaling_near_ideal_standard(self, cm):
        v = fig6_variants()[0]
        pts = cm.series(v, (1, 8), scaling="weak")
        eff = pts[1].glups / (8 * pts[0].glups)
        assert eff > 0.9

    def test_strong_scaling_comm_dominates(self, cm):
        v = [x for x in fig6_variants() if x.name == "pipelined 2PPN"][0]
        pts = cm.series(v, (1, 64), scaling="strong")
        eff = pts[1].glups / (64 * pts[0].glups)
        assert eff < 0.75  # far from ideal at 64 nodes

    def test_rate_cache(self, cm):
        v = fig6_variants()[0]
        assert cm.process_rate(v) == cm.process_rate(v)

    def test_rejects_bad_scaling(self, cm):
        with pytest.raises(ValueError):
            cm.evaluate(fig6_variants()[0], 8, scaling="sideways")


class TestWavefront:
    def test_config_is_T1_single_team(self):
        c = wavefront_config(4, (20, 20, 120))
        assert c.teams == 1
        assert c.updates_per_thread == 1

    def test_balance_adds_copy_traffic(self):
        base = wavefront_balance((20, 20, 120), copy_layers=0)
        extra = wavefront_balance((20, 20, 120), copy_layers=2)
        assert extra.cache_bpc_update > base.cache_bpc_update

    def test_pipelined_beats_wavefront(self):
        wf, pipe = compare_wavefront(nehalem_ep(), shape=(200, 200, 200))
        assert pipe > wf


class TestAutotune:
    def test_returns_sorted(self):
        res = autotune(nehalem_ep(), shape=(150, 150, 150),
                       bx_values=(60, 120), bz_values=(20,),
                       T_values=(1, 2), du_values=(1, 4),
                       storages=("compressed",))
        vals = [r.mlups for r in res]
        assert vals == sorted(vals, reverse=True)
        assert len(res) == 8

    def test_top_truncates(self):
        res = autotune(nehalem_ep(), shape=(150, 150, 150),
                       bx_values=(120,), bz_values=(20,),
                       T_values=(2,), du_values=(1, 2, 4),
                       storages=("compressed",), top=2)
        assert len(res) == 2

    def test_loose_window_ranks_above_lockstep(self):
        res = autotune(nehalem_ep(), shape=(150, 150, 150),
                       bx_values=(120,), bz_values=(20,),
                       T_values=(2,), du_values=(1, 4),
                       storages=("compressed",))
        best = res[0].config
        from repro.core.parameters import RelaxedSpec
        assert isinstance(best.sync, RelaxedSpec) and best.sync.d_u == 4
