"""The serving layer: jobs, cache, scheduler, pools, service, futures.

The contract under test, per module:

* **job** — the content key is deterministic, covers everything
  result-affecting, and keys by backend *semantics* (all backends agree
  on ``(1, 1, 1)``; the two distributed transports agree everywhere);
* **cache** — hits are bit-identical and defensively copied; LRU
  eviction; the disk tier round-trips bits and shrugs off corruption;
* **scheduler** — priority order, and batches form only from
  session-compatible small jobs;
* **service** — cache hits run no backend, duplicate in-flight jobs
  coalesce, ``map`` preserves order and fails fast, warm procmpi
  sessions are reused across jobs;
* **autotune** — ``repro.autotune`` is public, its ranking is
  deterministic, and ``config="auto"`` resolves through it.

The throughput acceptance test (``-m perf``) asserts the >=2x warm-pool
advantage on spawn/segment *counters*, never on a wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Grid3D, PipelineConfig, RelaxedSpec, SolveJob
from repro.core.parameters import BarrierSpec
from repro.grid import DirichletBoundary, random_field
from repro.kernels import reference_sweeps
from repro.kernels.stencils import StarStencil
from repro.serve import (
    Entry,
    JobQueue,
    ResultCache,
    ServeCancelled,
    Service,
    SolveFuture,
    auto_config,
    clear_auto_cache,
    session_signature,
)
from repro.serve.autoconf import ranked_candidates


def small_problem(n: int = 12, seed: int = 0):
    grid = Grid3D((n, n, n))
    field = random_field(grid.shape, np.random.default_rng(seed))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    return grid, field, cfg


def make_job(seed: int = 0, **kwargs) -> SolveJob:
    grid, field, cfg = small_problem(seed=seed)
    kwargs.setdefault("config", cfg)
    return SolveJob(grid=grid, field=field, **kwargs)


# ---------------------------------------------------------------------------
# SolveJob and its content key
# ---------------------------------------------------------------------------

class TestSolveJob:
    def test_key_is_deterministic_and_equal_for_equal_jobs(self):
        assert make_job().content_key() == make_job().content_key()

    def test_key_ignores_priority_and_stencil_name(self):
        # Scheduling priority and display names cannot change the bits.
        assert (make_job(priority=5).content_key()
                == make_job(priority=0).content_key())
        st1 = StarStencil({(0, 0, 1): 0.5, (0, 0, -1): 0.5}, name="a")
        st2 = StarStencil({(0, 0, 1): 0.5, (0, 0, -1): 0.5}, name="b")
        assert (make_job(stencil=st1).content_key()
                == make_job(stencil=st2).content_key())

    def test_key_covers_field_config_and_stencil(self):
        base = make_job().content_key()
        assert make_job(seed=1).content_key() != base
        grid, field, cfg = small_problem()
        loose = PipelineConfig(teams=1, threads_per_team=2,
                               updates_per_thread=2, block_size=(4, 64, 64),
                               sync=RelaxedSpec(1, 4))
        assert make_job(config=loose).content_key() != base
        barrier = PipelineConfig(teams=1, threads_per_team=2,
                                 updates_per_thread=2,
                                 block_size=(4, 64, 64), sync=BarrierSpec())
        assert make_job(config=barrier).content_key() != base
        damped = StarStencil({(0, 0, 1): 0.25, (0, 0, -1): 0.25},
                             center_weight=0.5)
        assert make_job(stencil=damped).content_key() != base

    def test_backend_semantics_classes(self):
        # On (1,1,1) every backend computes bit-identical fields, so all
        # three share one key; on wider topologies the two distributed
        # transports share one key that differs per topology.
        single = {make_job(backend=b).content_key()
                  for b in ("shared", "simmpi", "procmpi")}
        assert len(single) == 1
        sim = make_job(backend="simmpi", topology=(1, 1, 2)).content_key()
        proc = make_job(backend="procmpi", topology=(1, 1, 2)).content_key()
        assert sim == proc
        assert sim not in single
        assert make_job(backend="simmpi",
                        topology=(1, 2, 1)).content_key() != sim

    def test_auto_job_is_unresolved_until_configured(self):
        job = make_job(config="auto")
        assert not job.resolved
        with pytest.raises(ValueError, match="unresolved"):
            job.content_key()
        _, _, cfg = small_problem()
        assert job.with_config(cfg).resolved

    def test_callable_boundary_is_uncacheable(self):
        grid = Grid3D((8, 8, 8),
                      boundary=DirichletBoundary(0.0, func=_linear_boundary))
        job = SolveJob(grid=grid,
                       field=random_field(grid.shape,
                                          np.random.default_rng(0)),
                       config=small_problem()[2])
        assert not job.cacheable
        with pytest.raises(ValueError, match="not cacheable"):
            job.content_key()

    def test_validation(self):
        grid, field, cfg = small_problem()
        with pytest.raises(ValueError, match="unknown backend"):
            SolveJob(grid=grid, field=field, config=cfg, backend="mpi")
        with pytest.raises(ValueError, match="topology"):
            SolveJob(grid=grid, field=field, config=cfg, topology=(2, 2))
        with pytest.raises(ValueError, match="single-process"):
            SolveJob(grid=grid, field=field, config=cfg, topology=(1, 1, 2))
        with pytest.raises(ValueError, match="field shape"):
            SolveJob(grid=grid, field=field[:-1], config=cfg)
        with pytest.raises(ValueError, match="'auto'"):
            SolveJob(grid=grid, field=field, config="best")
        with pytest.raises(TypeError, match="PipelineConfig"):
            SolveJob(grid=grid, field=field, config=42)


def _linear_boundary(z, y, x):
    return z + y + x


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

def _result_for(job: SolveJob):
    return repro.solve(job.grid, job.field, job.config)


class TestResultCache:
    def test_hit_is_bit_identical_and_isolated(self):
        cache = ResultCache(max_entries=4)
        job = make_job()
        res = _result_for(job)
        cache.put(job.content_key(), res)
        hit = cache.get(job.content_key())
        assert hit is not None
        assert np.array_equal(hit.field, res.field)
        # Mutating a returned field must not corrupt the cached bits.
        hit.field[...] = -1.0
        again = cache.get(job.content_key())
        assert np.array_equal(again.field, res.field)
        assert cache.hits == 2 and cache.misses == 0

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        res = _result_for(make_job())
        cache.put("a" * 64, res)
        cache.put("b" * 64, res)
        assert cache.get("a" * 64) is not None  # refresh: b is now LRU
        cache.put("c" * 64, res)
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) is not None
        assert cache.evictions == 1

    def test_disk_tier_round_trips_bits(self, tmp_path):
        job = make_job()
        res = _result_for(job)
        key = job.content_key()
        writer = ResultCache(max_entries=2, disk_dir=tmp_path)
        writer.put(key, res)
        # A fresh cache (cold memory) must hit via the disk tier.
        reader = ResultCache(max_entries=2, disk_dir=tmp_path)
        hit = reader.get(key)
        assert hit is not None and reader.disk_hits == 1
        assert np.array_equal(hit.field, res.field)

    def test_corrupt_disk_entry_is_a_miss_and_removed(self, tmp_path):
        key = "d" * 64
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"not a pickle")
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get(key) is None
        assert not path.exists()


# ---------------------------------------------------------------------------
# Scheduler: priority and batch formation
# ---------------------------------------------------------------------------

def _entry(job: SolveJob) -> Entry:
    return Entry(job=job, key=None, futures=[SolveFuture(job)])


class TestJobQueue:
    def test_priority_then_fifo(self):
        q = JobQueue(batch_limit=1)
        first = _entry(make_job(seed=1, priority=0))
        urgent = _entry(make_job(seed=2, priority=5))
        second = _entry(make_job(seed=3, priority=0))
        for e in (first, urgent, second):
            q.push(e)
        order = [q.pop_batch(timeout=0)[0] for _ in range(3)]
        assert order == [urgent, first, second]

    def test_batches_compatible_small_jobs(self):
        q = JobQueue(batch_limit=8)
        same = [_entry(make_job(seed=i)) for i in range(3)]
        other_topo = _entry(make_job(seed=9, backend="simmpi",
                                     topology=(1, 1, 2)))
        for e in (same[0], other_topo, same[1], same[2]):
            q.push(e)
        batch = q.pop_batch(timeout=0)
        # The three signature-equal jobs batch; the other topology waits.
        assert batch == same
        assert q.pop_batch(timeout=0) == [other_topo]

    def test_large_jobs_never_batch(self):
        q = JobQueue(batch_limit=8, batch_bytes=64)  # everything is "large"
        a, b = _entry(make_job(seed=1)), _entry(make_job(seed=2))
        q.push(a)
        q.push(b)
        assert q.pop_batch(timeout=0) == [a]
        assert q.pop_batch(timeout=0) == [b]

    def test_signature_requires_resolved_job(self):
        with pytest.raises(ValueError, match="unresolved"):
            session_signature(make_job(config="auto"))


# ---------------------------------------------------------------------------
# Autotuning: public API, deterministic ranking, config="auto"
# ---------------------------------------------------------------------------

class TestAutotune:
    def test_public_export(self):
        from repro.core.autotune import autotune as impl

        assert repro.autotune is impl
        results = repro.autotune(_machine(), shape=(24, 24, 24),
                                 bx_values=(24,), bz_values=(4,),
                                 T_values=(1,), du_values=(1, 2))
        assert len(results) == 4  # 2 storages x 2 d_u
        assert all(isinstance(r, repro.TuneResult) for r in results)

    def test_ranking_is_deterministic(self):
        # The satellite contract: two identical sweeps rank identically,
        # so "auto" jobs resolve (and cache) reproducibly.
        a = ranked_candidates(_machine(), (16, 16, 16), distributed=False)
        b = ranked_candidates(_machine(), (16, 16, 16), distributed=False)
        assert [r.config.describe() for r in a] \
            == [r.config.describe() for r in b]
        assert [r.mlups for r in a] == [r.mlups for r in b]

    def test_auto_config_is_memoised_and_valid(self):
        clear_auto_cache()
        grid = Grid3D((16, 16, 16))
        cfg = auto_config(grid, (1, 1, 2))
        assert cfg == auto_config(grid, (1, 1, 2))
        assert cfg.storage == "twogrid"  # distributed placement constraint
        # And the resolved config actually runs.
        field = random_field(grid.shape, np.random.default_rng(0))
        res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                          backend="simmpi")
        ref = reference_sweeps(grid, field, cfg.total_updates)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_service_resolves_auto(self):
        grid, field, _ = small_problem()
        with Service(workers=0) as svc:
            fut = svc.submit(grid, field, "auto")
            svc.drain()
            res = fut.result(timeout=0)
        assert fut.job.resolved
        assert res.config == auto_config(grid)
        ref = reference_sweeps(grid, field, res.levels_advanced)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)


def _machine():
    from repro.machine.presets import nehalem_ep

    return nehalem_ep()


# ---------------------------------------------------------------------------
# Service behaviour
# ---------------------------------------------------------------------------

class TestService:
    def test_results_match_reference_across_backends(self):
        grid, field, cfg = small_problem()
        ref = reference_sweeps(grid, field, cfg.total_updates)
        with Service(workers=2) as svc:
            futs = [
                svc.submit(grid, field, cfg),
                svc.submit(grid, field, cfg, topology=(1, 1, 2),
                           backend="simmpi"),
                svc.submit(grid, field, cfg, topology=(2, 1, 1),
                           backend="procmpi"),
            ]
            for fut in futs:
                np.testing.assert_allclose(fut.result(timeout=120).field,
                                           ref, rtol=0, atol=1e-13)

    def test_field_is_snapshotted_at_submission(self):
        # The caller may reuse its buffer the moment submit returns; the
        # job (and with it the content key and the cached result) must
        # keep describing the bytes as submitted.
        grid, field, cfg = small_problem()
        original = field.copy()
        with Service(workers=0) as svc:
            fut = svc.submit(grid, field, cfg)
            field += 1.0
            svc.drain()
            res = fut.result(timeout=0)
            ref = reference_sweeps(grid, original, cfg.total_updates)
            np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)
            hit = svc.submit(grid, original, cfg)
            assert hit.cache_hit
            assert np.array_equal(hit.result(timeout=0).field, res.field)

    def test_cache_hit_runs_no_backend_and_is_bit_identical(self):
        grid, field, cfg = small_problem()
        with Service(workers=0) as svc:
            cold = svc.submit(grid, field, cfg)
            svc.drain()
            warm = svc.submit(grid, field, cfg)
            st = svc.stats
            assert warm.done() and warm.cache_hit
            assert st.backend_solves == 1 and st.cache_hits == 1
            assert np.array_equal(warm.result(timeout=0).field,
                                  cold.result(timeout=0).field)

    def test_duplicate_inflight_jobs_coalesce(self):
        grid, field, cfg = small_problem()
        with Service(workers=0) as svc:
            first = svc.submit(grid, field, cfg)
            second = svc.submit(grid, field, cfg)
            assert second.coalesced
            svc.drain()
            st = svc.stats
            assert st.backend_solves == 1 and st.coalesced == 1
            assert np.array_equal(first.result(timeout=0).field,
                                  second.result(timeout=0).field)

    def test_uncacheable_jobs_always_recompute(self):
        grid = Grid3D((12, 12, 12),
                      boundary=DirichletBoundary(0.0, func=_linear_boundary))
        field = random_field(grid.shape, np.random.default_rng(0))
        _, _, cfg = small_problem()
        with Service(workers=0) as svc:
            svc.submit(grid, field, cfg)
            svc.drain()
            svc.submit(grid, field, cfg)
            svc.drain()
            st = svc.stats
        assert st.backend_solves == 2
        assert st.cache_hits == 0 and st.coalesced == 0

    def test_map_preserves_order_and_fails_fast(self):
        grid, _, cfg = small_problem()
        jobs = [SolveJob(grid=grid,
                         field=random_field(grid.shape,
                                            np.random.default_rng(i)),
                         config=cfg)
                for i in range(4)]
        with Service(workers=0) as svc:
            results = svc.map(jobs)
            for job, res in zip(jobs, results):
                ref = reference_sweeps(grid, job.field, cfg.total_updates)
                np.testing.assert_allclose(res.field, ref, rtol=0,
                                           atol=1e-13)
            # A config invalid for the distributed placement fails only
            # its own job, and map re-raises that original error.
            bad_cfg = PipelineConfig(teams=1, threads_per_team=2,
                                     updates_per_thread=2,
                                     block_size=(4, 64, 64),
                                     sync=RelaxedSpec(1, 2),
                                     storage="compressed")
            bad = SolveJob(grid=grid, field=jobs[0].field, config=bad_cfg,
                           topology=(1, 1, 2), backend="simmpi")
            with pytest.raises(ValueError, match="twogrid"):
                svc.map([jobs[0], bad])

    def test_cancel_before_start(self):
        grid, field, cfg = small_problem()
        with Service(workers=0) as svc:
            fut = svc.submit(grid, field, cfg)
            assert fut.cancel()
            assert not fut.cancel()  # already cancelled
            svc.drain()
            st = svc.stats
            assert st.backend_solves == 0 and st.cancelled == 1
            with pytest.raises(ServeCancelled):
                fut.result(timeout=0)

    def test_batching_stats_in_sync_mode(self):
        grid, _, cfg = small_problem()
        with Service(workers=0, cache=False) as svc:
            for i in range(5):
                svc.submit(grid,
                           random_field(grid.shape,
                                        np.random.default_rng(i)), cfg)
            svc.drain()
            st = svc.stats
        assert st.batches == 1 and st.batched_jobs == 5
        assert st.backend_solves == 5

    def test_warm_sessions_are_reused_across_procmpi_jobs(self):
        grid, _, cfg = small_problem()
        with Service(workers=1, cache=False) as svc:
            futs = [svc.submit(grid,
                               random_field(grid.shape,
                                            np.random.default_rng(i)),
                               cfg, topology=(1, 1, 2), backend="procmpi")
                    for i in range(4)]
            for fut in futs:
                fut.result(timeout=120)
            st = svc.stats
        assert st.sessions_created == 1
        assert st.sessions_reused == 3
        assert st.process_spawns == 2  # one warm world of two ranks

    def test_submit_after_close_raises(self):
        grid, field, cfg = small_problem()
        svc = Service(workers=0)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(grid, field, cfg)

    def test_module_level_front_end(self):
        import repro.serve as serve

        grid, field, cfg = small_problem(n=8)
        try:
            fut = repro.submit(grid, field, cfg)
            res = fut.result(timeout=60)
            ref = reference_sweeps(grid, field, cfg.total_updates)
            np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)
            # repro.submit/map are the api-module wrappers (one public
            # implementation path, lazily importing the service).
            assert repro.map is repro.map_jobs is repro.api.map_jobs
            assert repro.submit is repro.api.submit
            results = repro.map([SolveJob(grid=grid, field=field,
                                          config=cfg)])
            assert np.array_equal(results[0].field, res.field)
        finally:
            serve.shutdown()


# ---------------------------------------------------------------------------
# The acceptance criterion: >=2x warm-pool throughput on counters
# ---------------------------------------------------------------------------

@pytest.mark.perf
class TestThroughputAcceptance:
    JOBS = 16
    TOPOLOGY = (1, 1, 2)

    def _problems(self):
        grid, _, cfg = small_problem()
        fields = [random_field(grid.shape, np.random.default_rng(i))
                  for i in range(self.JOBS)]
        return grid, fields, cfg

    def test_warm_pool_at_least_2x_sequential_on_setup_counters(self):
        from repro.dist.procmpi import process_spawns
        from repro.dist.shm import segment_creates

        grid, fields, cfg = self._problems()

        # The equivalent sequential loop: one cold solve() per job.
        s0, g0 = process_spawns(), segment_creates()
        seq_results = [repro.solve(grid, f, cfg, topology=self.TOPOLOGY,
                                   backend="procmpi") for f in fields]
        seq_spawns = process_spawns() - s0
        seq_segments = segment_creates() - g0

        # The same 16 jobs through one warm worker pool.
        s0, g0 = process_spawns(), segment_creates()
        with Service(workers=1, cache=False) as svc:
            futs = [svc.submit(grid, f, cfg, topology=self.TOPOLOGY,
                               backend="procmpi") for f in fields]
            pool_results = [fut.result(timeout=300) for fut in futs]
            st = svc.stats
        pool_spawns = process_spawns() - s0
        pool_segments = segment_creates() - g0

        for seq, pooled in zip(seq_results, pool_results):
            assert np.array_equal(seq.field, pooled.field)
        assert st.backend_solves == self.JOBS

        # Throughput proxy: jobs per unit of deterministic setup work.
        # The pool must be at least 2x cheaper on both setup axes (in
        # practice it is ~JOBS x: one spawn/segment set serves all 16).
        assert pool_spawns > 0 and seq_spawns >= 2 * pool_spawns, \
            (seq_spawns, pool_spawns)
        assert seq_segments >= 2 * pool_segments, \
            (seq_segments, pool_segments)
        n_ranks = self.TOPOLOGY[0] * self.TOPOLOGY[1] * self.TOPOLOGY[2]
        assert seq_spawns == self.JOBS * n_ranks
        assert pool_spawns == n_ranks  # one warm world for all 16 jobs

    def test_cache_warm_path_runs_zero_backends(self):
        grid, fields, cfg = self._problems()
        with Service(workers=0) as svc:
            svc.submit(grid, fields[0], cfg)
            svc.drain()
            warm = svc.submit(grid, fields[0], cfg)
            st = svc.stats
            assert warm.cache_hit and st.backend_solves == 1
