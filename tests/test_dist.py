"""Distributed-memory rail: decomposition, exchange, solver equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Grid3D, PipelineConfig, RelaxedSpec
from repro.dist.decomp import CartesianDecomposition
from repro.dist.simmpi import RankComm, SimMPIError, run_ranks
from repro.dist.solver import (
    distributed_jacobi_pipelined,
    distributed_jacobi_sweeps,
)
from repro.grid import DirichletBoundary, random_field
from repro.kernels import reference_sweeps

RNG = np.random.default_rng(5)


class TestDecomp:
    def test_partition(self):
        d = CartesianDecomposition((13, 9, 8), (2, 2, 2), 2)
        d.check_partition()

    def test_rank_coords_roundtrip(self):
        d = CartesianDecomposition((8, 8, 8), (2, 3, 1), 1)
        for r in range(d.n_ranks):
            assert d.coords_rank(d.rank_coords(r)) == r

    def test_neighbors(self):
        d = CartesianDecomposition((8, 8, 8), (2, 2, 2), 1)
        assert d.neighbor(0, 0, -1) is None
        assert d.neighbor(0, 0, 1) == 4
        assert d.neighbor(0, 2, 1) == 1
        assert d.neighbor(7, 1, -1) == 5

    def test_stored_clipped_to_domain(self):
        d = CartesianDecomposition((8, 8, 8), (2, 1, 1), 3)
        g0 = d.geometry(0)
        assert g0.stored.lo == (0, 0, 0)
        assert g0.stored.hi == (7, 8, 8)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            CartesianDecomposition((4, 4, 4), (5, 1, 1), 1)


class TestSimMPI:
    def test_ring_pass(self):
        def fn(comm: RankComm, rank: int):
            data = np.array([float(rank)])
            nxt = (rank + 1) % comm.size
            prev = (rank - 1) % comm.size
            got = comm.sendrecv(nxt, data, prev)
            return float(got[0])

        out = run_ranks(4, fn)
        assert out == [3.0, 0.0, 1.0, 2.0]

    def test_gather(self):
        def fn(comm: RankComm, rank: int):
            return comm.gather(rank * 10)

        out = run_ranks(3, fn)
        assert out[0] == [0, 10, 20]
        assert out[1] is None

    def test_allreduce_max(self):
        def fn(comm: RankComm, rank: int):
            return comm.allreduce_max(float(rank))

        assert run_ranks(3, fn) == [2.0, 2.0, 2.0]

    def test_exception_propagates(self):
        def fn(comm: RankComm, rank: int):
            if rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises((ValueError, SimMPIError)):
            run_ranks(2, fn)

    def test_send_copies_arrays(self):
        def fn(comm: RankComm, rank: int):
            if rank == 0:
                a = np.ones(4)
                comm.send(1, a)
                a[:] = 99.0
                return None
            got = comm.recv(0)
            return float(got.sum())

        assert run_ranks(2, fn)[1] == 4.0


class TestSweepSolver:
    @pytest.mark.parametrize("proc_grid", [(2, 1, 1), (1, 2, 1), (2, 2, 1),
                                           (2, 2, 2)])
    def test_matches_reference_h2(self, proc_grid):
        grid = Grid3D((12, 10, 8))
        field = random_field(grid.shape, RNG)
        res = distributed_jacobi_sweeps(grid, field, proc_grid,
                                        supersteps=2, halo=2)
        ref = reference_sweeps(grid, field, 4)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_larger_halo(self):
        grid = Grid3D((16, 12, 12))
        field = random_field(grid.shape, RNG)
        res = distributed_jacobi_sweeps(grid, field, (2, 2, 1),
                                        supersteps=1, halo=4)
        ref = reference_sweeps(grid, field, 4)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_corner_data_via_expansion(self):
        # 2x2x2 grid forces diagonal dependencies through all corners;
        # h=3 over multiple supersteps stresses the 3-phase expansion.
        grid = Grid3D((12, 12, 12))
        field = random_field(grid.shape, RNG)
        res = distributed_jacobi_sweeps(grid, field, (2, 2, 2),
                                        supersteps=2, halo=3)
        ref = reference_sweeps(grid, field, 6)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_nonzero_boundary(self):
        bc = DirichletBoundary(1.0, faces={(0, -1): -2.0, (1, 1): 3.0})
        grid = Grid3D((10, 10, 8), boundary=bc)
        field = random_field(grid.shape, RNG)
        res = distributed_jacobi_sweeps(grid, field, (2, 2, 1),
                                        supersteps=2, halo=2)
        ref = reference_sweeps(grid, field, 4)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_single_rank_degenerate(self):
        grid = Grid3D((8, 8, 8))
        field = random_field(grid.shape, RNG)
        res = distributed_jacobi_sweeps(grid, field, (1, 1, 1),
                                        supersteps=3, halo=2)
        ref = reference_sweeps(grid, field, 6)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_halo_thicker_than_core_rejected(self):
        grid = Grid3D((8, 8, 8))
        field = random_field(grid.shape, RNG)
        with pytest.raises(ValueError, match="at least h cells"):
            distributed_jacobi_sweeps(grid, field, (4, 1, 1),
                                      supersteps=1, halo=4)


class TestHybridPipelinedSolver:
    def test_matches_reference(self):
        grid = Grid3D((20, 12, 10))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                             block_size=(3, 100, 100),
                             sync=RelaxedSpec(1, 2), passes=2)
        res = distributed_jacobi_pipelined(grid, field, (2, 1, 1), cfg)
        ref = reference_sweeps(grid, field, cfg.total_updates)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_two_teams_across_ranks(self):
        grid = Grid3D((24, 10, 10))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=1,
                             block_size=(3, 100, 100),
                             sync=RelaxedSpec(1, 3), passes=1)
        res = distributed_jacobi_pipelined(grid, field, (2, 2, 1), cfg)
        ref = reference_sweeps(grid, field, cfg.total_updates)
        np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-13)

    def test_compressed_rejected(self):
        grid = Grid3D((12, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(3, 100, 100), storage="compressed")
        with pytest.raises(ValueError, match="twogrid"):
            distributed_jacobi_pipelined(grid, field, (2, 1, 1), cfg)

    def test_message_accounting(self):
        grid = Grid3D((12, 12, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                             block_size=(3, 100, 100), passes=1)
        res = distributed_jacobi_pipelined(grid, field, (2, 1, 1), cfg)
        assert res.bytes_exchanged > 0
        assert res.halo == 2
        assert res.n_ranks == 2
