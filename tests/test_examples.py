"""Smoke-test the examples as subprocesses (they are user-facing docs).

``quickstart.py`` and ``cluster_scaling.py`` exercise both rails end to
end; the other examples are covered by their own unit-tested building
blocks and are too slow for the default test run.  The two scripts'
problem sizes are deliberately small (hand-coded in the scripts), so no
extra shrinking is needed here.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name: str, timeout: float = 600.0) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    assert proc.returncode == 0, (
        f"{name} failed (exit {proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "plain Jacobi sweeps" in out
    assert "MLUP/s" in out


@pytest.mark.slow
def test_cluster_scaling():
    out = run_example("cluster_scaling.py")
    assert "distributed == single-domain reference" in out
    assert "pipelined 2PPN [weak]" in out


@pytest.mark.slow
def test_serving():
    out = run_example("serving.py")
    assert "cache hit: bit-identical result" in out
    assert "rank processes spawned" in out


@pytest.mark.slow
def test_engines():
    out = run_example("engines.py")
    assert "bit-identical ✓" in out
    assert "pure cache hit" in out


@pytest.mark.slow
def test_analysis():
    out = run_example("analysis.py")
    assert "paper default (4 stages, d_l=1, d_u=4): CERTIFIED" in out
    assert "drain deadlock: REJECTED" in out
    assert "witness interleaving" in out
    assert "validate='static' solve bit-identical to reference: True" in out
