"""Tests for synchronisation specs and policies (Eq. 3 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import BarrierSpec, PipelineConfig, RelaxedSpec
from repro.core.sync import BarrierPolicy, RelaxedPolicy, make_policy
from repro.core.executor import PipelineExecutor, ScheduleDeadlock
from repro.grid import Grid3D, random_field
from repro.kernels import jacobi7


class TestSpecs:
    def test_relaxed_rejects_dl_zero(self):
        with pytest.raises(ValueError, match="minimum one-block distance"):
            RelaxedSpec(d_l=0, d_u=2)

    def test_relaxed_rejects_empty_window(self):
        with pytest.raises(ValueError, match="window is empty"):
            RelaxedSpec(d_l=3, d_u=2)

    def test_relaxed_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RelaxedSpec(d_l=1, d_u=2, team_delay=-1)

    def test_looseness(self):
        assert RelaxedSpec(1, 4).looseness == 3

    def test_describe(self):
        assert "barrier" in BarrierSpec().describe()
        assert "d_l=1" in RelaxedSpec(1, 2).describe()
        assert "d_t=3" in RelaxedSpec(1, 2, 3).describe()


class TestBarrierPolicy:
    def test_staggered_rounds(self):
        # Stage s's round is c_s + s: with counters [2, 1, 0] every stage
        # sits at round 2 and all are ready.
        p = BarrierPolicy(3)
        fin = [False] * 3
        assert all(p.ready(s, [2, 1, 0], fin) for s in range(3))

    def test_stage_ahead_of_round_blocked(self):
        p = BarrierPolicy(3)
        fin = [False] * 3
        # Stage 0 already did round 2 (c=3); stages 1, 2 still at round 2.
        assert not p.ready(0, [3, 1, 0], fin)
        assert p.ready(1, [3, 1, 0], fin)
        assert p.ready(2, [3, 1, 0], fin)

    def test_initial_stagger(self):
        # At start only stage 0 is at the minimum round.
        p = BarrierPolicy(3)
        fin = [False] * 3
        assert p.ready(0, [0, 0, 0], fin)
        assert not p.ready(1, [0, 0, 0], fin)
        assert not p.ready(2, [0, 0, 0], fin)

    def test_blockers(self):
        p = BarrierPolicy(3)
        assert p.blockers(0, [3, 1, 0], [False] * 3) == [1, 2]

    def test_finished_ignored(self):
        p = BarrierPolicy(2)
        assert p.ready(1, [5, 3], [True, False])


class TestRelaxedPolicy:
    def cfg(self, t=4, dl=1, du=2, dt=0, teams=1):
        return PipelineConfig(teams=teams, threads_per_team=t,
                              updates_per_thread=1, block_size=(2, 100, 100),
                              sync=RelaxedSpec(dl, du, dt))

    def test_front_runs_ahead_up_to_du(self):
        p = RelaxedPolicy(self.cfg(t=2, dl=1, du=3))
        fin = [False, False]
        assert p.ready(0, [0, 0], fin)
        assert p.ready(0, [3, 0], fin)
        assert not p.ready(0, [4, 0], fin)

    def test_successor_needs_dl(self):
        p = RelaxedPolicy(self.cfg(t=2, dl=2, du=4))
        fin = [False, False]
        assert not p.ready(1, [1, 0], fin)
        assert p.ready(1, [2, 0], fin)

    def test_finished_predecessor_waiver(self):
        p = RelaxedPolicy(self.cfg(t=2, dl=3, du=5))
        # Predecessor finished at counter 4; gap is only 1 but waived.
        assert p.ready(1, [4, 3], [True, False])
        assert not p.ready(1, [4, 3], [False, False])

    def test_team_delay_applied_at_team_boundary(self):
        cfg = PipelineConfig(teams=2, threads_per_team=2,
                             updates_per_thread=1, block_size=(2, 100, 100),
                             sync=RelaxedSpec(1, 2, team_delay=3))
        p = RelaxedPolicy(cfg)
        # Stage 2 is the front thread of team 1: d_l_eff = 1 + 3.
        assert p.d_l_eff == [1, 1, 4, 1]
        # Stage 1 is the rear thread of team 0: d_u_eff = 2 + 3.
        assert p.d_u_eff == [2, 5, 2, 2]

    def test_blockers_names_neighbors(self):
        p = RelaxedPolicy(self.cfg(t=3, dl=2, du=2))
        fin = [False] * 3
        assert p.blockers(1, [1, 0, 0], fin) == [0]
        assert p.blockers(0, [3, 0, 0], fin) == [1]
        # Stage 1 is far enough behind 0 but too far ahead of 2.
        assert p.blockers(1, [5, 3, 0], fin) == [2]
        # Both conditions violated at once.
        assert p.blockers(1, [4, 3, 0], fin) == [0, 2]


class TestPolicyFactory:
    def test_barrier(self):
        cfg = PipelineConfig(sync=BarrierSpec())
        assert isinstance(make_policy(cfg), BarrierPolicy)

    def test_relaxed(self):
        cfg = PipelineConfig(sync=RelaxedSpec(1, 2))
        assert isinstance(make_policy(cfg), RelaxedPolicy)


class TestExecutorSyncBehaviour:
    def run_with_trace(self, sync, order="front_first"):
        grid = Grid3D((12, 4, 4))
        field = random_field(grid.shape, np.random.default_rng(0))
        cfg = PipelineConfig(teams=1, threads_per_team=3,
                             updates_per_thread=1,
                             block_size=(2, 100, 100), sync=sync)
        ex = PipelineExecutor(grid, field, cfg, jacobi7(),
                              order=order, record_trace=True)
        ex.run()
        return ex

    def test_barrier_keeps_staggered_distance(self):
        # Three stages staggered by one block each: overall counter spread
        # stays within n_stages (2 steady-state + 1 transient).
        ex = self.run_with_trace(BarrierSpec())
        assert ex.stats.max_counter_gap <= 3

    def test_relaxed_gap_respects_du(self):
        ex = self.run_with_trace(RelaxedSpec(1, 4))
        # Per-link precondition c_i - c_{i+1} <= d_u bounds the post-state
        # link gap by d_u + 1; with 3 stages the spread is <= 2*(d_u+1).
        assert 1 < ex.stats.max_counter_gap <= 2 * (4 + 1)

    def test_lockstep_tighter_than_loose(self):
        tight = self.run_with_trace(RelaxedSpec(1, 1))
        loose = self.run_with_trace(RelaxedSpec(1, 5))
        assert tight.stats.max_counter_gap <= loose.stats.max_counter_gap

    def test_trace_recorded(self):
        ex = self.run_with_trace(BarrierSpec())
        assert ex.stats.trace
        assert ex.stats.block_ops == len(ex.stats.trace)
