"""Fault injection for both distributed rails.

The contract when a rank fails mid-exchange:

* **thread rail** (``simmpi``): peers blocked in receives and barriers
  are released with :class:`SimMPIError` instead of hanging, and
  ``run_ranks`` re-raises the *original* exception in the caller;
* **process rail** (``procmpi``): same release semantics via the shared
  abort event, the original exception crosses the process boundary (or
  a :class:`ProcMPIError` naming the failure when it cannot), and the
  teardown leaves **no** shared-memory segments and **no** zombie rank
  processes — even when a rank is killed outright and never reports.

Rank functions are module-level so the process-rail tests also run
under the ``spawn`` start method.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.dist.procmpi import ProcMPIError, run_procs
from repro.dist.shm import live_segments
from repro.dist.simmpi import SimMPIError, run_ranks


@pytest.fixture(autouse=True)
def no_shm_leaks_or_zombies():
    before = live_segments()
    yield
    after = live_segments()
    if before is not None:
        assert after == before
    assert mp.active_children() == []


# -- rank functions ----------------------------------------------------------

def _raise_mid_exchange(comm, rank):
    """Rank 1 dies after the first round; peers block on round two."""
    peer = 1 - rank
    comm.sendrecv(peer, np.full(4, float(rank)), peer)
    if rank == 1:
        raise ValueError("injected failure after round one")
    return comm.recv(peer)  # never arrives: must be released, not hang


def _raise_before_barrier(comm, rank):
    if rank == 0:
        raise ValueError("boom")
    comm.barrier()


def _die_hard(comm, rank):
    """Rank 1 is killed without any chance to report or clean up."""
    if rank == 1:
        os._exit(17)
    return comm.recv(1)


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.socket = lambda: None  # lambdas never pickle


def _raise_unpicklable(comm, rank):
    if rank == 0:
        raise _Unpicklable()
    comm.barrier()


def _poison_boundary(z, y, x):
    """A Dirichlet ``func`` that detonates when a rank evaluates it."""
    raise RuntimeError("poisoned boundary")


class TestThreadRail:
    def test_peers_released_and_original_reraised(self):
        with pytest.raises(ValueError, match="injected failure"):
            run_ranks(2, _raise_mid_exchange, timeout=30.0)

    def test_barrier_released(self):
        with pytest.raises(ValueError, match="boom"):
            run_ranks(2, _raise_before_barrier, timeout=30.0)

    def test_pure_timeout_is_simmpi_error(self):
        def lonely(comm, rank):
            if rank == 0:
                comm.recv(1)  # rank 1 never sends

        with pytest.raises(SimMPIError, match="timed out"):
            run_ranks(2, lonely, timeout=0.3)


class TestProcessRail:
    def test_peers_released_and_original_reraised(self):
        with pytest.raises(ValueError, match="injected failure"):
            run_procs(2, _raise_mid_exchange, timeout=30.0,
                      pair_bytes={(0, 1): 32, (1, 0): 32})

    def test_barrier_released(self):
        with pytest.raises(ValueError, match="boom"):
            run_procs(2, _raise_before_barrier, timeout=30.0)

    def test_killed_rank_detected_and_peers_released(self):
        with pytest.raises(ProcMPIError, match="died without reporting"):
            run_procs(2, _die_hard, timeout=30.0)

    def test_unpicklable_exception_degrades_to_procmpi_error(self):
        with pytest.raises(ProcMPIError, match="_Unpicklable"):
            run_procs(2, _raise_unpicklable, timeout=30.0)

    def test_failed_solve_releases_field_and_ring_segments(self):
        # End-to-end: a rank crashing *inside* a real procmpi solve —
        # after the field blocks and halo rings were allocated — must
        # still unwind every segment and process (the autouse fixture
        # asserts /dev/shm is clean afterwards).
        from repro import Grid3D
        from repro.dist.solver import distributed_jacobi_sweeps
        from repro.grid import DirichletBoundary, random_field

        bc = DirichletBoundary(0.0, func=_poison_boundary)
        grid = Grid3D((12, 10, 10), boundary=bc)
        field = random_field(grid.shape, np.random.default_rng(3))
        with pytest.raises(RuntimeError, match="poisoned boundary"):
            distributed_jacobi_sweeps(grid, field, (2, 1, 1), supersteps=1,
                                      halo=2, transport="procmpi")
