"""repro.obs.monitor — live monitoring, SLO histograms, stragglers.

The contract under test, per piece:

* **sampling** — rings are bounded and thread-safe; ``monotime`` is the
  one sanctioned clock;
* **histogram** — fixed buckets make every quantile a pure function of
  the observation sequence (bit-identical under replay and across runs
  with a deterministic clock);
* **recorder** — last-N job traces at constant memory, dumpable to
  Chrome-trace JSON without global ``trace=True``;
* **straggler** — the detection automaton is deterministic, so the
  DES limplock prediction pins the observed detection latency exactly;
* **service wiring** — a monitored ``workers=0`` drain produces exact
  counter/histogram totals, a valid OpenMetrics exposition and a
  JSON-strict ``health()``;
* **fault injection** (``-m slow``) — a limplocked procmpi session is
  flagged within the DES-predicted number of observations, quarantined,
  and its stuck job is speculatively re-executed bit-identically;
* **overhead** (``-m perf``) — monitoring costs <= 5% wall time on the
  quick serve workload.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np
import pytest

import repro
from repro import Grid3D, PipelineConfig, RelaxedSpec
from repro.grid import random_field
from repro.obs import Trace, Tracer
from repro.obs.monitor import (
    DEFAULT_LATENCY_BOUNDS,
    FixedHistogram,
    FlightRecorder,
    Monitor,
    Ring,
    StragglerDetector,
    StragglerPolicy,
    metric_name,
    monotime,
    predict_detection_latency,
    predict_limplock_ratio,
    to_openmetrics,
    validate_openmetrics,
)
from repro.serve import Service
from repro.serve.service import QUEUE_HISTOGRAM, WALL_HISTOGRAM


def small_problem(n: int = 12, seed: int = 0):
    grid = Grid3D((n, n, n))
    field = random_field(grid.shape, np.random.default_rng(seed))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    return grid, field, cfg


def _machine():
    from repro.machine.presets import nehalem_ep

    return nehalem_ep()


def _ticking_clock(step: float = 0.001):
    """A deterministic clock: each call advances exactly ``step``."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


# ---------------------------------------------------------------------------
# Sampling primitives
# ---------------------------------------------------------------------------

class TestRing:
    def test_bounded_eviction_keeps_newest(self):
        ring = Ring(3)
        for i in range(7):
            ring.push(i)
        assert ring.items() == [4, 5, 6]
        assert len(ring) == 3
        assert ring.pushed == 7
        assert ring.last() == 6

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            Ring(1).last()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Ring(0)

    def test_monotime_is_monotonic(self):
        a, b = monotime(), monotime()
        assert b >= a


# ---------------------------------------------------------------------------
# Fixed-bucket histograms
# ---------------------------------------------------------------------------

class TestFixedHistogram:
    def test_bucket_rule_first_edge_at_or_above(self):
        h = FixedHistogram("t", bounds=(1.0, 2.0, 4.0))
        h.replay([0.5, 1.0, 1.5, 2.0, 3.0, 9.0])
        # <=1, <=1, <=2, <=2, <=4, overflow
        assert h.bucket_counts() == [2, 2, 1, 1]
        assert h.count == 6
        assert h.total == pytest.approx(17.0)

    def test_quantiles_are_bucket_upper_edges(self):
        h = FixedHistogram("t", bounds=(1.0, 2.0, 4.0))
        h.replay([0.5] * 50 + [1.5] * 45 + [3.0] * 5)
        assert h.quantile(0.50) == 1.0
        assert h.quantile(0.95) == 2.0
        assert h.quantile(0.99) == 4.0
        assert set(h.percentiles()) == {"p50", "p95", "p99"}

    def test_overflow_quantile_reports_observed_max(self):
        h = FixedHistogram("t", bounds=(1.0,))
        h.replay([5.0, 7.5])
        assert h.quantile(0.99) == 7.5

    def test_empty_quantile_is_zero(self):
        assert FixedHistogram("t").quantile(0.5) == 0.0

    def test_replay_is_bit_identical(self):
        values = [abs(math.sin(i)) * 0.1 for i in range(200)]
        a = FixedHistogram("t").replay(values)
        b = FixedHistogram("t").replay(values)
        assert a.snapshot() == b.snapshot()

    def test_default_bounds_ascending_and_wide(self):
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)
        assert DEFAULT_LATENCY_BOUNDS[0] <= 1e-6
        assert DEFAULT_LATENCY_BOUNDS[-1] >= 60.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FixedHistogram("t", bounds=())
        with pytest.raises(ValueError):
            FixedHistogram("t", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram("t", bounds=(2.0, 1.0))

    def test_snapshot_is_json_able(self):
        h = FixedHistogram("t", bounds=(1.0, 2.0))
        h.record(1.5)
        json.dumps(h.snapshot(), allow_nan=False)
        empty = FixedHistogram("t").snapshot()
        assert empty["min"] is None and empty["max"] is None
        json.dumps(empty, allow_nan=False)

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            FixedHistogram("t").quantile(1.5)


# ---------------------------------------------------------------------------
# Monitor core
# ---------------------------------------------------------------------------

class TestMonitor:
    def test_sample_snapshots_every_source(self):
        from repro.obs import MetricsRegistry

        mon = Monitor(capacity=4)
        reg = MetricsRegistry()
        reg.inc("jobs", 3)
        mon.attach("svc", reg)
        out = mon.sample()
        assert set(out) == {"monitor", "svc"}
        assert out["svc"].counters["jobs"] == 3
        assert mon.samples == 1
        assert mon.sources() == ["monitor", "svc"]
        assert len(mon.series("svc")) == 1

    def test_rings_are_bounded_by_capacity(self):
        mon = Monitor(capacity=3)
        for _ in range(8):
            mon.sample()
        assert len(mon.series("monitor")) == 3
        assert mon.samples == 8

    def test_duplicate_attach_rejected(self):
        from repro.obs import MetricsRegistry

        mon = Monitor()
        mon.attach("svc", MetricsRegistry())
        with pytest.raises(ValueError):
            mon.attach("svc", MetricsRegistry())

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            Monitor().series("nope")

    def test_probes_run_before_the_snapshot(self):
        from repro.obs import MetricsRegistry

        mon = Monitor()
        reg = MetricsRegistry()
        mon.attach("svc", reg)
        mon.add_probe(lambda: reg.inc("probed"))
        out = mon.sample()
        assert out["svc"].counters["probed"] == 1

    def test_observe_feeds_named_histogram(self):
        mon = Monitor()
        mon.observe("lat", 0.002)
        mon.observe("lat", 0.004)
        assert mon.observations == 2
        assert mon.histogram("lat").count == 2
        assert [h.name for h in mon.histograms()] == ["lat"]

    def test_injectable_clock_stamps_samples(self):
        mon = Monitor(clock=_ticking_clock(1.0))
        s1 = mon.sample()["monitor"]
        s2 = mon.sample()["monitor"]
        assert (s1.t, s2.t) == (1.0, 2.0)

    def test_background_sampling_thread(self):
        mon = Monitor()
        mon.start(0.01)
        with pytest.raises(RuntimeError):
            mon.start(0.01)
        deadline = time.monotonic() + 5.0
        while mon.samples == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        mon.stop()
        mon.stop()  # idempotent
        assert mon.samples >= 1

    def test_openmetrics_exposition_is_valid(self):
        from repro.obs import MetricsRegistry

        mon = Monitor()
        reg = MetricsRegistry()
        reg.inc("jobs.completed", 2)
        reg.set_gauge("queue depth", 1)
        mon.attach("svc", reg)
        mon.observe("lat", 0.5)
        mon.sample()
        assert validate_openmetrics(mon.openmetrics()) == []


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def _tiny_trace() -> Trace:
    tracer = Tracer(pid=0, label="test")
    with tracer.span("job", cat="test"):
        pass
    return tracer.finish()


class TestFlightRecorder:
    def test_ring_keeps_last_n_with_stable_seqs(self):
        rec = FlightRecorder(capacity=2)
        for i in range(5):
            rec.record(f"job-{i}", _tiny_trace(), wall_s=0.1 * i)
        seqs = [r.seq for r in rec.records()]
        assert seqs == [3, 4]
        assert rec.recorded == 5
        assert rec.capacity == 2

    def test_slowest_orders_by_wall_time(self):
        rec = FlightRecorder(capacity=8)
        for i, w in enumerate([0.3, 0.9, 0.1]):
            rec.record(f"job-{i}", _tiny_trace(), wall_s=w)
        slow = rec.slowest(2)
        assert [r.wall_s for r in slow] == [0.9, 0.3]

    def test_dump_writes_chrome_trace(self, tmp_path):
        from repro.obs import load_chrome_trace

        rec = FlightRecorder(capacity=2)
        r = rec.record("job", _tiny_trace(), wall_s=0.5, worker="session-0")
        out = tmp_path / "flight.json"
        rec.dump(r.seq, out)
        loaded = load_chrome_trace(out)
        assert [s.name for s in loaded.spans] == ["job"]
        with pytest.raises(KeyError):
            rec.dump(999, out)


# ---------------------------------------------------------------------------
# Straggler detection and the DES differential
# ---------------------------------------------------------------------------

class TestStragglerDetector:
    def test_cold_fleet_never_self_flags(self):
        det = StragglerDetector(StragglerPolicy(min_observations=2))
        score = det.observe("a", 10.0)
        assert not score.flagged and score.over == 0
        assert det.deadline() is None

    def test_flags_after_consecutive_threshold_breaches(self):
        pol = StragglerPolicy(threshold=2.0, consecutive=2,
                              min_observations=2)
        det = StragglerDetector(pol)
        for _ in range(4):
            det.observe("healthy", 1.0)
        s1 = det.observe("limp", 5.0)
        assert s1.over == 1 and not s1.flagged
        s2 = det.observe("limp", 5.0)
        assert s2.flagged and s2.flagged_after == 2
        assert det.degraded() == ["limp"]
        # Flagging is sticky; further slow jobs keep the verdict.
        assert det.observe("limp", 5.0).flagged

    def test_healthy_observation_resets_the_run(self):
        pol = StragglerPolicy(threshold=2.0, consecutive=3,
                              min_observations=1)
        det = StragglerDetector(pol)
        det.observe("ref", 1.0)
        det.observe("ref", 1.0)
        det.observe("x", 5.0)
        det.observe("x", 5.0)
        assert det.observe("x", 1.0).over == 0  # recovered
        det.observe("x", 5.0)
        assert det.degraded() == []  # 3-in-a-row never happened

    def test_deadline_scales_fleet_expectation(self):
        pol = StragglerPolicy(speculation_factor=4.0, min_observations=1)
        det = StragglerDetector(pol)
        det.observe("a", 2.0)
        det.observe("a", 2.0)
        assert det.deadline() == pytest.approx(8.0)

    def test_scores_sorted_most_suspicious_first(self):
        det = StragglerDetector(StragglerPolicy(min_observations=1))
        for _ in range(3):
            det.observe("fast", 1.0)
            det.observe("slow", 3.0)
        scores = det.scores()
        assert [s.worker for s in scores] == ["slow", "fast"]
        assert scores[0].ratio > scores[1].ratio

    def test_check_trace_scores_stage_drift(self):
        grid, field, cfg = small_problem()
        res = repro.solve(grid, field, cfg, trace=True)
        det = StragglerDetector()
        drift = det.check_trace("backend-shared", res.trace, config=cfg,
                                shape=grid.shape, machine=_machine())
        assert math.isfinite(drift) and drift >= 0.0
        score = next(s for s in det.scores()
                     if s.worker == "backend-shared")
        assert score.worst_share_drift == pytest.approx(drift)


class TestLimplockModel:
    def test_uniform_time_dilation_is_exact(self):
        from repro.sim.costmodel import limplock

        grid, _field, cfg = small_problem()
        machine = _machine()
        assert predict_limplock_ratio(machine, cfg, grid.shape,
                                      1.0) == pytest.approx(1.0)
        for factor in (3.0, 25.0):
            ratio = predict_limplock_ratio(machine, cfg, grid.shape, factor)
            assert ratio == pytest.approx(factor, rel=1e-6)
        assert "limplock x3" in limplock(machine, 3.0).name
        with pytest.raises(ValueError):
            limplock(machine, 0.5)

    def test_detection_latency_prediction(self):
        pol = StragglerPolicy(threshold=2.0, consecutive=2)
        assert predict_detection_latency(1.5, pol) == math.inf
        assert predict_detection_latency(25.0, pol) == 2.0


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------

class TestOpenMetrics:
    def test_metric_name_sanitizes(self):
        assert metric_name("serve.solve_wall") == "repro_serve_solve_wall"
        assert metric_name("queue depth", prefix="") == "queue_depth"

    def test_round_trip_validates(self):
        h = FixedHistogram("lat", bounds=(0.1, 1.0)).replay([0.05, 0.5, 7.0])
        text = to_openmetrics({"jobs": 3}, {"depth": 2.5}, [h])
        assert validate_openmetrics(text) == []
        assert 'le="+Inf"} 3' in text
        assert "repro_jobs_total 3" in text

    def test_validator_catches_breakage(self):
        assert validate_openmetrics("repro_x 1\n")  # no TYPE, no EOF
        broken = ("# TYPE repro_h histogram\n"
                  'repro_h_bucket{le="1"} 5\n'
                  'repro_h_bucket{le="+Inf"} 3\n'  # not cumulative
                  "repro_h_count 3\n# EOF\n")
        problems = validate_openmetrics(broken)
        assert any("cumulative" in p for p in problems)


# ---------------------------------------------------------------------------
# Monitored service: deterministic drain battery
# ---------------------------------------------------------------------------

class TestMonitoredService:
    def test_counters_histograms_and_recorder_are_exact(self):
        grid, _field, cfg = small_problem()
        with Service(workers=0, cache=False, monitor=True,
                     record_traces=3) as svc:
            futs = [svc.submit(grid,
                               random_field(grid.shape,
                                            np.random.default_rng(i)), cfg)
                    for i in range(5)]
            svc.drain()
            for fut in futs:
                fut.result(timeout=0)
            mon = svc.monitor
            assert mon is not None
            mon.sample()
            assert mon.histogram(WALL_HISTOGRAM).count == 5
            assert mon.histogram(QUEUE_HISTOGRAM).count == 5
            assert mon.observations == 10
            assert mon.samples == 1
            assert mon.recorder is not None
            assert mon.recorder.recorded == 5
            assert len(mon.recorder.records()) == 3
            scores = mon.detector.scores()
            assert [s.worker for s in scores] == ["backend-shared"]
            assert scores[0].jobs == 5 and not scores[0].flagged
            st = svc.stats
            assert (st.completed, st.backend_solves) == (5, 5)
            assert (st.speculated, st.speculation_wins,
                    st.sessions_quarantined) == (0, 0, 0)
            assert validate_openmetrics(mon.openmetrics()) == []

    def test_recorded_traces_carry_real_spans(self):
        grid, field, cfg = small_problem()
        with Service(workers=0, cache=False, record_traces=2) as svc:
            svc.submit(grid, field, cfg)
            svc.drain()
            [rec] = svc.monitor.recorder.records()
            assert rec.worker == "backend-shared"
            assert rec.status == "ok" and rec.wall_s > 0
            assert len(rec.trace.spans) > 0

    def test_health_is_json_strict_and_complete(self):
        grid, field, cfg = small_problem()
        with Service(workers=0, monitor=True) as svc:
            svc.submit(grid, field, cfg)
            svc.drain()
            svc.monitor.sample()
            health = svc.health()
            json.dumps(health, allow_nan=False)
            assert health["status"] == "ok"
            assert health["counters"]["completed"] == 1
            assert WALL_HISTOGRAM in health["histograms"]
            assert health["monitor"]["samples"] == 1
            assert health["sessions"]["quarantined"] == 0
        assert svc.health()["status"] == "closed"

    def test_health_without_monitor_still_works(self):
        with Service(workers=0) as svc:
            health = svc.health()
            json.dumps(health, allow_nan=False)
            assert health["monitor"] is None
            assert health["histograms"] == {}

    def test_straggler_param_enables_monitoring_implicitly(self):
        with Service(workers=0,
                     straggler=StragglerPolicy(threshold=3.0)) as svc:
            assert svc.monitor is not None
            assert svc.monitor.detector.policy.threshold == 3.0
            assert svc.monitor.recorder is None

    def test_monitor_interval_drives_background_samples(self):
        with Service(workers=0, monitor=True,
                     monitor_interval=0.01) as svc:
            deadline = time.monotonic() + 5.0
            while svc.monitor.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert svc.monitor.samples >= 1
        # close() stopped the sampler; counters are frozen now.
        frozen = svc.monitor.samples
        time.sleep(0.05)
        assert svc.monitor.samples == frozen

    def test_results_unchanged_by_monitoring(self):
        grid, field, cfg = small_problem()
        plain = repro.solve(grid, field, cfg)
        with Service(workers=0, cache=False, monitor=True,
                     record_traces=2) as svc:
            fut = svc.submit(grid, field, cfg)
            svc.drain()
            assert np.array_equal(fut.result(timeout=0).field, plain.field)


class TestHistogramDeterminism:
    def _run_stream(self):
        grid, _field, cfg = small_problem()
        mon = Monitor(clock=_ticking_clock(0.001))
        with Service(workers=0, cache=False, monitor=mon) as svc:
            futs = [svc.submit(grid,
                               random_field(grid.shape,
                                            np.random.default_rng(i)), cfg)
                    for i in range(6)]
            svc.drain()
            for fut in futs:
                fut.result(timeout=0)
            mon.sample()
            return ({h.name: h.snapshot() for h in mon.histograms()},
                    mon.openmetrics())

    def test_identical_streams_produce_bit_identical_histograms(self):
        # With the injectable deterministic clock every timestamp is a
        # pure function of the call sequence, so two identical job
        # streams must produce byte-identical snapshots — across runs
        # and across Python versions (fixed buckets, no dict-order or
        # hash dependence).
        snaps_a, om_a = self._run_stream()
        snaps_b, om_b = self._run_stream()
        assert snaps_a == snaps_b
        assert om_a == om_b
        wall = snaps_a[WALL_HISTOGRAM]
        assert wall["count"] == 6 and wall["sum"] == pytest.approx(
            snaps_b[WALL_HISTOGRAM]["sum"], rel=0, abs=0)


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------

class TestMonitorCLI:
    def test_monitor_verb_exports_and_validates(self, tmp_path, capsys):
        from repro.obs.cli import main

        om = tmp_path / "metrics.txt"
        health = tmp_path / "health.json"
        rc = main(["monitor", "--jobs", "3", "--size", "10",
                   "--openmetrics", str(om), "--health", str(health),
                   "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service health: ok" in out
        assert "openmetrics: valid" in out
        assert validate_openmetrics(om.read_text()) == []
        doc = json.loads(health.read_text())
        assert doc["counters"]["completed"] == 3

    def test_top_verb_renders_health_snapshot(self, tmp_path, capsys):
        from repro.obs.cli import main

        health = tmp_path / "health.json"
        rc = main(["monitor", "--jobs", "2", "--size", "10",
                   "--health", str(health)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["top", str(health)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service health: ok" in out
        assert "serve.solve_wall" in out

    def test_top_rejects_garbage(self, tmp_path):
        from repro.obs.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(SystemExit):
            main(["top", str(bad)])


# ---------------------------------------------------------------------------
# Overhead gate (-m perf) and the limplock acceptance battery (-m slow)
# ---------------------------------------------------------------------------

@pytest.mark.perf
class TestMonitoringOverhead:
    def test_monitoring_overhead_within_5_percent(self):
        grid, _field, cfg = small_problem()
        fields = [random_field(grid.shape, np.random.default_rng(i))
                  for i in range(6)]

        def best_of(runs: int, **kwargs) -> float:
            best = math.inf
            for _ in range(runs):
                t0 = time.perf_counter()
                with Service(workers=0, cache=False, **kwargs) as svc:
                    futs = [svc.submit(grid, f, cfg) for f in fields]
                    svc.drain()
                    for fut in futs:
                        fut.result(timeout=0)
                best = min(best, time.perf_counter() - t0)
            return best

        plain = best_of(5)
        monitored = best_of(5, monitor=True)
        # Min-of-5 on both sides irons out scheduler noise; a small
        # absolute allowance keeps sub-100ms workloads honest.
        assert monitored <= plain * 1.05 + 0.010, (
            f"monitoring overhead {monitored / plain - 1:.1%} "
            f"(plain {plain:.4f}s, monitored {monitored:.4f}s)")


@pytest.mark.slow
class TestLimplockAcceptance:
    """The issue's acceptance scenario: inject a limplocked procmpi
    session, and pin detection, quarantine and bit-identical speculative
    re-execution against the DES prediction."""

    FACTOR = 8.0

    def test_limplocked_session_detected_quarantined_speculated(self):
        grid, _field, cfg = small_problem()
        topo = (1, 1, 2)
        # threshold well below FACTOR (detection margin 8/3) but high
        # enough that healthy jobs merely starved by the 8x spinner on
        # a 1-core host rarely breach it — collateral quarantines spawn
        # replacement sessions and drag the test out.
        policy = StragglerPolicy(threshold=3.0, consecutive=2,
                                 min_observations=2, speculation_factor=3.0,
                                 window=8)

        # The DES side of the differential: a uniform limplock dilates
        # the predicted node time by exactly the degradation factor, so
        # the deterministic policy automaton must flag after exactly
        # `consecutive` degraded observations.
        ratio = predict_limplock_ratio(_machine(), cfg, grid.shape,
                                       self.FACTOR)
        assert ratio == pytest.approx(self.FACTOR, rel=1e-6)
        predicted = predict_detection_latency(ratio, policy)
        assert predicted == policy.consecutive == 2

        with Service(workers=2, max_sessions=2, batch_limit=1,
                     monitor=True, straggler=policy) as svc:
            mon = svc.monitor
            futures = []
            seed = [0]

            def feed(k: int = 1) -> None:
                for _ in range(k):
                    f = random_field(grid.shape,
                                     np.random.default_rng(1000 + seed[0]))
                    seed[0] += 1
                    futures.append(svc.submit(grid, f, cfg, topology=topo,
                                              backend="procmpi"))

            # Calibration: warm both sessions and give the detector its
            # healthy fleet reference.
            feed(6)
            for fut in list(futures):
                fut.result(timeout=300)
            assert svc.stats.sessions_created == 2
            assert mon.detector.deadline() is not None

            # Fault injection: limplock one warm session.  The pool's
            # LRU hands the oldest idle session out first, so it keeps
            # drawing jobs while the queue has work.
            idle = svc._sessions._idle
            assert len(idle) == 2
            slow_sid = idle[0].sid
            idle[0].slowdown = self.FACTOR
            slow_worker = f"session-{slow_sid}"

            spec_keys = set()
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                # Keep queue pressure so the slow session keeps drawing
                # work, but bound the total so the final drain stays
                # cheap even on a pathologically slow run.
                if len(svc._queue) < 2 and seed[0] < 40:
                    feed(1)
                mon.sample()  # probe: gauges, quarantine, speculation
                with svc._lock:
                    spec_keys |= {k for k, e in svc._inflight.items()
                                  if e.speculated}
                if (slow_worker in mon.detector.degraded()
                        and svc._sessions.is_quarantined(slow_sid)
                        and spec_keys):
                    break
                time.sleep(0.05)

            # Detection: flagged, and in exactly the DES-predicted
            # number of degraded observations.
            assert slow_worker in mon.detector.degraded(), (
                f"limplocked {slow_worker} never flagged; scores="
                f"{mon.detector.scores()}")
            score = next(s for s in mon.detector.scores()
                         if s.worker == slow_worker)
            assert score.flagged_after == predicted
            assert score.ratio > policy.threshold

            # Quarantine: the flagged session is barred from reuse.
            assert svc._sessions.is_quarantined(slow_sid)

            # Speculation: at least one stuck job was re-queued.
            assert spec_keys, "no in-flight job was ever speculated"

            results = [fut.result(timeout=300) for fut in futures]
            assert len(results) == len(futures)
            st = svc.stats
            assert st.failed == 0
            # On a loaded 1-core host the 8x spinner starves the other
            # workers too, so a healthy session can be collaterally
            # flagged and quarantined; only the limplocked one is
            # asserted by identity (above and below), the fleet-wide
            # counts are lower bounds.
            assert st.sessions_quarantined >= 1
            assert st.speculated >= 1

            # Bit-identical first-completion-wins: a speculated job's
            # settled result equals the same job run directly on the
            # other distributed transport (procmpi ≡ simmpi bits).
            spec_futs = [f for f in futures
                         if f.job.content_key() in spec_keys]
            assert spec_futs
            fut = spec_futs[0]
            ref = repro.solve(fut.job.grid, fut.job.field, fut.job.config,
                              topology=topo, backend="simmpi")
            assert np.array_equal(fut.result(timeout=0).field, ref.field)

        # Health reflects the verdict after the fact.
        health = svc.health()
        assert health["status"] == "closed"
        assert slow_sid in health["sessions"]["quarantined_sids"]
        flagged = [s["worker"] for s in health["stragglers"] if s["flagged"]]
        assert slow_worker in flagged
