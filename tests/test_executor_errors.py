"""Executor failure modes: deadlocks, bad parameters, trapezoid actives."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Grid3D, PipelineConfig, RelaxedSpec, ScheduleDeadlock
from repro.core.executor import PipelineExecutor
from repro.core.parameters import BarrierSpec
from repro.grid import Box, random_field
from repro.kernels import jacobi7, reference_sweeps

RNG = np.random.default_rng(9)


class TestParameterValidation:
    def test_bad_order(self):
        grid = Grid3D((8, 4, 4))
        cfg = PipelineConfig(block_size=(2, 8, 8))
        with pytest.raises(ValueError, match="unknown order"):
            PipelineExecutor(grid, np.zeros(grid.shape), cfg, jacobi7(),
                             order="alphabetical")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(teams=0)
        with pytest.raises(ValueError):
            PipelineConfig(updates_per_thread=0)
        with pytest.raises(ValueError):
            PipelineConfig(passes=0)
        with pytest.raises(ValueError):
            PipelineConfig(storage="hologram")
        with pytest.raises(ValueError):
            PipelineConfig(block_size=(0, 4, 4))

    def test_stage_helpers(self):
        cfg = PipelineConfig(teams=2, threads_per_team=3,
                             updates_per_thread=2, block_size=(2, 9, 9))
        assert cfg.n_stages == 6
        assert cfg.updates_per_pass == 12
        assert cfg.stage_team(4) == 1
        assert cfg.is_team_front(3) and not cfg.is_team_front(4)
        assert cfg.is_team_rear(5) and not cfg.is_team_rear(4)
        assert list(cfg.stage_updates(1)) == [3, 4]
        with pytest.raises(IndexError):
            cfg.stage_team(6)


class TestDeadlockDetection:
    def test_equal_window_progresses(self):
        # d_l == d_u is legal (rigid lockstep), not a deadlock.
        grid = Grid3D((10, 4, 4))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=3,
                             updates_per_thread=1, block_size=(2, 8, 8),
                             sync=RelaxedSpec(2, 2))
        ex = PipelineExecutor(grid, field, cfg, jacobi7())
        out = ex.run()
        ref = reference_sweeps(grid, field, cfg.total_updates)
        np.testing.assert_allclose(out, ref, atol=1e-13)

    def test_empty_window_rejected_at_spec(self):
        with pytest.raises(ValueError):
            RelaxedSpec(3, 2)


class TestTrapezoidActives:
    def test_shrinking_active_matches_regional_reference(self):
        # Emulate one rank's trapezoid: active shrinks from the full
        # domain toward an inner core, exactly like the multi-halo update.
        grid = Grid3D((12, 8, 8))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=1, block_size=(3, 8, 8),
                             sync=RelaxedSpec(1, 2))
        h = cfg.updates_per_pass
        core = Box((2, 2, 2), (10, 6, 6))

        def active(level):
            u = (level - 1) % h + 1
            return core.grow(h - u)

        ex = PipelineExecutor(grid, field, cfg, jacobi7(), active_fn=active)
        ex.run_pass(0)
        got = ex.storage.extract_region(core, h)

        # Regional reference: shrink the swept region by one layer/update.
        from repro.kernels.reference import reference_sweep_region
        cur = grid.padded(field)
        nxt = cur.copy()
        for s in range(1, h + 1):
            r = core.grow(h - s).intersect(grid.domain)
            reference_sweep_region(cur, nxt, r.lo, r.hi)
            cur, nxt = nxt, cur
        np.testing.assert_allclose(got, cur[core.slices((1, 1, 1))],
                                   atol=1e-13)

    def test_active_outside_domain_is_clipped(self):
        grid = Grid3D((8, 4, 4))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=1,
                             updates_per_thread=1, block_size=(2, 4, 4))
        ex = PipelineExecutor(grid, field, cfg, jacobi7(),
                              active_fn=lambda lvl: Box((-5, -5, -5), (50, 50, 50)))
        out = ex.run()
        ref = reference_sweeps(grid, field, 1)
        np.testing.assert_allclose(out, ref, atol=1e-13)


class TestStats:
    def test_counts_consistent(self):
        grid = Grid3D((12, 4, 4))
        field = random_field(grid.shape, RNG)
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=2, block_size=(3, 4, 4),
                             sync=BarrierSpec(), passes=2)
        ex = PipelineExecutor(grid, field, cfg, jacobi7())
        ex.run()
        st = ex.stats
        n_blocks = ex.decomp.n_traversal_blocks
        assert st.block_ops == cfg.passes * cfg.n_stages * n_blocks
        assert sum(st.per_stage_blocks) == st.block_ops
        # Total cell updates = interior cells x total levels advanced.
        assert st.cells_updated == grid.ncells * cfg.total_updates

    def test_mlups_helper(self):
        from repro.core.executor import ExecutionStats
        s = ExecutionStats(cells_updated=2_000_000)
        assert s.mlups_equivalent(2.0) == pytest.approx(1.0)
        assert np.isnan(s.mlups_equivalent(0.0))
