"""Tests for the shift-aware block decomposition (repro.grid.blocks)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.blocks import BlockDecomposition, block_count
from repro.grid.region import Box, boxes_partition


class TestBlockCount:
    def test_exact_division(self):
        assert block_count(12, 4) == 3

    def test_remainder(self):
        assert block_count(13, 4) == 4

    def test_block_larger_than_extent(self):
        assert block_count(3, 100) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_count(10, 0)


class TestGeometry:
    def make(self, shape=(16, 8, 8), block=(4, 100, 100), max_shift=3):
        return BlockDecomposition(Box.from_shape(shape), block, max_shift)

    def test_tiled_dims_slab(self):
        d = self.make()
        assert d.tiled_dims == (0,)
        assert d.shift_vec == (1, 0, 0)

    def test_tiled_dims_2d(self):
        d = BlockDecomposition(Box.from_shape((16, 16, 8)), (4, 4, 100), 3)
        assert d.tiled_dims == (0, 1)
        assert d.shift_vec == (1, 1, 0)

    def test_extension(self):
        d = self.make(shape=(16, 8, 8), block=(4, 100, 100), max_shift=3)
        # ceil((16+3)/4) = 5 blocks along z, 1 along y/x.
        assert d.extended_counts == (5, 1, 1)
        assert d.base_counts == (4, 1, 1)
        assert d.n_traversal_blocks == 5

    def test_no_extension_without_shift(self):
        d = self.make(max_shift=0)
        assert d.extended_counts == d.base_counts

    def test_block_index_roundtrip(self):
        d = BlockDecomposition(Box.from_shape((8, 8, 8)), (4, 4, 4), 2)
        c = d.extended_counts
        for idx in range(d.n_traversal_blocks):
            k = d.block_index(idx)
            lin = (k[0] * c[1] + k[1]) * c[2] + k[2]
            assert lin == idx
        with pytest.raises(IndexError):
            d.block_index(d.n_traversal_blocks)

    def test_region_clipping(self):
        d = self.make()
        r = d.region(0, 3)
        assert r == Box((0, 0, 0), (1, 8, 8))  # [0-3,4-3) clipped -> [0,1)
        r_last = d.region(4, 3)
        assert r_last == Box((13, 0, 0), (16, 8, 8))

    def test_region_rejects_bad_shift(self):
        d = self.make(max_shift=3)
        with pytest.raises(ValueError):
            d.region(0, 4)
        with pytest.raises(ValueError):
            d.region(0, -1)

    def test_mirror_region(self):
        d = self.make()
        fwd = d.region(0, 0)
        mir = d.region(0, 0, mirror=True)
        assert mir == Box((12, 0, 0), (16, 8, 8))
        assert fwd.ncells == mir.ncells

    def test_block_bytes(self):
        d = BlockDecomposition(Box.from_shape((16, 8, 8)), (4, 8, 8), 0)
        assert d.block_bytes() == 4 * 8 * 8 * 8
        assert d.block_bytes(arrays=2) == 2 * 4 * 8 * 8 * 8

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            BlockDecomposition(Box.empty(), (2, 2, 2), 0)


class TestCoverageProperties:
    @given(
        n=st.integers(4, 30),
        b=st.integers(1, 8),
        max_shift=st.integers(0, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_levels_partition_domain_1d(self, n, b, max_shift):
        dom = Box.from_shape((n, 3, 3))
        d = BlockDecomposition(dom, (b, 100, 100), max_shift)
        for shift in range(max_shift + 1):
            regions = d.level_regions(shift)
            assert boxes_partition(regions, dom), (n, b, shift)

    @given(
        nz=st.integers(4, 14),
        ny=st.integers(4, 14),
        bz=st.integers(1, 5),
        by=st.integers(1, 5),
        max_shift=st.integers(0, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_levels_partition_domain_2d(self, nz, ny, bz, by, max_shift):
        dom = Box.from_shape((nz, ny, 3))
        d = BlockDecomposition(dom, (bz, by, 100), max_shift)
        for shift in range(max_shift + 1):
            assert boxes_partition(d.level_regions(shift), dom)

    @given(
        n=st.integers(4, 20),
        b=st.integers(1, 6),
        max_shift=st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_mirror_levels_partition_domain(self, n, b, max_shift):
        dom = Box.from_shape((n, 3, 3))
        d = BlockDecomposition(dom, (b, 100, 100), max_shift)
        for shift in range(max_shift + 1):
            assert boxes_partition(d.level_regions(shift, mirror=True), dom)
