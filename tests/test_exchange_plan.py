"""Unit tests for the ghost-cell-expansion exchange geometry (Fig. 4)."""

from __future__ import annotations

import pytest

from repro.dist.decomp import CartesianDecomposition
from repro.dist.exchange import exchange_plan
from repro.grid.region import Box


def plan_for(rank, shape=(12, 12, 12), grid=(2, 2, 2), h=2):
    d = CartesianDecomposition(shape, grid, h)
    return d, d.geometry(rank), exchange_plan(d, d.geometry(rank))


class TestPlanGeometry:
    def test_interior_rank_has_six_exchanges(self):
        d = CartesianDecomposition((18, 18, 18), (3, 3, 3), 2)
        geo = d.geometry(13)  # centre rank of 3x3x3
        plan = exchange_plan(d, geo)
        assert len(plan) == 6

    def test_corner_rank_has_three(self):
        d, geo, plan = plan_for(0)
        assert len(plan) == 3
        assert all(side == 1 for (_, side, _, _, _) in plan)

    def test_send_box_inside_core_along_dim(self):
        d, geo, plan = plan_for(0)
        for (dim, side, peer, send, recv) in plan:
            assert send.lo[dim] >= geo.core.lo[dim]
            assert send.hi[dim] <= geo.core.hi[dim]
            assert send.hi[dim] - send.lo[dim] == d.halo

    def test_recv_box_outside_core(self):
        d, geo, plan = plan_for(0)
        for (dim, side, peer, send, recv) in plan:
            assert recv.intersect(geo.core).is_empty

    def test_send_recv_shapes_match_between_peers(self):
        d = CartesianDecomposition((12, 12, 12), (2, 2, 2), 2)
        for rank in range(d.n_ranks):
            geo = d.geometry(rank)
            for (dim, side, peer, send, recv) in exchange_plan(d, geo):
                peer_plan = exchange_plan(d, d.geometry(peer))
                # The peer's send on the opposite side must equal our recv.
                match = [s for (dd, ss, pp, s, _) in peer_plan
                         if dd == dim and ss == -side and pp == rank]
                assert len(match) == 1
                assert match[0] == recv

    def test_later_dims_span_expanded_extent(self):
        d, geo, plan = plan_for(0, grid=(2, 2, 2), h=2)
        # Phase-2 (x) messages span the stored (ghost-extended) z/y extents.
        for (dim, side, peer, send, recv) in plan:
            if dim == 2:
                assert send.lo[0] == geo.stored.lo[0]
                assert send.hi[0] == geo.stored.hi[0]
                assert send.lo[1] == geo.stored.lo[1]

    def test_earlier_dims_span_core_extent(self):
        d, geo, plan = plan_for(0, grid=(2, 2, 2), h=2)
        for (dim, side, peer, send, recv) in plan:
            if dim == 0:
                assert send.lo[1] == geo.core.lo[1]
                assert send.hi[1] == geo.core.hi[1]

    def test_thin_core_rejected(self):
        d = CartesianDecomposition((8, 8, 8), (4, 1, 1), 3)
        with pytest.raises(ValueError, match="at least h cells"):
            exchange_plan(d, d.geometry(0))

    def test_single_rank_empty_plan(self):
        d = CartesianDecomposition((8, 8, 8), (1, 1, 1), 2)
        assert exchange_plan(d, d.geometry(0)) == []
