"""The multiprocess rail: ProcComm semantics, rings, lifecycle, spawn.

Every rank function is module-level so the same tests run under the
``fork`` and ``spawn`` start methods (CI exercises both via
``REPRO_PROCMPI_START``).
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.dist.procmpi import (
    ProcComm,
    ProcMPIError,
    default_start_method,
    run_procs,
)
from repro.dist.shm import ShmPool, attach_array, live_segments


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = live_segments()
    yield
    after = live_segments()
    if before is not None:
        assert after == before


# -- rank functions (module-level: picklable under spawn) --------------------

def _ring_fn(comm, rank):
    data = np.array([float(rank)])
    nxt = (rank + 1) % comm.size
    prev = (rank - 1) % comm.size
    got = comm.sendrecv(nxt, data, prev)
    return float(got[0])


def _gather_fn(comm, rank):
    return comm.gather(rank * 10)


def _allreduce_fn(comm, rank):
    return comm.allreduce_max(float(rank))


def _return_unpicklable_fn(comm, rank):
    return lambda: rank  # lambdas never pickle


def _barrier_fn(comm, rank):
    for _ in range(3):
        comm.barrier()
    return rank


def _copy_on_send_fn(comm, rank):
    if rank == 0:
        a = np.ones(4)
        comm.send(1, a)
        a[:] = 99.0
        return None
    return float(comm.recv(0).sum())


def _ordered_fn(comm, rank):
    if rank == 0:
        for i in range(8):
            comm.send(1, np.full(3, float(i)))
        return None
    return [float(comm.recv(0)[0]) for _ in range(8)]


def _mixed_payload_fn(comm, rank):
    # Arrays ride the ring; dicts and oversized arrays fall back to
    # pickled envelopes — order must still hold across both paths.
    if rank == 0:
        comm.send(1, np.arange(3, dtype=np.float64))
        comm.send(1, {"tag": "meta", "value": 7})
        comm.send(1, np.arange(100, dtype=np.float64))  # exceeds the ring slot
        return None
    a = comm.recv(0)
    b = comm.recv(0)
    c = comm.recv(0)
    return (float(a.sum()), b["value"], float(c.sum()))


def _object_array_fn(comm, rank):
    # An object-dtype ndarray small enough for the ring slot must take
    # the pickle fallback: its nbytes are pointer sizes, not payload.
    if rank == 0:
        comm.send(1, np.array([{"a": 1}, None], dtype=object))
        return None
    got = comm.recv(0)
    return got[0]["a"]


def _self_send_fn(comm, rank):
    comm.send(rank, 1.0)


def _root_cause_bad_peer_fn(comm, rank):
    # Rank 2's bad-peer ProcMPIError is the root cause; ranks 0 and 1
    # block and are released with abort-tagged ProcMPIErrors.
    if rank == 2:
        comm.recv(5)
    else:
        comm.recv(2)


def _bad_peer_fn(comm, rank):
    comm.recv(comm.size + 3)


def _mutate_shared_fn(comm, rank, handle):
    with attach_array(handle) as arr:
        arr[rank] = rank + 1.0
    comm.barrier()
    return rank


class TestProcCommSemantics:
    def test_ring_pass(self):
        assert run_procs(4, _ring_fn, timeout=60.0) == [3.0, 0.0, 1.0, 2.0]

    def test_single_rank(self):
        assert run_procs(1, _gather_fn, timeout=60.0) == [[0]]

    def test_gather(self):
        out = run_procs(3, _gather_fn, timeout=60.0)
        assert out[0] == [0, 10, 20]
        assert out[1] is None and out[2] is None

    def test_allreduce_max(self):
        assert run_procs(3, _allreduce_fn, timeout=60.0) == [2.0, 2.0, 2.0]

    def test_barrier_rounds(self):
        assert run_procs(3, _barrier_fn, timeout=60.0) == [0, 1, 2]

    def test_send_is_copy_on_send(self):
        assert run_procs(2, _copy_on_send_fn, timeout=60.0)[1] == 4.0

    def test_source_ordered_delivery(self):
        out = run_procs(2, _ordered_fn, timeout=60.0)
        assert out[1] == [float(i) for i in range(8)]

    def test_ring_transport_with_flow_control(self):
        # 8 messages through a 2-slot ring: wraps the slots four times
        # and forces the sender to block on the semaphore.
        pair_bytes = {(0, 1): 3 * 8}
        out = run_procs(2, _ordered_fn, timeout=60.0, pair_bytes=pair_bytes,
                        slots=2)
        assert out[1] == [float(i) for i in range(8)]

    def test_mixed_ring_and_pickle_payloads(self):
        out = run_procs(2, _mixed_payload_fn, timeout=60.0,
                        pair_bytes={(0, 1): 3 * 8})
        assert out[1] == (3.0, 7, float(np.arange(100).sum()))

    def test_object_dtype_arrays_bypass_the_ring(self):
        out = run_procs(2, _object_array_fn, timeout=60.0,
                        pair_bytes={(0, 1): 64})
        assert out[1] == 1

    def test_self_messaging_rejected(self):
        with pytest.raises(ProcMPIError, match="self-messaging"):
            run_procs(2, _self_send_fn, timeout=30.0)

    def test_bad_peer_rejected(self):
        with pytest.raises(ProcMPIError, match="outside world"):
            run_procs(2, _bad_peer_fn, timeout=30.0)

    def test_root_cause_preferred_over_abort_releases(self):
        # The released peers (ranks 0, 1) fail first in rank order; the
        # re-raise must still surface rank 2's actual failure, not the
        # 'aborted: another rank failed' noise it caused.
        with pytest.raises(ProcMPIError, match="outside world"):
            run_procs(3, _root_cause_bad_peer_fn, timeout=30.0)


class TestSharedMemoryFields:
    def test_ranks_mutate_one_shared_array(self):
        with ShmPool() as pool:
            handle, arr = pool.create_array((4,), np.float64)
            run_procs(4, _mutate_shared_fn, args=(handle,), timeout=60.0)
            assert arr.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_pool_cleanup_is_idempotent(self):
        pool = ShmPool()
        pool.create_array((8,), np.float64)
        pool.create_block(128)
        pool.cleanup()
        pool.cleanup()
        segs = live_segments()
        assert segs is None or segs == []


class TestDriver:
    def test_needs_at_least_one_rank(self):
        with pytest.raises(ValueError, match="at least one rank"):
            run_procs(0, _ring_fn)

    def test_needs_at_least_one_slot(self):
        with pytest.raises(ValueError, match="ring slot"):
            run_procs(2, _ring_fn, slots=0)

    def test_bad_ring_pair_rejected(self):
        with pytest.raises(ValueError, match="bad ring pair"):
            run_procs(2, _ring_fn, pair_bytes={(0, 5): 64})

    def test_unknown_start_method(self):
        with pytest.raises(ProcMPIError, match="start method"):
            run_procs(2, _ring_fn, start_method="teleport")

    def test_default_start_method_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCMPI_START", "spawn")
        assert default_start_method() == "spawn"
        monkeypatch.delenv("REPRO_PROCMPI_START")
        assert default_start_method() in mp.get_all_start_methods()

    def test_spawn_smoke(self):
        # Explicit spawn regardless of the session default: exercises
        # pickling of the rank function and the links.
        out = run_procs(2, _ring_fn, timeout=90.0, start_method="spawn")
        assert out == [1.0, 0.0]

    def test_spawn_rejects_unpicklable_fn(self):
        closure = lambda comm, rank: rank  # noqa: E731 — deliberately local
        with pytest.raises(ProcMPIError, match="pickle"):
            run_procs(2, closure, start_method="spawn")

    def test_fork_rejects_unpicklable_fn_instead_of_hanging(self):
        # Jobs reach the persistent rank processes through a queue that
        # pickles under every start method; an unchecked closure would
        # be dropped by the queue feeder and wedge the world forever.
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("no fork on this platform")
        closure = lambda comm, rank: rank  # noqa: E731 — deliberately local
        with pytest.raises(ProcMPIError, match="pickle"):
            run_procs(2, closure, start_method="fork")

    def test_unpicklable_return_value_fails_instead_of_hanging(self):
        # Same trap on the way back: the rank pre-pickles its return
        # value, so an unpicklable result is a reported job failure,
        # not a message silently dropped by the queue feeder.
        with pytest.raises(Exception, match="(?i)pickle"):
            run_procs(2, _return_unpicklable_fn, timeout=30.0)

    def test_no_zombie_processes_after_runs(self):
        run_procs(3, _barrier_fn, timeout=60.0)
        assert mp.active_children() == []
