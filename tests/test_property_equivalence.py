"""Property-based equivalence: random configurations and interleavings.

Hypothesis drives the pipelined executor through randomly drawn pipeline
shapes, block sizes, sync windows, storage schemes and interleaving seeds;
every run must (a) equal the reference sweeps bit-for-bit at double
precision tolerance and (b) keep the time-level surface within the
one-cell skew bound at completion of every pass (checked inside storage on
every access anyway — an exception is a failure).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Grid3D, PipelineConfig, RelaxedSpec, BarrierSpec, run_pipelined
from repro.core.executor import PipelineExecutor
from repro.core.schedule import check_skew
from repro.grid import random_field
from repro.kernels import jacobi7, reference_sweeps


@st.composite
def pipeline_cases(draw):
    nz = draw(st.integers(6, 18))
    ny = draw(st.integers(3, 8))
    nx = draw(st.integers(3, 8))
    teams = draw(st.integers(1, 2))
    t = draw(st.integers(1, 3))
    T = draw(st.integers(1, 2))
    bz = draw(st.integers(1, 5))
    storage = draw(st.sampled_from(["twogrid", "compressed"]))
    passes = draw(st.integers(1, 2))
    if draw(st.booleans()):
        dl = draw(st.integers(1, 2))
        du = draw(st.integers(dl, dl + 4))
        dt = draw(st.integers(0, 3))
        sync = RelaxedSpec(dl, du, dt)
    else:
        sync = BarrierSpec()
    order = draw(st.sampled_from(["round_robin", "random", "front_first",
                                  "rear_first"]))
    seed = draw(st.integers(0, 2**16))
    return (nz, ny, nx), teams, t, T, bz, storage, passes, sync, order, seed


@given(pipeline_cases())
@settings(max_examples=40, deadline=None)
def test_random_config_matches_reference(case):
    shape, teams, t, T, bz, storage, passes, sync, order, seed = case
    grid = Grid3D(shape)
    field = random_field(shape, np.random.default_rng(seed))
    cfg = PipelineConfig(teams=teams, threads_per_team=t,
                         updates_per_thread=T,
                         block_size=(bz, 1_000, 1_000),
                         sync=sync, storage=storage, passes=passes)
    res = run_pipelined(grid, field, cfg, order=order,
                        rng=np.random.default_rng(seed + 1))
    ref = reference_sweeps(grid, field, cfg.total_updates)
    np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-12)


@given(
    nz=st.integers(8, 16),
    t=st.integers(2, 4),
    bz=st.integers(1, 4),
    du=st.integers(1, 5),
    seed=st.integers(0, 999),
)
@settings(max_examples=25, deadline=None)
def test_skew_bound_holds_midrun(nz, t, bz, du, seed):
    """Interrupt execution after every block op and check the skew bound."""
    grid = Grid3D((nz, 4, 4))
    field = random_field(grid.shape, np.random.default_rng(seed))
    cfg = PipelineConfig(teams=1, threads_per_team=t, updates_per_thread=1,
                         block_size=(bz, 100, 100), sync=RelaxedSpec(1, du))
    ex = PipelineExecutor(grid, field, cfg, jacobi7(), order="random",
                          rng=np.random.default_rng(seed))

    orig = ex._execute_block

    def instrumented(pass_idx, stage, idx):
        orig(pass_idx, stage, idx)
        check_skew(ex.storage.levels, ex.decomp.shift_vec, max_skew=1)

    ex._execute_block = instrumented  # type: ignore[method-assign]
    ex.run()
    ref = reference_sweeps(grid, field, cfg.total_updates)
    np.testing.assert_allclose(ex.storage.extract(cfg.total_updates), ref,
                               rtol=0, atol=1e-12)


@given(
    ny=st.integers(6, 12),
    by=st.integers(2, 4),
    seed=st.integers(0, 99),
)
@settings(max_examples=15, deadline=None)
def test_2d_tiling_with_sufficient_distance(ny, by, seed):
    """Blocks tiled in z AND y: legality needs a larger d_l (row stride).

    The paper notes the minimum distance "is one block, but it may be
    larger"; with lexicographic traversal over two tiled dims the safe
    distance grows to a full block row, which
    ``schedule.traversal_neighbors_gap`` computes.  With d_l at least that
    gap, equivalence must hold.
    """
    from repro.core.schedule import make_decomposition, traversal_neighbors_gap

    grid = Grid3D((10, ny, 4))
    field = random_field(grid.shape, np.random.default_rng(seed))
    probe_cfg = PipelineConfig(teams=1, threads_per_team=2,
                               updates_per_thread=1,
                               block_size=(3, by, 100))
    decomp = make_decomposition(grid.domain, probe_cfg)
    gap = traversal_neighbors_gap(decomp)
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=1,
                         block_size=(3, by, 100),
                         sync=RelaxedSpec(d_l=gap, d_u=gap + 3))
    res = run_pipelined(grid, field, cfg, order="front_first")
    ref = reference_sweeps(grid, field, cfg.total_updates)
    np.testing.assert_allclose(res.field, ref, rtol=0, atol=1e-12)
