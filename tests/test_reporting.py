"""Unit coverage for the ASCII reporting helpers (repro.bench.reporting)."""

import math

from repro.bench import banner, format_series, format_table, ratio


class TestBanner:
    def test_three_lines_with_bars(self):
        text = banner("Hello")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0] == "=" * 78
        assert lines[1] == "Hello"
        assert lines[2] == lines[0]

    def test_custom_width(self):
        assert banner("t", width=10).splitlines()[0] == "=" * 10


class TestFormatTable:
    def test_header_separator_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["h"], [["x"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678]], floatfmt="10.1f")
        assert "1234.6" in text
        assert "1234.5678" not in text

    def test_numeric_cells_right_aligned_text_left(self):
        text = format_table(["name", "value"],
                            [["longtextcell", 1.0], ["b", 123456.0]])
        data_rows = text.splitlines()[2:]
        # Numbers end at the column edge; text starts at it.
        assert data_rows[0].startswith("longtextcell")
        assert data_rows[1].rstrip().endswith("123456.0")

    def test_column_width_tracks_widest_cell(self):
        text = format_table(["h"], [["wider-than-header"]])
        header, sep = text.splitlines()[:2]
        assert len(sep) == len("wider-than-header")

    def test_non_float_cells_pass_through(self):
        text = format_table(["a", "b"], [[17, "x"]])
        assert "17" in text and "x" in text


class TestFormatSeries:
    def test_header_names_axes(self):
        text = format_series("socket", [(1, 1.5)], xlabel="nodes",
                             ylabel="GLUP/s")
        assert text.splitlines()[0] == "socket  (nodes -> GLUP/s)"

    def test_points_formatted(self):
        text = format_series("s", [(0, 0.123456), (10, 2.0)])
        lines = text.splitlines()
        assert lines[1].split() == ["0", "0.123"]
        assert lines[2].split() == ["10", "2.000"]

    def test_custom_floatfmt(self):
        text = format_series("s", [(1, 3.14159)], floatfmt=".1f")
        assert "3.1" in text and "3.14" not in text


class TestRatio:
    def test_plain_division(self):
        assert ratio(3.0, 2.0) == 1.5

    def test_zero_base_is_nan_not_error(self):
        assert math.isnan(ratio(1.0, 0.0))

    def test_zero_numerator(self):
        assert ratio(0.0, 2.0) == 0.0
