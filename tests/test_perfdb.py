"""The measured-performance database and engine="auto" selection.

Pins the contract of :mod:`repro.perf.db` and everything wired to it:

* deterministic ranking and best-pick from injected measurements;
  stable fallback to the static default engine on an empty database
  or an unknown host;
* save/load round-trip, schema refusal, BENCH-document ingest;
* the generation counter: fresh calibration data invalidates the
  serve autoconf memo (the staleness regression test);
* ``engine="auto"`` through ``repro.solve`` (eager) and the service
  (late-bound at execution), with cache purity across engines pinned
  by event counters;
* ``repro.autotune(perf_db=...)`` reordering engine points by measured
  factors; the cost model's engine-aware throughput term;
* a real ``calibrate()`` smoke over the registered engines.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.engine import DEFAULT_ENGINE, available_engines
from repro.grid import random_field
from repro.perf.db import (
    DB_SCHEMA,
    PerfDB,
    PerfDBError,
    calibrate,
    default_db,
    host_fingerprint,
    perfdb_generation,
    resolve_auto_engine,
    size_class,
)

HOST = "pin-host-8c"


def _cfg(**kw) -> PipelineConfig:
    base = dict(teams=1, threads_per_team=2, updates_per_thread=2,
                block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    base.update(kw)
    return PipelineConfig(**base)


def _problem(shape=(12, 10, 11)):
    grid = Grid3D(shape)
    return grid, random_field(grid.shape, np.random.default_rng(7))


@pytest.fixture
def clean_default_db():
    """Run against a clean process-wide db; restore emptiness after."""
    from repro.serve.autoconf import clear_auto_cache

    db = default_db()
    db.clear()
    clear_auto_cache()
    try:
        yield db
    finally:
        db.clear()
        clear_auto_cache()


# ---------------------------------------------------------------------------
# Core database behaviour
# ---------------------------------------------------------------------------

class TestPerfDB:
    def test_ranking_is_deterministic_and_measured_first(self):
        db = PerfDB()
        db.record("a", "jacobi", "twogrid", "medium", 300.0, host=HOST)
        db.record("b", "jacobi", "twogrid", "medium", 900.0, host=HOST)
        db.record("c", "jacobi", "twogrid", "medium", 600.0, host=HOST)
        ranked = db.rank(["a", "x", "b", "y", "c"], "jacobi", "twogrid",
                         "medium", host=HOST)
        # Measured engines by throughput; unmeasured keep given order.
        assert ranked == ["b", "c", "a", "x", "y"]

    def test_record_keeps_the_max_and_counts_samples(self):
        db = PerfDB()
        db.record("e", "jacobi", "twogrid", "small", 100.0, host=HOST)
        db.record("e", "jacobi", "twogrid", "small", 80.0, host=HOST)
        db.record("e", "jacobi", "twogrid", "small", 120.0, host=HOST)
        assert db.lookup("e", "jacobi", "twogrid", "small",
                         host=HOST) == 120.0
        (row,) = db.to_document()["measurements"]
        assert row["samples"] == 3

    def test_best_falls_back_to_default_when_unmeasured(self):
        db = PerfDB()
        assert db.best(["x", "y"], "jacobi", "twogrid", "large",
                       host=HOST, default="numpy") == "numpy"
        db.record("y", "jacobi", "twogrid", "large", 5.0, host=HOST)
        assert db.best(["x", "y"], "jacobi", "twogrid", "large",
                       host=HOST, default="numpy") == "y"
        # A different (unknown) host still sees the static default.
        assert db.best(["x", "y"], "jacobi", "twogrid", "large",
                       host="other-host", default="numpy") == "numpy"

    def test_factor_neutral_unless_both_sides_measured(self):
        db = PerfDB()
        assert db.factor("e", "jacobi", "twogrid", "small",
                         baseline="numpy", host=HOST) == 1.0
        db.record("e", "jacobi", "twogrid", "small", 400.0, host=HOST)
        assert db.factor("e", "jacobi", "twogrid", "small",
                         baseline="numpy", host=HOST) == 1.0
        db.record("numpy", "jacobi", "twogrid", "small", 100.0, host=HOST)
        assert db.factor("e", "jacobi", "twogrid", "small",
                         baseline="numpy", host=HOST) == 4.0

    def test_generation_bumps_on_record_load_clear(self):
        db = PerfDB()
        g0 = db.generation
        db.record("e", "jacobi", "twogrid", "small", 1.0, host=HOST)
        g1 = db.generation
        assert g1 > g0
        db.clear()
        assert db.generation > g1

    def test_save_load_round_trip(self, tmp_path):
        db = PerfDB()
        db.record("e", "jacobi", "compressed", "medium", 7.5, host=HOST)
        path = tmp_path / "perfdb.json"
        db.save(path)
        other = PerfDB()
        assert other.load(path) == 1
        assert other.to_document() == db.to_document()
        assert other.to_document()["schema"] == DB_SCHEMA

    def test_incompatible_schema_is_refused(self):
        db = PerfDB()
        with pytest.raises(PerfDBError, match="schema"):
            db.load_document({"schema": "repro.perfdb/99",
                              "measurements": []})
        with pytest.raises(PerfDBError):
            db.load_document({"schema": DB_SCHEMA,
                              "measurements": [{"engine": "e"}]})

    def test_rejects_bad_size_class_and_rate(self):
        db = PerfDB()
        with pytest.raises(PerfDBError, match="size class"):
            db.record("e", "jacobi", "twogrid", "huge", 1.0, host=HOST)
        with pytest.raises(PerfDBError, match="throughput"):
            db.record("e", "jacobi", "twogrid", "small", 0.0, host=HOST)

    def test_ingest_bench_document(self):
        doc = {"records": [
            {"scenario": "solve_shared_blocked@quick", "kind": "solver",
             "params": {"engine": "blocked", "storage": "twogrid",
                        "shape": [48, 48, 48]},
             "metrics": {"mcups": {"value": 42.0}}},
            # No engine param: skipped.
            {"scenario": "solve_shared@quick", "kind": "solver",
             "params": {"shape": [48, 48, 48]},
             "metrics": {"mcups": {"value": 50.0}}},
        ]}
        db = PerfDB()
        assert db.ingest_document(doc, host=HOST) == 1
        assert db.lookup("blocked", "jacobi", "twogrid",
                         size_class((48, 48, 48)), host=HOST) == 42.0

    def test_size_class_buckets(self):
        assert size_class((8, 8, 8)) == "small"
        assert size_class((48, 48, 48)) == "medium"
        assert size_class((200, 200, 200)) == "large"

    def test_host_fingerprint_is_stable_here(self):
        assert host_fingerprint() == host_fingerprint()
        assert host_fingerprint()


# ---------------------------------------------------------------------------
# resolve_auto_engine: the engine="auto" decision function
# ---------------------------------------------------------------------------

class TestResolveAutoEngine:
    def test_empty_db_resolves_to_static_default(self):
        assert resolve_auto_engine("twogrid", (32, 32, 32),
                                   db=PerfDB()) == DEFAULT_ENGINE

    def test_unknown_host_resolves_to_static_default(self):
        db = PerfDB()
        db.record("blocked", "jacobi", "twogrid", "medium", 1000.0,
                  host="somewhere-else")
        assert resolve_auto_engine("twogrid", (48, 48, 48),
                                   db=db) == DEFAULT_ENGINE

    def test_measured_best_wins_deterministically(self):
        db = PerfDB()
        db.record("blocked", "jacobi", "twogrid", "medium", 500.0)
        db.record("inplace", "jacobi", "twogrid", "medium", 300.0)
        db.record(DEFAULT_ENGINE, "jacobi", "twogrid", "medium", 100.0)
        for _ in range(3):
            assert resolve_auto_engine("twogrid",
                                       (48, 48, 48), db=db) == "blocked"

    def test_unregistered_candidates_are_skipped(self):
        db = PerfDB()
        db.record("numba-deep", "jacobi", "twogrid", "medium", 9000.0)
        engines = ["numpy", "blocked", "numba", "numba-deep"]
        got = resolve_auto_engine("twogrid", (48, 48, 48),
                                  engines=engines, db=db)
        if "numba-deep" in available_engines():
            assert got == "numba-deep"
        else:
            assert got == DEFAULT_ENGINE

    def test_measurements_for_other_storage_do_not_leak(self):
        db = PerfDB()
        db.record("blocked", "jacobi", "compressed", "medium", 1000.0)
        assert resolve_auto_engine("twogrid", (48, 48, 48),
                                   db=db) == DEFAULT_ENGINE


# ---------------------------------------------------------------------------
# engine="auto" through solve and the service
# ---------------------------------------------------------------------------

class TestAutoThroughApi:
    def test_solve_auto_resolves_and_stays_bit_identical(
            self, clean_default_db):
        grid, field = _problem()
        ref = solve(grid, field, _cfg())
        got = solve(grid, field, _cfg(), engine="auto")
        assert got.config.engine == DEFAULT_ENGINE  # empty db
        clean_default_db.record("blocked", "jacobi", "twogrid",
                                size_class(grid.shape), 500.0)
        clean_default_db.record(DEFAULT_ENGINE, "jacobi", "twogrid",
                                size_class(grid.shape), 100.0)
        got2 = solve(grid, field, _cfg(), engine="auto")
        assert got2.config.engine == "blocked"
        assert np.array_equal(got.field, ref.field)
        assert np.array_equal(got2.field, ref.field)

    def test_service_binds_auto_engine_at_execution(self, clean_default_db):
        from repro.serve import Service

        grid, field = _problem()
        with Service(workers=0) as svc:
            f = svc.submit(grid, field, _cfg(), engine="auto")
            # Calibration data lands while the job is queued: the late
            # binding must see it.
            clean_default_db.record("blocked", "jacobi", "twogrid",
                                    size_class(grid.shape), 500.0)
            clean_default_db.record(DEFAULT_ENGINE, "jacobi", "twogrid",
                                    size_class(grid.shape), 100.0)
            svc.drain()
            res = f.result(timeout=0)
            assert svc.stats.auto_engine_bound == 1
        assert np.array_equal(res.field, solve(grid, field, _cfg()).field)

    def test_auto_engine_cache_purity(self, clean_default_db):
        """Auto and every concrete engine share one cache entry: after
        the first solve, zero further backend invocations."""
        from repro.serve import Service

        clean_default_db.record("blocked", "jacobi", "twogrid",
                                "small", 500.0)
        grid, field = _problem()
        with Service(workers=0) as svc:
            cold = svc.submit(grid, field, _cfg(), engine="auto")
            svc.drain()
            cold.result(timeout=0)
            assert svc.stats.backend_solves == 1
            warm = [svc.submit(grid, field, _cfg(), engine=e)
                    for e in list(available_engines()) + ["auto"]]
            assert all(w.cache_hit for w in warm)
            assert svc.stats.backend_solves == 1

    def test_concrete_engine_with_auto_config_still_rejected(self):
        grid, field = _problem()
        with pytest.raises(ValueError, match="concrete engine"):
            repro.submit(grid, field, "auto", engine="blocked")

    def test_auto_engine_with_auto_config_is_accepted(
            self, clean_default_db):
        from repro.serve import Service

        grid, field = _problem()
        with Service(workers=0) as svc:
            f = svc.submit(grid, field, "auto", engine="auto")
            svc.drain()
            assert f.result(timeout=0).config.engine in available_engines()


# ---------------------------------------------------------------------------
# The autoconf memo: generation-keyed, so fresh data changes decisions
# ---------------------------------------------------------------------------

class TestAutoconfStaleness:
    def test_new_measurements_invalidate_the_memo(self, clean_default_db):
        """The regression this PR fixes: auto_config memoised per
        geometry, so calibration arriving later was silently ignored."""
        from repro.serve.autoconf import auto_config

        grid, _ = _problem()
        first = auto_config(grid)
        assert first.engine == DEFAULT_ENGINE
        cls = size_class(grid.shape)
        clean_default_db.record("blocked", "jacobi", first.storage,
                                cls, 500.0)
        clean_default_db.record(DEFAULT_ENGINE, "jacobi", first.storage,
                                cls, 100.0)
        second = auto_config(grid)
        assert second.engine == "blocked"
        # And back again once the default engine measures fastest.
        clean_default_db.record(DEFAULT_ENGINE, "jacobi", first.storage,
                                cls, 900.0)
        third = auto_config(grid)
        assert third.engine == DEFAULT_ENGINE

    def test_same_generation_memoises(self, clean_default_db):
        from repro.serve.autoconf import auto_config

        grid, _ = _problem()
        assert auto_config(grid) is auto_config(grid)
        assert perfdb_generation() == perfdb_generation()


# ---------------------------------------------------------------------------
# Autotune and cost-model integration
# ---------------------------------------------------------------------------

class TestMeasuredAutotune:
    def test_perf_db_breaks_the_engine_tie(self):
        from repro.machine.presets import nehalem_ep

        db = PerfDB()
        shape = (120, 120, 120)
        cls = size_class(shape)
        for storage in ("twogrid", "compressed"):
            db.record("numpy", "jacobi", storage, cls, 100.0)
            db.record("blocked", "jacobi", storage, cls, 300.0)
        kw = dict(shape=shape, bx_values=(60,), bz_values=(10,),
                  T_values=(2,), du_values=(4,),
                  engines=("numpy", "blocked"))
        plain = repro.autotune(nehalem_ep(), **kw)
        tuned = repro.autotune(nehalem_ep(), perf_db=db, **kw)
        # Without data: stable order keeps numpy (given first) on top
        # of each tied pair.  With data: blocked leads at 3x.
        assert plain[0].config.engine == "numpy"
        assert tuned[0].config.engine == "blocked"
        pairs = {(r.config.engine, r.config.storage): r.mlups
                 for r in tuned}
        for storage in ("twogrid", "compressed"):
            assert pairs[("blocked", storage)] == pytest.approx(
                3.0 * pairs[("numpy", storage)])

    def test_cost_model_engine_terms(self):
        from repro.machine.presets import nehalem_ep
        from repro.sim.costmodel import engine_factor, engine_throughput

        db = PerfDB()
        assert engine_factor("blocked", db=db) == 1.0
        m = nehalem_ep()
        assert engine_throughput(m, "blocked", db=db) is m
        db.record("blocked", "jacobi", "twogrid", "large", 600.0)
        db.record("numpy", "jacobi", "twogrid", "large", 200.0)
        assert engine_factor("blocked", db=db) == 3.0
        m2 = engine_throughput(m, "blocked", db=db)
        assert m2.core_mlups == pytest.approx(3.0 * m.core_mlups)
        # Everything that is a machine property stays untouched.
        assert m2.mem_bw_socket == m.mem_bw_socket
        assert m2.caches == m.caches


# ---------------------------------------------------------------------------
# Calibration: real microbenchmarks over the registered engines
# ---------------------------------------------------------------------------

class TestCalibrate:
    def test_quick_calibration_measures_every_registered_engine(self):
        db = PerfDB()
        results = calibrate(storages=("twogrid",), quick=True, db=db)
        assert set(results) == {(e, "twogrid")
                                for e in available_engines()}
        assert all(v > 0 for v in results.values())
        # Every size class is seeded so auto resolves at any shape.
        for cls in ("small", "medium", "large"):
            assert db.lookup(DEFAULT_ENGINE, "jacobi", "twogrid",
                             cls) is not None
        # After calibration, auto resolves to something measured here.
        assert resolve_auto_engine("twogrid", (48, 48, 48),
                                   db=db) in available_engines()

    def test_injected_timer_gives_deterministic_rates(self):
        ticks = iter(float(i) for i in range(10000))
        db = PerfDB()
        results = calibrate(engines=("numpy",), storages=("twogrid",),
                            quick=True, db=db,
                            timer=lambda: next(ticks))
        ((_, mlups),) = results.items()
        # dt == 1.0 tick per repeat: rate is cells/1e6, exactly.
        cells = db.lookup("numpy", "jacobi", "twogrid", "small") * 1e6
        assert mlups == pytest.approx(cells / 1e6)

    def test_cli_calibrate_round_trips_a_db_file(self, tmp_path, capsys):
        from repro.perf.cli import main

        path = tmp_path / "perfdb.json"
        assert main(["calibrate", "--quick", "--engines", "numpy",
                     "--storages", "twogrid", "--db", str(path)]) == 0
        assert path.exists()
        db = PerfDB()
        assert db.load(path) >= 3  # one rate x three size classes
        out = capsys.readouterr().out
        assert "engine='auto' now resolves" in out
        # Second run loads the existing file before calibrating.
        assert main(["calibrate", "--quick", "--engines", "numpy",
                     "--storages", "twogrid", "--db", str(path)]) == 0
        assert "loaded" in capsys.readouterr().out
        default_db().clear()  # CLI calibrates into the process-wide db
