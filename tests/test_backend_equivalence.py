"""Cross-backend differential battery: shared ≡ simmpi ≡ procmpi.

The correctness story of the ``procmpi`` backend is carried entirely by
differential testing: every backend runs the *same* problem and the
fields must agree — bit-identically on a ``(1, 1, 1)`` topology and
between the two distributed transports on any topology (same per-rank
body, same exchange plan, different transport), and to 1e-13 against
the shared backend and the plain-Jacobi reference on multi-rank
topologies (rank trapezoids reorder no arithmetic, but assembling from
different subdomain layouts is only guaranteed to floating-point
accuracy).

The battery sweeps seeded randomized grids × kernels (7-point Jacobi,
embedded-2-D and anisotropic star stencils, plus the D2Q9 LBM kernel
run *through* both transports) × topologies, and checks that the
``SolveResult`` metadata — levels advanced, halo, rank count, exchange
byte/message counters, executor update counts — is consistent across
backends.

All rank functions are module-level so the battery also runs under the
``spawn`` start method (CI sets ``REPRO_PROCMPI_START=spawn``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
from repro.dist.procmpi import run_procs
from repro.dist.simmpi import run_ranks
from repro.dist.solver import distributed_jacobi_sweeps
from repro.grid import DirichletBoundary, random_field
from repro.kernels import reference_sweeps
from repro.kernels.jacobi import anisotropic_jacobi, jacobi5_2d, jacobi7
from repro.kernels.lbm import D2Q9

STENCILS = {
    "jacobi7": jacobi7,
    "jacobi5_2d": jacobi5_2d,
    "anisotropic": lambda: anisotropic_jacobi(1.0, 2.0, 0.5),
}

TOPOLOGIES = [(2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 1)]


def small_config(passes: int = 2) -> PipelineConfig:
    return PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                          block_size=(3, 64, 64), sync=RelaxedSpec(1, 2),
                          passes=passes)


def run_all_backends(grid, field, cfg, topology, stencil=None):
    shared = solve(grid, field, cfg, stencil=stencil)
    sim = solve(grid, field, cfg, topology=topology, backend="simmpi",
                stencil=stencil)
    proc = solve(grid, field, cfg, topology=topology, backend="procmpi",
                 stencil=stencil)
    return shared, sim, proc


def assert_metadata_consistent(shared, sim, proc, cfg, topology):
    n_ranks = topology[0] * topology[1] * topology[2]
    for res in (shared, sim, proc):
        assert res.levels_advanced == cfg.total_updates
        assert res.config is cfg
    assert shared.backend == "shared" and shared.n_ranks == 1
    assert sim.backend == "simmpi" and proc.backend == "procmpi"
    for res in (sim, proc):
        assert res.topology == topology
        assert res.n_ranks == n_ranks
        assert res.halo == cfg.updates_per_pass
    # The transports share one exchange plan and one executor schedule:
    # every deterministic counter must match exactly.
    assert sim.bytes_exchanged == proc.bytes_exchanged
    assert sim.messages == proc.messages
    assert sim.stats.cells_updated == proc.stats.cells_updated
    assert sim.stats.updates == proc.stats.updates
    assert sim.stats.block_ops == proc.stats.block_ops
    if n_ranks > 1:
        assert sim.messages > 0 and sim.bytes_exchanged > 0
        # Trapezoid ghost work is redundant, so distributed runs do
        # strictly more cell updates than the shared run — except at
        # h = 1, where the trapezoid degenerates to the bare core.
        if cfg.updates_per_pass > 1:
            assert sim.stats.cells_updated > shared.stats.cells_updated
        else:
            assert sim.stats.cells_updated == shared.stats.cells_updated


class TestTrivialTopology:
    def test_all_three_bit_identical(self):
        grid = Grid3D((14, 12, 10))
        field = random_field(grid.shape, np.random.default_rng(0))
        cfg = small_config()
        shared, sim, proc = run_all_backends(grid, field, cfg, (1, 1, 1))
        assert np.array_equal(shared.field, sim.field)
        assert np.array_equal(shared.field, proc.field)


class TestKernelTopologyMatrix:
    @pytest.mark.parametrize("kernel", sorted(STENCILS))
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_three_backends_agree(self, kernel, topology):
        grid = Grid3D((16, 14, 12))
        field = random_field(grid.shape, np.random.default_rng(11))
        cfg = small_config(passes=1)
        st = STENCILS[kernel]()
        shared, sim, proc = run_all_backends(grid, field, cfg, topology,
                                             stencil=st)
        ref = reference_sweeps(grid, field, cfg.total_updates, stencil=st)
        np.testing.assert_allclose(shared.field, ref, rtol=0, atol=1e-13)
        np.testing.assert_allclose(sim.field, ref, rtol=0, atol=1e-13)
        np.testing.assert_allclose(proc.field, ref, rtol=0, atol=1e-13)
        assert np.array_equal(sim.field, proc.field)
        assert_metadata_consistent(shared, sim, proc, cfg, topology)


class TestRandomizedProblems:
    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_random_grid_and_topology(self, seed):
        rng = np.random.default_rng(1000 + seed)
        cfg = PipelineConfig(
            teams=1,
            threads_per_team=int(rng.integers(1, 3)),
            updates_per_thread=int(rng.integers(1, 3)),
            block_size=(int(rng.integers(2, 5)), 64, 64),
            sync=RelaxedSpec(1, int(rng.integers(1, 4))),
            passes=int(rng.integers(1, 3)),
        )
        h = cfg.updates_per_pass
        # Every split dimension must keep cores at least h cells wide.
        shape = tuple(int(rng.integers(max(8, 2 * h), 20)) for _ in range(3))
        topology = TOPOLOGIES[int(rng.integers(0, len(TOPOLOGIES)))]
        bc = DirichletBoundary(float(rng.normal()),
                               faces={(0, -1): float(rng.normal())})
        grid = Grid3D(shape, boundary=bc)
        field = random_field(shape, rng)
        shared, sim, proc = run_all_backends(grid, field, cfg, topology)
        ref = reference_sweeps(grid, field, cfg.total_updates)
        np.testing.assert_allclose(proc.field, ref, rtol=0, atol=1e-13)
        np.testing.assert_allclose(sim.field, ref, rtol=0, atol=1e-13)
        assert np.array_equal(sim.field, proc.field)
        assert_metadata_consistent(shared, sim, proc, cfg, topology)


class TestSweepsSolverTransports:
    @pytest.mark.parametrize("topology", [(2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_transports_bit_identical(self, topology):
        grid = Grid3D((12, 12, 12))
        field = random_field(grid.shape, np.random.default_rng(7))
        sim = distributed_jacobi_sweeps(grid, field, topology,
                                        supersteps=2, halo=2)
        proc = distributed_jacobi_sweeps(grid, field, topology,
                                         supersteps=2, halo=2,
                                         transport="procmpi")
        ref = reference_sweeps(grid, field, 4)
        assert np.array_equal(sim.field, proc.field)
        np.testing.assert_allclose(proc.field, ref, rtol=0, atol=1e-13)
        assert sim.bytes_exchanged == proc.bytes_exchanged
        assert sim.messages == proc.messages
        assert (sim.levels_advanced, sim.halo) \
            == (proc.levels_advanced, proc.halo) == (4, 2)


# -- D2Q9 LBM through both transports ---------------------------------------
#
# The LBM rail is 2-D and not domain-decomposed, so its differential
# check drives the *transports* instead: every rank advances the same
# lattice and ships its (non-trivial, float-heavy) state through the
# comm; all replicas and the inline run must agree bit-for-bit.

def _lbm_fields(steps: int) -> np.ndarray:
    lat = D2Q9((10, 8), tau=0.8, body_force=(1e-5, 0.0))
    lat.step(steps)
    s = lat.macroscopic()
    return np.stack([s.density, s.ux, s.uy])


def _lbm_rank_fn(comm, rank, steps=5):
    fields = _lbm_fields(steps)
    gathered = comm.gather(fields)
    if rank == 0:
        return np.stack(gathered)
    return None


class TestLBMDifferential:
    @pytest.mark.parametrize("runner", ["simmpi", "procmpi"])
    def test_replicated_lbm_bit_identical(self, runner):
        inline = _lbm_fields(5)
        if runner == "simmpi":
            outs = run_ranks(3, lambda comm, rank: _lbm_rank_fn(comm, rank))
        else:
            outs = run_procs(3, _lbm_rank_fn, timeout=60.0)
        stacked = outs[0]
        assert stacked.shape == (3,) + inline.shape
        for rank_fields in stacked:
            assert np.array_equal(rank_fields, inline)
