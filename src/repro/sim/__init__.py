"""Performance rail: discrete-event simulation of the blocking schemes.

``simulate_pipelined`` runs the paper's schedule against the machine
model; ``standard_jacobi_mlups`` models the streaming baseline.  Both
return MLUP/s figures that the per-figure benchmarks assemble into the
paper's plots (Fig. 3, Fig. 6 single-node inputs).
"""

from .engine import Engine, Event
from .resources import Flow, FlowResource, waterfill_rates
from .costmodel import BlockTraffic, CodeBalance
from .des_pipeline import NodeSimReport, PipelinedNodeSim, simulate_pipelined
from .baseline_sim import BaselineReport, standard_jacobi_mlups

__all__ = [
    "Engine",
    "Event",
    "Flow",
    "FlowResource",
    "waterfill_rates",
    "CodeBalance",
    "BlockTraffic",
    "NodeSimReport",
    "PipelinedNodeSim",
    "simulate_pipelined",
    "BaselineReport",
    "standard_jacobi_mlups",
]
