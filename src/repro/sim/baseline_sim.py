"""Standard (non-temporally-blocked) Jacobi node performance model.

The baseline of Sect. 1.1: spatially blocked, SIMD-vectorised, NT-store
Jacobi is purely memory-bandwidth bound once all cores of a socket are
active, so its performance follows directly from the STREAM saturation
curve — Eq. 2's ``P0 = Ms / 16 B`` with the measured-achievable
efficiency factor.  What *does* need modelling is NUMA page placement:

* ``first_touch`` (the paper's baseline): each thread's pages land on its
  own socket, both memory controllers stream in parallel;
* ``master_touch`` (the "hybrid vector mode" 1PPN pathology, Fig. 6):
  the master thread touches everything, all traffic hits one controller
  and the second socket's bandwidth is wasted — which is why the paper
  calls 1PPN standard Jacobi "clearly inferior".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine.topology import MachineSpec
from .costmodel import CodeBalance

__all__ = ["BaselineReport", "standard_jacobi_mlups"]


@dataclass(frozen=True)
class BaselineReport:
    """Performance of the standard Jacobi sweep on a node."""

    threads: int
    mlups: float
    bandwidth_used: float
    bytes_per_lup: float
    placement: str

    def describe(self) -> str:
        """One-line summary for bench output."""
        return (f"standard({self.placement}, {self.threads}t): "
                f"{self.mlups:8.1f} MLUP/s")


def standard_jacobi_mlups(
    machine: MachineSpec,
    threads: Optional[int] = None,
    nt_stores: bool = True,
    placement: str = "first_touch",
    balance: Optional[CodeBalance] = None,
) -> BaselineReport:
    """Memory-bound performance of the standard Jacobi sweep.

    ``threads`` defaults to all cores, filled socket by socket.  The
    per-socket bandwidth saturates at ``Ms`` (with the machine's stream
    efficiency) and a single stream is capped at ``Ms,1``; the compute
    rate of the cores bounds the result from above in the (rare)
    non-starved case.
    """
    if placement not in ("first_touch", "master_touch"):
        raise ValueError(f"unknown placement {placement!r}")
    bal = balance or CodeBalance.standard_jacobi(nt_stores)
    n = machine.total_cores if threads is None else int(threads)
    if not 1 <= n <= machine.total_cores:
        raise ValueError(f"threads must be in [1, {machine.total_cores}]")
    bpc = bal.mem_load_bpc + bal.mem_writeback_bpc
    eff = machine.stream_efficiency

    per_socket = [0] * machine.sockets
    for i in range(n):
        per_socket[i // machine.cores_per_socket] += 1

    if placement == "master_touch":
        # All pages on socket 0: one memory controller serves everyone.
        bw = min(n * machine.mem_bw_single, machine.mem_bw_socket) * eff
    else:
        bw = sum(
            min(k * machine.mem_bw_single, machine.mem_bw_socket) * eff
            for k in per_socket if k
        )
    mlups_bw = bw / bpc / 1e6
    mlups_compute = n * machine.core_mlups / 1e6
    mlups = min(mlups_bw, mlups_compute)
    return BaselineReport(threads=n, mlups=mlups, bandwidth_used=bw,
                          bytes_per_lup=bpc, placement=placement)
