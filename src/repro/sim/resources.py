"""Fluid bandwidth resources with max–min fair sharing and per-flow caps.

The paper's performance model lives on two facts about shared data paths:

* a socket's memory bus saturates at ``Ms`` no matter how many cores pull
  on it, and
* one core alone cannot exceed ``Ms,1 < Ms``.

:class:`FlowResource` models exactly that: concurrently active transfers
share the capacity max–min fairly, each additionally clamped to its own
cap.  Rates are recomputed whenever a flow starts or finishes (fluid
approximation); completions are scheduled on the event engine.  The same
abstraction serves the shared-cache bandwidth ``Mc`` and the inter-socket
link.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .engine import Engine, Event

__all__ = ["Flow", "FlowResource", "waterfill_rates"]

_EPS = 1e-9  # bytes; flows below this are complete


def waterfill_rates(capacity: float, caps: List[float]) -> List[float]:
    """Max–min fair rates for flows with individual caps.

    Classic progressive filling: flows whose cap is below the current fair
    share get their cap; the remainder is re-divided among the rest.  The
    returned rates satisfy ``rate_i <= cap_i`` and ``sum(rate) <=
    capacity`` with equality when the caps allow (work conservation).
    """
    n = len(caps)
    if n == 0:
        return []
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    rates = [0.0] * n
    remaining = capacity
    active = sorted(range(n), key=lambda i: caps[i])
    k = len(active)
    for pos, i in enumerate(active):
        share = remaining / (k - pos)
        r = min(caps[i], share)
        rates[i] = r
        remaining -= r
    return rates


class Flow:
    """One transfer in flight on a :class:`FlowResource`."""

    __slots__ = ("nbytes", "remaining", "cap", "on_done", "rate", "started",
                 "finished", "label")

    def __init__(self, nbytes: float, cap: float,
                 on_done: Optional[Callable[[], None]], started: float,
                 label: str = "") -> None:
        self.nbytes = nbytes
        self.remaining = nbytes
        self.cap = cap
        self.on_done = on_done
        self.rate = 0.0
        self.started = started
        self.finished: Optional[float] = None
        self.label = label


class FlowResource:
    """A shared data path (memory bus, shared cache, inter-socket link)."""

    def __init__(self, engine: Engine, capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self._flows: List[Flow] = []
        self._last_update = engine.now
        self._completion_event: Optional[Event] = None
        self.total_bytes = 0.0
        self.busy_time = 0.0

    # -- public API -------------------------------------------------------------

    def start(self, nbytes: float, cap: Optional[float] = None,
              on_done: Optional[Callable[[], None]] = None,
              label: str = "") -> Flow:
        """Begin a transfer of ``nbytes``; ``on_done`` fires at completion.

        Zero-byte transfers complete immediately (the callback still runs
        through the engine so ordering stays deterministic).
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        flow = Flow(nbytes, cap if cap is not None else self.capacity,
                    on_done, self.engine.now, label)
        if nbytes <= _EPS:
            flow.finished = self.engine.now
            if on_done is not None:
                self.engine.schedule(0.0, on_done)
            return flow
        self._advance()
        self._flows.append(flow)
        self.total_bytes += nbytes
        self._rerate()
        return flow

    @property
    def active_flows(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._flows)

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``horizon`` the resource spent moving bytes."""
        return self.busy_time / horizon if horizon > 0 else 0.0

    # -- internals ---------------------------------------------------------------

    def _advance(self) -> None:
        """Progress all flows from the last update to now."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0 and self._flows:
            for f in self._flows:
                f.remaining -= f.rate * dt
            if any(f.rate > 0 for f in self._flows):
                self.busy_time += dt
        self._last_update = now

    def _rerate(self) -> None:
        """Recompute fair rates and (re)schedule the next completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._flows:
            return
        rates = waterfill_rates(self.capacity, [f.cap for f in self._flows])
        for f, r in zip(self._flows, rates):
            f.rate = r
        horizon = min(
            (f.remaining / f.rate) for f in self._flows if f.rate > 0
        )
        self._completion_event = self.engine.schedule(max(horizon, 0.0),
                                                      self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance()
        # A flow is complete when its residue is negligible in bytes OR
        # when finishing it would advance time by less than one ulp of the
        # current clock — otherwise the rescheduled horizon underflows the
        # float timeline and the event loop spins at a frozen timestamp.
        tol_t = self.engine.now * 1e-12 + 1e-18
        done = [f for f in self._flows
                if f.remaining <= max(_EPS * max(1.0, f.nbytes),
                                      f.rate * tol_t)]
        self._flows = [f for f in self._flows if f not in done]
        for f in done:
            f.remaining = 0.0
            f.rate = 0.0
            f.finished = self.engine.now
        self._rerate()
        for f in done:
            if f.on_done is not None:
                f.on_done()
