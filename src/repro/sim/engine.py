"""Minimal discrete-event engine for the performance rail.

A binary-heap event queue with cancellable handles — deliberately tiny,
fully deterministic (ties broken by insertion order), and fast enough for
the tens of thousands of block operations a full Fig. 3 run schedules.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

__all__ = ["Event", "Engine"]


class Event:
    """Handle to a scheduled callback; ``cancel()`` prevents execution."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Drop the event; safe to call multiple times or after firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Deterministic event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Event] = []
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self._now - 1e-15:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = Event(max(time, self._now), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events (optionally up to virtual time ``until``).

        Returns the final virtual time.  ``max_events`` is a runaway guard;
        hitting it raises rather than spinning forever.
        """
        processed = 0
        while self._heap:
            ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and ev.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = ev.time
            ev.callback()
            self.events_processed += 1
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events}); "
                    "likely a livelock in the simulation"
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)
