"""Traffic accounting per block operation (code balance bookkeeping).

The paper's traffic arithmetic (Sect. 1.1, 1.4):

* a stencil update touches 8 bytes of load and 8 bytes of store per cell
  on the slowest path it reaches;
* the baseline with spatial blocking and non-temporal stores moves 16
  B/cell over the memory bus (24 with the read-for-ownership the NT
  stores avoid);
* under pipelined blocking, a block is loaded from memory once per team
  sweep (16 B/cell incl. the eventual writeback) while all other updates
  run 16 B/cell through the shared cache — Eq. 4's ``16/Ms,1 +
  2(tT−1)·8/Mc``;
* the compressed grid keeps one array instead of two, halving the cache
  footprint per block ("saving nearly half the memory") — which is what
  allows larger ``d_u`` before blocks fall out of cache;
* non-temporal stores are "unnecessary and even counterproductive" under
  temporal blocking because the block lives in cache anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..machine.topology import CacheLevel, MachineSpec

__all__ = ["CodeBalance", "BlockTraffic", "limplock", "engine_factor",
           "engine_throughput"]

W = 8  # bytes per double-precision word


@dataclass(frozen=True)
class CodeBalance:
    """Bytes moved per cell for one scheme, split by data path.

    ``mem_load_bpc``/``mem_writeback_bpc`` are paid once per block per team
    sweep (by the front thread / at eviction); ``cache_bpc_update`` is paid
    per in-cache update; ``resident_arrays`` determines the block's cache
    footprint (two-grid: 2, compressed: 1).
    """

    name: str
    mem_load_bpc: float
    mem_writeback_bpc: float
    cache_bpc_update: float
    resident_arrays: int
    #: Memory bytes paid on *every* update (NT-store leakage: the stores
    #: bypass the cache, so the next update's loads come from memory too).
    mem_bpc_update: float = 0.0

    @staticmethod
    def standard_jacobi(nt_stores: bool = True) -> "CodeBalance":
        """Baseline streaming sweep: 16 B/cell (24 without NT stores)."""
        load = 1 * W + (0 if nt_stores else 1 * W)  # A read (+ B RFO)
        return CodeBalance(
            name=f"standard(nt={nt_stores})",
            mem_load_bpc=float(load),
            mem_writeback_bpc=float(W),
            cache_bpc_update=0.0,
            resident_arrays=2,
        )

    @staticmethod
    def pipelined(storage: str = "compressed", nt_stores: bool = False) -> "CodeBalance":
        """Pipelined temporal blocking; NT stores default *off* (Sect. 1.3).

        Enabling NT stores here is the paper's "counterproductive" case:
        every in-cache update's stores would bypass the cache and pay
        memory bandwidth, which the ablation benchmark demonstrates.
        """
        arrays = 1 if storage == "compressed" else 2
        cache_bpc = 2 * W  # one load + one store stream per update
        if nt_stores:
            # Stores bypass the cache entirely: every update writes its
            # results to memory AND the following update must load them
            # back from memory — temporal blocking is defeated.
            return CodeBalance(
                name=f"pipelined({storage},nt=True)",
                mem_load_bpc=float(W),
                mem_writeback_bpc=0.0,       # stores already went to memory
                cache_bpc_update=0.0,
                resident_arrays=arrays,
                mem_bpc_update=float(2 * W),
            )
        return CodeBalance(
            name=f"pipelined({storage})",
            mem_load_bpc=float(W),
            mem_writeback_bpc=float(W),
            cache_bpc_update=float(cache_bpc),
            resident_arrays=arrays,
        )

    def block_footprint(self, cells: int) -> int:
        """Cache bytes a block occupies (all resident arrays)."""
        return cells * W * self.resident_arrays


@dataclass(frozen=True)
class BlockTraffic:
    """Resolved traffic of one block operation for one pipeline stage."""

    cells: int
    updates: int
    mem_load_bytes: float      # from memory (front thread, or reload on miss)
    remote_bytes: float        # from the previous team's cache
    cache_bytes: float         # through the shared cache
    mem_store_bytes: float     # immediate NT-store leakage (not writeback)
    compute_cells: int         # cells * updates

    @property
    def total_mem_bytes(self) -> float:
        """Memory-bus bytes excluding deferred writebacks."""
        return self.mem_load_bytes + self.mem_store_bytes


def limplock(machine: MachineSpec, factor: float) -> MachineSpec:
    """``machine`` degraded node-wide by ``factor`` (a limplocked worker).

    Limplock is the degraded-but-alive failure mode: a node that still
    answers every liveness probe while running uniformly slower —
    thermal throttling, a resetting link, a neighbour saturating the
    memory bus.  Modelled as every service *rate* divided by ``factor``
    and every fixed *latency* multiplied by it, which time-dilates the
    whole DES schedule uniformly: the event order is preserved and the
    predicted total time scales by ``factor`` up to rounding.  That
    exactness is what lets the straggler detector's fault-injection
    battery pin observed detection latency against
    :func:`repro.obs.monitor.predict_limplock_ratio`.
    """
    if factor < 1.0:
        raise ValueError("limplock factor must be >= 1 (1 = healthy)")
    f = float(factor)
    caches = tuple(
        CacheLevel(name=c.name, size=c.size, shared_by=c.shared_by,
                   bandwidth=c.bandwidth / f)
        for c in machine.caches)
    return replace(
        machine,
        name=f"{machine.name} (limplock x{f:g})",
        clock_hz=machine.clock_hz / f,
        caches=caches,
        mem_bw_socket=machine.mem_bw_socket / f,
        mem_bw_single=machine.mem_bw_single / f,
        remote_bw=machine.remote_bw / f,
        core_mlups=machine.core_mlups / f,
        coherence_latency_intra=machine.coherence_latency_intra * f,
        coherence_latency_inter=machine.coherence_latency_inter * f,
        block_overhead=machine.block_overhead * f,
    )


def engine_factor(engine: str,
                  storage: str = "twogrid",
                  shape=(300, 300, 300),
                  kernel: str = "jacobi",
                  db=None) -> float:
    """Measured core-throughput ratio of ``engine`` vs the default.

    The DES and the analytic model treat the inner kernel as a machine
    constant (``core_mlups``), which is exactly the term the
    kernel-execution engine moves.  This looks the ratio up in the
    measured perf database (:mod:`repro.perf.db`) for this host,
    kernel, storage scheme and the grid's size class; the neutral 1.0
    comes back whenever either side is unmeasured, so uncalibrated
    hosts keep the historical single-engine model.
    """
    from ..perf.db import default_db, size_class  # late: avoid cycle

    d = db if db is not None else default_db()
    return d.factor(engine, kernel, storage, size_class(shape))


def engine_throughput(machine: MachineSpec, engine: str,
                      storage: str = "twogrid",
                      shape=(300, 300, 300),
                      kernel: str = "jacobi",
                      db=None) -> MachineSpec:
    """``machine`` with ``core_mlups`` rescaled to a measured engine.

    The engine changes how fast a core retires cell updates and nothing
    else — bandwidths, latencies and cache geometry are machine
    properties — so only the in-core rate moves, by the measured
    :func:`engine_factor`.  With no measurement the spec comes back
    unchanged (factor 1.0).
    """
    f = engine_factor(engine, storage=storage, shape=shape,
                      kernel=kernel, db=db)
    if f == 1.0:
        return machine
    return replace(
        machine,
        name=f"{machine.name} ({engine} x{f:.2f})",
        core_mlups=machine.core_mlups * f,
    )
