"""Discrete-event simulation of pipelined temporal blocking on a node.

This is the performance rail's centrepiece: it executes the *same*
schedule as the functional executor — same block traversal, same
region shifts, same sync conditions (barrier rounds or Eq. 3 counters) —
but instead of touching arrays it pushes the implied traffic through the
machine model:

* the team's front thread loads each block from memory (or from the
  previous team's cache over the inter-socket link),
* every in-cache update streams ``16 B/cell`` through the shared cache,
* completed blocks are written back when the LRU cache evicts them,
* the per-socket memory buses are max–min-fair fluid resources saturating
  at ``Ms`` with a per-stream cap ``Ms,1``,
* barrier rounds convoy on the slowest thread and pay the topology-aware
  barrier cost; relaxed pipelines with ``d_u > d_l`` absorb service-time
  jitter and overlap transfers with computation ("automatic overlapping
  of data transfer and calculation", Sect. 1.3), while lockstep pipelines
  expose them,
* a too-large ``d_u`` lets blocks fall out of the shared cache before the
  rear thread arrives, triggering reloads (the coupling of ``d_u`` and
  block size, Sect. 1.5).

Absolute numbers are calibrated against the paper's published machine
constants; EXPERIMENTS.md records paper-vs-simulated values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import BarrierSpec, PipelineConfig, RelaxedSpec
from ..core.schedule import make_decomposition
from ..core.sync import make_policy
from ..grid.region import Box
from ..machine.cache import SharedCacheModel
from ..machine.topology import MachineSpec
from .costmodel import CodeBalance, W
from .engine import Engine
from .resources import FlowResource

__all__ = ["NodeSimReport", "PipelinedNodeSim", "simulate_pipelined"]


@dataclass
class NodeSimReport:
    """Outcome of one simulated pipelined run."""

    total_time: float
    cell_updates: int
    mlups: float
    mem_bytes: float
    remote_bytes: float
    cache_bytes: float
    writeback_bytes: float
    cache_hits: int
    cache_misses: int
    reloads: int
    barrier_time: float
    idle_time: Dict[int, float] = field(default_factory=dict)
    config_label: str = ""

    def describe(self) -> str:
        """One-line summary for bench output."""
        return (
            f"{self.config_label}: {self.mlups:8.1f} MLUP/s "
            f"(mem {self.mem_bytes / 1e9:.2f} GB, reloads {self.reloads})"
        )


class PipelinedNodeSim:
    """Event-driven simulation of one pipelined run on a machine model.

    Parameters
    ----------
    machine:
        Node description (see :mod:`repro.machine.presets`).
    config:
        Pipeline parameters; ``teams`` must not exceed the number of
        sockets (one team per cache group, the paper's design point).
    shape:
        Interior problem size ``(nz, ny, nx)``.
    balance:
        Code-balance bookkeeping; defaults to the pipelined scheme implied
        by ``config.storage``.
    placement:
        Page placement: ``"round_robin"`` (the paper's choice for
        pipelined blocking), ``"first_touch"`` (per-thread locality — used
        by the *standard* baseline), or ``"master_touch"`` (everything on
        socket 0, the hybrid-vector-mode pathology).
    seed:
        Jitter RNG seed; runs are reproducible.
    """

    def __init__(
        self,
        machine: MachineSpec,
        config: PipelineConfig,
        shape: Sequence[int],
        balance: Optional[CodeBalance] = None,
        placement: str = "round_robin",
        seed: int = 0,
    ) -> None:
        if config.teams > machine.sockets:
            raise ValueError(
                f"{config.teams} teams need {config.teams} cache groups; "
                f"machine has {machine.sockets}"
            )
        if config.threads_per_team > machine.cores_per_socket:
            raise ValueError("team does not fit in a cache group")
        if placement not in ("round_robin", "first_touch", "master_touch"):
            raise ValueError(f"unknown placement {placement!r}")
        self.machine = machine
        self.config = config
        self.shape = tuple(int(s) for s in shape)
        self.balance = balance or CodeBalance.pipelined(config.storage)
        self.placement = placement
        self.rng = np.random.default_rng(seed)

        self.decomp = make_decomposition(Box.from_shape(self.shape), config)
        self.policy = make_policy(config)

        self.engine = Engine()
        eff = machine.stream_efficiency
        self.mem_bus = [FlowResource(self.engine, machine.mem_bw_socket * eff,
                                     f"mem{s}") for s in range(machine.sockets)]
        self.l3_bus = [FlowResource(self.engine,
                                    machine.shared_cache.bandwidth,
                                    f"l3-{s}") for s in range(machine.sockets)]
        self.link = FlowResource(self.engine, machine.remote_bw, "qpi")
        self.caches = [SharedCacheModel(machine.shared_cache.size)
                       for _ in range(machine.sockets)]

        P = config.n_stages
        self.counters = [0] * P
        self.finished = [False] * P
        self.idle = [True] * P
        self.idle_since = [0.0] * P
        self.idle_time = [0.0] * P
        self.pending_parts = [0] * P
        self.pass_idx = 0
        self.n_passes = 1

        # statistics
        self.cell_updates = 0
        self.mem_bytes = 0.0
        self.remote_bytes = 0.0
        self.cache_bytes = 0.0
        self.writeback_bytes = 0.0
        self.reloads = 0
        self.barrier_time = 0.0

        spec = config.sync
        self.is_barrier = isinstance(spec, BarrierSpec)
        # Transfer/compute overlap: a loose window (d_u > d_l) lets the
        # pipeline stream ahead so hardware prefetch hides transfers; the
        # barrier version also streams within its round (threads only sync
        # at block boundaries).  True lockstep (d_u == d_l) stalls threads
        # mid-stream on the neighbor counters, defeating prefetch — its
        # transfers are exposed.  This reproduces the ~80 % lockstep
        # penalty of Fig. 3 (right) alongside the barrier bar of Fig. 3
        # (left); see DESIGN.md §2.
        self.loose = self.is_barrier or (
            isinstance(spec, RelaxedSpec) and spec.d_u > spec.d_l)
        self._seen_blocks = [set() for _ in range(machine.sockets)]

    # -- stage/socket mapping ----------------------------------------------------

    def stage_socket(self, stage: int) -> int:
        """Socket hosting a pipeline stage (one team per socket)."""
        return self.config.stage_team(stage)

    # -- main entry ---------------------------------------------------------------

    def run(self, passes: int = 1) -> NodeSimReport:
        """Simulate ``passes`` pipeline passes and return the report."""
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.n_passes = passes
        self._start_pass()
        self.engine.run()
        # Flush dirty blocks: account the final writebacks.
        for s, cache in enumerate(self.caches):
            for ev in cache.flush():
                if ev.dirty_bytes:
                    self._writeback(ev.dirty_bytes)
        self.engine.run()
        total = self.engine.now
        mlups = self.cell_updates / total / 1e6 if total > 0 else float("nan")
        return NodeSimReport(
            total_time=total,
            cell_updates=self.cell_updates,
            mlups=mlups,
            mem_bytes=self.mem_bytes,
            remote_bytes=self.remote_bytes,
            cache_bytes=self.cache_bytes,
            writeback_bytes=self.writeback_bytes,
            cache_hits=sum(c.hits for c in self.caches),
            cache_misses=sum(c.misses for c in self.caches),
            reloads=self.reloads,
            barrier_time=self.barrier_time,
            idle_time={s: t for s, t in enumerate(self.idle_time)},
            config_label=self.config.describe(),
        )

    # -- pass / stage control -------------------------------------------------------

    def _start_pass(self) -> None:
        P = self.config.n_stages
        self.counters = [0] * P
        self.finished = [False] * P
        for seen in self._seen_blocks:
            seen.clear()
        for s in range(P):
            self._try_start(s)

    def _try_start(self, stage: int) -> None:
        if self.finished[stage] or not self.idle[stage]:
            return
        if not self.policy.ready(stage, self.counters, self.finished):
            return
        self.idle[stage] = False
        self.idle_time[stage] += self.engine.now - self.idle_since[stage]
        self._begin_op(stage)

    def _op_done(self, stage: int) -> None:
        self.counters[stage] += 1
        self.idle[stage] = True
        self.idle_since[stage] = self.engine.now
        if self.counters[stage] == self.decomp.n_traversal_blocks:
            self.finished[stage] = True
            if all(self.finished):
                self.pass_idx += 1
                if self.pass_idx < self.n_passes:
                    self._start_pass()
                return
        # Wake self immediately; neighbors see the counter after the
        # coherence latency of the connecting path.
        self._try_start(stage)
        me = self.stage_socket(stage)
        for nb in (stage - 1, stage + 1):
            if 0 <= nb < self.config.n_stages:
                lat = self.machine.coherence_latency(me, self.stage_socket(nb))
                self.engine.schedule(lat, lambda nb=nb: self._try_start(nb))
        if self.is_barrier:
            # A barrier release is global: everyone re-evaluates.
            for s in range(self.config.n_stages):
                if s not in (stage - 1, stage, stage + 1):
                    self.engine.schedule(
                        self.machine.coherence_latency(me, self.stage_socket(s)),
                        lambda s=s: self._try_start(s))

    # -- block operation ------------------------------------------------------------

    def _begin_op(self, stage: int) -> None:
        cfg = self.config
        idx = self.counters[stage]
        shift = min(stage * cfg.updates_per_thread, self.decomp.max_shift)
        cells = self.decomp.region(idx, shift).ncells
        T = cfg.updates_per_thread
        if cells == 0:
            self.engine.schedule(self.machine.block_overhead,
                                 lambda: self._op_done(stage))
            return
        self.cell_updates += cells * T

        socket = self.stage_socket(stage)
        team = cfg.stage_team(stage)
        front = cfg.is_team_front(stage)
        bal = self.balance
        cache = self.caches[socket]
        footprint = bal.block_footprint(cells)

        mem_load = 0.0
        remote = 0.0
        cache_updates = T
        seen = self._seen_blocks[socket]
        hit, evicted = cache.touch(idx, footprint, dirty_bytes=cells * W)
        for ev in evicted:
            if ev.dirty_bytes:
                self._writeback(ev.dirty_bytes)

        if front:
            cache_updates = T - 1
            prev_cache = self.caches[self.stage_socket(stage - 1)] if team > 0 else None
            if team > 0 and prev_cache is not None and prev_cache.contains(idx):
                remote = cells * W
                prev_cache.evict(idx)  # ownership moves with the block
            else:
                mem_load = cells * bal.mem_load_bpc
                if idx in seen:
                    self.reloads += 1
        elif not hit:
            # Compulsory load if nobody on this socket touched the block
            # yet (clipped drain edges); otherwise the block fell out of
            # the shared cache (d_u too large for the block size) — the
            # paper's performance cliff.
            mem_load = cells * bal.mem_load_bpc
            if idx in seen:
                self.reloads += 1
            cache_updates = T - 1
        seen.add(idx)

        cache_b = cache_updates * cells * bal.cache_bpc_update
        mem_store = T * cells * bal.mem_bpc_update

        self.mem_bytes += mem_load + mem_store
        self.remote_bytes += remote
        self.cache_bytes += cache_b

        compute_t = T * cells / self.machine.core_mlups
        if not self.loose:
            compute_t /= self.machine.lockstep_efficiency
        sigma = self.machine.jitter_sigma
        f = float(self.rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))
        stall = max(0.0, f - 1.0) * compute_t
        overhead = self.machine.block_overhead
        if self.is_barrier:
            bcost = self.machine.barrier_cost(cfg.n_stages,
                                              min(cfg.teams, self.machine.sockets))
            overhead += bcost
            self.barrier_time += bcost

        flows: List[Tuple[FlowResource, float, float]] = []
        n_sk = self.machine.sockets
        for nbytes in (mem_load, mem_store):
            if nbytes <= 0:
                continue
            if self.placement == "round_robin":
                per = nbytes / n_sk
                cap = self.machine.mem_bw_single / n_sk
                for s in range(n_sk):
                    flows.append((self.mem_bus[s], per, cap))
                    if s != socket and n_sk > 1:
                        # Remote-socket pages transit the inter-socket
                        # link: the ccNUMA price of round-robin placement
                        # that makes one-process-per-socket (2PPN) win in
                        # Sect. 2.2.
                        flows.append((self.link, per, self.machine.remote_bw))
            elif self.placement == "first_touch":
                flows.append((self.mem_bus[socket], nbytes,
                              self.machine.mem_bw_single))
            else:  # master_touch: every page on socket 0
                flows.append((self.mem_bus[0], nbytes,
                              self.machine.mem_bw_single))
        if remote > 0:
            flows.append((self.link, remote, self.machine.remote_bw))
        if cache_b > 0:
            flows.append((self.l3_bus[socket], cache_b,
                          self.machine.shared_cache.bandwidth))

        if self.loose:
            # Transfers overlap computation: op ends when the slower of
            # (compute timer, all flows) completes.
            self.pending_parts[stage] = 1 + len(flows)
            done = lambda: self._part_done(stage)
            self.engine.schedule(compute_t + stall + overhead, done)
            for res, nbytes, cap in flows:
                res.start(nbytes, cap=cap, on_done=done)
        else:
            # Tight coupling defeats overlap/prefetch: transfers first,
            # then compute.
            def then_compute() -> None:
                self.engine.schedule(compute_t + stall + overhead,
                                     lambda: self._op_done(stage))

            if flows:
                self.pending_parts[stage] = len(flows)

                def part() -> None:
                    self.pending_parts[stage] -= 1
                    if self.pending_parts[stage] == 0:
                        then_compute()

                for res, nbytes, cap in flows:
                    res.start(nbytes, cap=cap, on_done=part)
            else:
                then_compute()

    def _part_done(self, stage: int) -> None:
        self.pending_parts[stage] -= 1
        if self.pending_parts[stage] == 0:
            self._op_done(stage)

    def _writeback(self, nbytes: float) -> None:
        self.writeback_bytes += nbytes
        n_sk = self.machine.sockets
        if self.placement == "round_robin":
            per = nbytes / n_sk
            for s in range(n_sk):
                self.mem_bus[s].start(per, cap=self.machine.mem_bw_single / n_sk)
        elif self.placement == "master_touch":
            self.mem_bus[0].start(nbytes, cap=self.machine.mem_bw_single)
        else:
            self.mem_bus[0].start(nbytes, cap=self.machine.mem_bw_single)


def simulate_pipelined(machine: MachineSpec, config: PipelineConfig,
                       shape: Sequence[int], passes: int = 1,
                       balance: Optional[CodeBalance] = None,
                       placement: str = "round_robin",
                       seed: int = 0) -> NodeSimReport:
    """Convenience wrapper: build the sim, run it, return the report."""
    sim = PipelinedNodeSim(machine, config, shape, balance=balance,
                           placement=placement, seed=seed)
    return sim.run(passes)
