"""Storage schemes: where a cell's value at time level ``u`` lives.

Two schemes from the paper:

* **Two-grid** (classic Jacobi): grids A and B written in turn; a value at
  level ``u`` lives in array ``u % 2``.  A neighbor read of level ``v`` is
  legal iff the neighbor's current level is ``v`` or ``v+1`` — one level
  higher is fine because that update wrote the *other* array.  This
  "two-buffer window" is exactly what the one-cell shift of the pipelined
  schedule guarantees, and the storage validates it on every gather.

* **Compressed grid** (Sect. 1.3): one grid; every update writes shifted by
  one cell along the tiled dimensions, alternate passes shift back,
  "saving nearly half the memory and lessening the bandwidth
  requirements".  A value of cell ``c`` at level ``v`` lives at position
  ``c + off(v)``.  The storage tracks, per position, which level last
  wrote it; a gather asserts the position still holds the requested level,
  so any schedule that would clobber live data is caught deterministically.

Both schemes patch stencil reads that fall outside the stored domain with
Dirichlet boundary values, replacing ghost-cell copies (see
:mod:`repro.grid.grid3d`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..grid.grid3d import Grid3D
from ..grid.region import Box

__all__ = ["StorageError", "TwoGridStorage", "CompressedStorage", "make_storage"]


class StorageError(RuntimeError):
    """A storage-level legality violation (illegal schedule detected)."""


class _StorageBase:
    """Shared machinery: level tracking, boundary patching, injection."""

    def __init__(self, grid: Grid3D, field: np.ndarray, validate: bool = True) -> None:
        if field.shape != grid.shape:
            raise ValueError(f"field shape {field.shape} != grid shape {grid.shape}")
        self.grid = grid
        self.domain = grid.domain
        self.validate = bool(validate)
        #: Current time level of every interior cell.
        self.levels = np.zeros(grid.shape, dtype=np.int64)

    # -- interface implemented by subclasses -------------------------------------

    def _read_inside(self, box: Box, level: int) -> np.ndarray:
        raise NotImplementedError

    def write(self, region: Box, level: int, values: np.ndarray) -> None:
        raise NotImplementedError

    def extract_region(self, box: Box, level: int) -> np.ndarray:
        raise NotImplementedError

    def inject(self, box: Box, level: int, values: np.ndarray) -> None:
        raise NotImplementedError

    def write_view(self, region: Box, level: int) -> np.ndarray:
        raise NotImplementedError

    # -- common operations ---------------------------------------------------------

    def read(self, box: Box, level: int) -> np.ndarray:
        """Values of ``box`` at time ``level`` (validated; may be a view).

        The public read entry point of the execution engines; ``box``
        must lie inside the stored domain (use :meth:`gather` for
        stencil reads that may cross the Dirichlet ring).
        """
        return self._read_inside(box, level)

    def commit_write(self, region: Box, level: int) -> None:
        """Mark a :meth:`write_view` destination as written.

        The caller must have filled the view completely; only after the
        commit do level bookkeeping (and, for the compressed grid, the
        position tracking) reflect the update.
        """
        if region.is_empty:
            return
        self.levels[region.slices()] = level

    def extract(self, level: int) -> np.ndarray:
        """The whole interior at a uniform time level."""
        return self.extract_region(self.domain, level)

    def gather(self, region: Box, off: Tuple[int, int, int], level: int) -> np.ndarray:
        """Values of the cells ``region + off`` at time ``level``.

        The part of the shifted box inside the stored domain is read from
        the scheme's arrays (with legality validation); the part outside —
        at most a one-cell slab, since ``region`` lies inside the domain
        and ``|off| = 1`` — is patched with Dirichlet values.
        """
        if region.is_empty:
            return np.empty(region.shape, dtype=self.grid.dtype)
        if self.validate and not self.domain.contains_box(region):
            raise StorageError(f"gather region {region} outside stored domain")
        nb = region.shift(off)
        inside = nb.intersect(self.domain)
        if inside == nb:
            return self._read_inside(nb, level)
        out = np.empty(nb.shape, dtype=self.grid.dtype)
        if not inside.is_empty:
            rel = tuple(slice(inside.lo[d] - nb.lo[d], inside.hi[d] - nb.lo[d])
                        for d in range(3))
            out[rel] = self._read_inside(inside, level)
        dim = next(d for d in range(3) if off[d] != 0)
        side = 1 if off[dim] > 0 else -1
        if side < 0:
            face = Box(nb.lo, tuple(
                self.domain.lo[d] if d == dim else nb.hi[d] for d in range(3)))
        else:
            face = Box(tuple(
                self.domain.hi[d] if d == dim else nb.lo[d] for d in range(3)), nb.hi)
        if not face.is_empty:
            rel = tuple(slice(face.lo[d] - nb.lo[d], face.hi[d] - nb.lo[d])
                        for d in range(3))
            out[rel] = self.grid.boundary.values_for_face(
                dim, side, face, dtype=self.grid.dtype)
        return out

    def check_traversal(self, region: Box, offsets, level: int) -> None:
        """Validate every read a fused block traversal would perform.

        Deep-JIT engines execute gather + boundary patch + write in one
        compiled region, reading the raw arrays directly — so the
        legality validation that :meth:`read`/:meth:`gather` would have
        run per offset happens here instead, up front: the centre read
        plus the in-domain part of each shifted read, with exactly the
        checks (two-buffer window, compressed-position tracking) a
        per-offset gather sequence performs.  No-op when validation is
        off or ``region`` is empty.
        """
        if not self.validate or region.is_empty:
            return
        if not self.domain.contains_box(region):
            raise StorageError(f"gather region {region} outside stored domain")
        self._read_inside(region, level)
        for off in offsets:
            inside = region.shift(off).intersect(self.domain)
            if not inside.is_empty:
                self._read_inside(inside, level)

    def raw_read_array(self, level: int) -> Tuple[np.ndarray, Tuple[int, int, int]]:
        """The backing array holding ``level`` plus its index origin.

        Deep-JIT access: returns ``(array, origin)`` such that the value
        of interior cell ``c`` at time ``level`` lives at
        ``array[c + origin]``.  Reads through this path bypass the
        legality validation — callers must run :meth:`check_traversal`
        first (and pair destination access with
        :meth:`write_view`/:meth:`commit_write` as usual).
        """
        raise NotImplementedError

    def check_uniform_level(self, box: Box, level: int) -> None:
        """Raise unless every cell of ``box`` sits at exactly ``level``."""
        sl = box.slices()
        if not bool(np.all(self.levels[sl] == level)):
            seen = np.unique(self.levels[sl])
            raise StorageError(
                f"cells in {box} expected uniformly at level {level}, "
                f"found levels {seen.tolist()}"
            )

    def _pre_write_check(self, region: Box, level: int, values: np.ndarray) -> None:
        if region.is_empty:
            return
        if values.shape != region.shape:
            raise StorageError(
                f"write values shape {values.shape} != region shape {region.shape}")
        if self.validate:
            if not self.domain.contains_box(region):
                raise StorageError(f"write region {region} outside stored domain")
            self.check_uniform_level(region, level - 1)


class TwoGridStorage(_StorageBase):
    """Separate grids A and B, written in turn (Sect. 1.1 baseline layout)."""

    n_arrays = 2

    def __init__(self, grid: Grid3D, field: np.ndarray, validate: bool = True) -> None:
        super().__init__(grid, field, validate)
        a = np.ascontiguousarray(field.astype(grid.dtype, copy=True))
        b = np.full(grid.shape, np.nan, dtype=grid.dtype)
        self._arrays = [a, b]

    def _read_inside(self, box: Box, level: int) -> np.ndarray:
        if self.validate:
            lv = self.levels[box.slices()]
            ok = np.logical_or(lv == level, lv == level + 1)
            if not bool(np.all(ok)):
                bad = np.unique(lv[~ok])
                raise StorageError(
                    f"two-buffer violation reading {box} at level {level}: "
                    f"cells present at levels {bad.tolist()} (window is "
                    f"[{level}, {level + 1}])"
                )
        return self._arrays[level % 2][box.slices()]

    def write(self, region: Box, level: int, values: np.ndarray) -> None:
        """Commit the update ``level-1 -> level`` on ``region``."""
        self._pre_write_check(region, level, values)
        if region.is_empty:
            return
        self._arrays[level % 2][region.slices()] = values
        self.levels[region.slices()] = level

    def write_view(self, region: Box, level: int) -> np.ndarray:
        """Writable destination view for the update ``level-1 -> level``.

        The in-place engine's entry point: the caller fills the view
        (which lives in the array ``level`` will occupy — the *other*
        grid, so no aliasing with level-1 reads is possible here) and
        then calls :meth:`commit_write`.  Pre-write legality checks run
        now, before any byte moves.
        """
        if self.validate and not region.is_empty:
            if not self.domain.contains_box(region):
                raise StorageError(f"write region {region} outside stored domain")
            self.check_uniform_level(region, level - 1)
        return self._arrays[level % 2][region.slices()]

    def extract_region(self, box: Box, level: int) -> np.ndarray:
        """Copy out ``box`` at a uniform ``level`` (validated)."""
        if self.validate:
            self.check_uniform_level(box, level)
        return self._arrays[level % 2][box.slices()].copy()

    def inject(self, box: Box, level: int, values: np.ndarray) -> None:
        """Overwrite ``box`` with externally produced values at ``level``.

        Used by the multi-halo exchange: ghost cells receive the neighbor
        rank's fully updated values, jumping their level forward.
        """
        if values.shape != box.shape:
            raise StorageError("inject shape mismatch")
        self._arrays[level % 2][box.slices()] = values
        self.levels[box.slices()] = level

    def raw_read_array(self, level: int) -> Tuple[np.ndarray, Tuple[int, int, int]]:
        """Array ``level % 2`` with a zero origin (cells live at their coords)."""
        return self._arrays[level % 2], (0, 0, 0)

    @property
    def array_bytes(self) -> int:
        """Bytes held by the value arrays (two full grids)."""
        return sum(a.nbytes for a in self._arrays)


class CompressedStorage(_StorageBase):
    """Single compressed grid with alternating shift direction (Sect. 1.3).

    Parameters
    ----------
    shift_vec:
        Unit vector with 1 in each shifted (tiled) dimension; comes from
        the block decomposition.
    updates_per_pass:
        ``n*t*T``; offsets accumulate to this within a pass and unwind in
        the next ("alternate team sweeps shift by (-1,-1,-1) and
        (+1,+1,+1)").
    """

    n_arrays = 1

    def __init__(self, grid: Grid3D, field: np.ndarray,
                 shift_vec: Tuple[int, int, int], updates_per_pass: int,
                 validate: bool = True) -> None:
        super().__init__(grid, field, validate)
        if updates_per_pass < 1:
            raise ValueError("updates_per_pass must be >= 1")
        if any(v not in (0, 1) for v in shift_vec) or not any(shift_vec):
            raise ValueError(f"bad shift vector {shift_vec!r}")
        self.shift_vec = tuple(int(v) for v in shift_vec)
        self.updates_per_pass = int(updates_per_pass)
        self.margin = tuple(self.updates_per_pass * v for v in self.shift_vec)
        store_shape = tuple(grid.shape[d] + self.margin[d] for d in range(3))
        self._array = np.full(store_shape, np.nan, dtype=grid.dtype)
        #: Level that last wrote each storage position (-1 = never).
        self._pos_level = np.full(store_shape, -1, dtype=np.int64)
        init_sl = self.domain.slices(self.margin)
        self._array[init_sl] = field
        self._pos_level[init_sl] = 0

    def offset_scalar(self, level: int) -> int:
        """Cumulative shift (<= 0) of level ``level`` along shifted dims."""
        if level < 0:
            raise ValueError("negative level")
        p, r = divmod(level, self.updates_per_pass)
        return -r if p % 2 == 0 else -(self.updates_per_pass - r)

    def offset_vec(self, level: int) -> Tuple[int, int, int]:
        """Per-dimension storage offset of time level ``level``."""
        o = self.offset_scalar(level)
        return tuple(o * v for v in self.shift_vec)  # type: ignore[return-value]

    def _pos_slices(self, box: Box, level: int) -> Tuple[slice, slice, slice]:
        shifted = box.shift(self.offset_vec(level))
        return shifted.slices(self.margin)

    def _read_inside(self, box: Box, level: int) -> np.ndarray:
        sl = self._pos_slices(box, level)
        if self.validate:
            pl = self._pos_level[sl]
            if not bool(np.all(pl == level)):
                bad = np.unique(pl[pl != level])
                raise StorageError(
                    f"compressed-grid violation reading {box} at level {level}: "
                    f"positions hold levels {bad.tolist()} — a later write "
                    "clobbered live data or the value was never produced"
                )
        return self._array[sl]

    def write(self, region: Box, level: int, values: np.ndarray) -> None:
        """Commit the update ``level-1 -> level``, writing shifted positions."""
        self._pre_write_check(region, level, values)
        if region.is_empty:
            return
        sl = self._pos_slices(region, level)
        self._array[sl] = values
        self._pos_level[sl] = level
        self.levels[region.slices()] = level

    def write_view(self, region: Box, level: int) -> np.ndarray:
        """Writable view of the *shifted* destination positions.

        This is the paper's actual in-place compressed-grid update: the
        view overlaps positions still holding level-1 values of other
        cells, so the caller (the in-place engine) must traverse planes
        in the direction the storage offsets move and fill the view
        only after all its reads.  :meth:`commit_write` then flips the
        position tracking, so any ordering mistake is still caught
        deterministically by the next validated read.
        """
        if self.validate and not region.is_empty:
            if not self.domain.contains_box(region):
                raise StorageError(f"write region {region} outside stored domain")
            self.check_uniform_level(region, level - 1)
        return self._array[self._pos_slices(region, level)]

    def commit_write(self, region: Box, level: int) -> None:
        if region.is_empty:
            return
        self._pos_level[self._pos_slices(region, level)] = level
        self.levels[region.slices()] = level

    def extract_region(self, box: Box, level: int) -> np.ndarray:
        """Copy out ``box`` at a uniform ``level`` from shifted positions."""
        if self.validate:
            self.check_uniform_level(box, level)
            pl = self._pos_level[self._pos_slices(box, level)]
            if not bool(np.all(pl == level)):
                raise StorageError("extract positions do not hold the requested level")
        return self._array[self._pos_slices(box, level)].copy()

    def inject(self, box: Box, level: int, values: np.ndarray) -> None:
        """Overwrite ``box`` at ``level`` (ghost updates for distributed runs)."""
        if values.shape != box.shape:
            raise StorageError("inject shape mismatch")
        sl = self._pos_slices(box, level)
        self._array[sl] = values
        self._pos_level[sl] = level
        self.levels[box.slices()] = level

    def raw_read_array(self, level: int) -> Tuple[np.ndarray, Tuple[int, int, int]]:
        """The compressed array; origin folds in the level shift and margin."""
        off = self.offset_vec(level)
        origin = tuple(off[d] + self.margin[d] for d in range(3))
        return self._array, origin  # type: ignore[return-value]

    @property
    def array_bytes(self) -> int:
        """Bytes held by the (single) value array, margin included."""
        return self._array.nbytes


def make_storage(scheme: str, grid: Grid3D, field: np.ndarray,
                 shift_vec: Tuple[int, int, int], updates_per_pass: int,
                 validate: bool = True):
    """Factory used by the pipeline front-end."""
    if scheme == "twogrid":
        return TwoGridStorage(grid, field, validate=validate)
    if scheme == "compressed":
        return CompressedStorage(grid, field, shift_vec, updates_per_pass,
                                 validate=validate)
    raise ValueError(f"unknown storage scheme {scheme!r}")
