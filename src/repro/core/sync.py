"""Synchronisation policies as readiness predicates over progress counters.

Both execution rails share these semantics:

* the *functional* executor (:mod:`repro.core.executor`) asks "which
  threads may start their next block now?" to enumerate legal
  interleavings;
* the *performance* simulator (:mod:`repro.sim.threadsim`) asks the same
  question to decide when a simulated thread unblocks.

A policy sees the per-stage progress counters ``c`` (blocks completed in
the current pass) plus which stages have finished their traversal, and
answers readiness per stage.  This mirrors the paper's volatile-counter
protocol: "only thread t_i updates its own counter c_i; all others read
its updated value by means of the standard cache coherence mechanisms".
"""

from __future__ import annotations

import threading
from typing import List, Optional, Protocol, Sequence, Tuple

from .parameters import BarrierSpec, PipelineConfig, RelaxedSpec

__all__ = ["SyncPolicy", "BarrierPolicy", "RelaxedPolicy", "make_policy",
           "waiting_stages", "CounterBoard", "SyncAborted", "SyncWaitTimeout"]


class SyncPolicy(Protocol):
    """Protocol for synchronisation policies."""

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """May ``stage`` start its next block given counters/finish flags?"""
        ...

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """Stages whose counter must change before ``stage`` becomes ready.

        Used by the event-driven simulator to know which counter updates to
        wake on, and by deadlock diagnostics.
        """
        ...


class BarrierPolicy:
    """Global barrier after each block update (Fig. 1).

    The threads run *staggered*: stage ``s`` trails stage ``s-1`` by
    exactly one block, so stage ``s`` processes its block ``k`` in global
    round ``k + s`` ("the distance is kept constant by imposing a global
    barrier across all threads after each block update", Sect. 1.3).  A
    stage is ready iff its next round equals the minimum outstanding
    round.  Within a round the block operations are mutually independent
    (each stage's reads were produced in strictly earlier rounds), so any
    intra-round execution order is legal — which the adversarial
    interleaving tests exercise.
    """

    def __init__(self, n_stages: int) -> None:
        if n_stages < 1:
            raise ValueError("need at least one stage")
        self.n_stages = n_stages

    def _round(self, stage: int, counters: Sequence[int]) -> int:
        return counters[stage] + stage

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """Ready iff this stage sits at the current barrier round."""
        rounds = [self._round(s, counters) for s in range(self.n_stages)
                  if not finished[s]]
        return self._round(stage, counters) == min(rounds)

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """All stages still working on earlier rounds."""
        me = self._round(stage, counters)
        return [s for s in range(self.n_stages)
                if not finished[s] and self._round(s, counters) < me]


class RelaxedPolicy:
    """Relaxed synchronisation, Eq. 3 of the paper.

    Thread ``i`` may start its next block iff
    ``c_{i-1} - c_i >= d_l(i)`` and ``c_i - c_{i+1} <= d_u(i)`` where the
    per-stage bounds include the team delay on team boundaries:
    ``d_l(i) = d_l + d_t`` on a team's front thread (except the overall
    front) and ``d_u(i) = d_u + d_t`` on a team's rear thread (except the
    overall rear).  The overall front/rear threads ignore the first/second
    condition respectively, and a finished predecessor counts as infinitely
    far ahead (drain waiver; see :class:`repro.core.parameters.RelaxedSpec`).
    """

    def __init__(self, config: PipelineConfig) -> None:
        spec = config.sync
        if not isinstance(spec, RelaxedSpec):
            raise TypeError("RelaxedPolicy requires a RelaxedSpec config")
        self.n_stages = config.n_stages
        self.d_l_eff: List[int] = []
        self.d_u_eff: List[int] = []
        for s in range(self.n_stages):
            dl = spec.d_l
            du = spec.d_u
            if config.is_team_front(s) and s > 0:
                dl += spec.team_delay
            if config.is_team_rear(s) and s < self.n_stages - 1:
                du += spec.team_delay
            self.d_l_eff.append(dl)
            self.d_u_eff.append(du)

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """Eq. 3 as a precondition for starting the next block."""
        if stage > 0 and not finished[stage - 1]:
            if counters[stage - 1] - counters[stage] < self.d_l_eff[stage]:
                return False
        if stage < self.n_stages - 1:
            if counters[stage] - counters[stage + 1] > self.d_u_eff[stage]:
                return False
        return True

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """The neighbor stages currently holding this stage back."""
        out: List[int] = []
        if stage > 0 and not finished[stage - 1]:
            if counters[stage - 1] - counters[stage] < self.d_l_eff[stage]:
                out.append(stage - 1)
        if stage < self.n_stages - 1:
            if counters[stage] - counters[stage + 1] > self.d_u_eff[stage]:
                out.append(stage + 1)
        return out


def waiting_stages(policy: SyncPolicy, counters: Sequence[int],
                   finished: Sequence[bool]) -> List[int]:
    """Unfinished stages the sync window blocks *right now*.

    The observability layer's view of sync-wait: on the functional rail
    a stage never sleeps (stages are simulated on one thread), so the
    per-poll count of window-blocked stages is the deterministic,
    host-independent proxy for wait time — the executor accumulates it
    into the ``sync.blocked_polls`` counter only while tracing.
    """
    return [s for s in range(len(counters))
            if not finished[s] and not policy.ready(s, counters, finished)]


def make_policy(config: PipelineConfig) -> SyncPolicy:
    """Instantiate the policy matching ``config.sync``."""
    if isinstance(config.sync, BarrierSpec):
        return BarrierPolicy(config.n_stages)
    if isinstance(config.sync, RelaxedSpec):
        return RelaxedPolicy(config)
    raise TypeError(f"unknown sync spec {config.sync!r}")


class SyncAborted(RuntimeError):
    """A peer stage failed; this stage must unwind instead of waiting."""


class SyncWaitTimeout(RuntimeError):
    """A stage waited longer than the watchdog allows (stuck schedule)."""


class CounterBoard:
    """Thread-safe progress counters behind a condition variable.

    This is the paper's volatile-counter protocol made real: one board
    per pipeline pass, one counter per stage, readiness decided by the
    same :class:`SyncPolicy` the simulated rail polls.  Where the
    simulated executor *polls* readiness inside its single-threaded
    scheduling loop (free there — the loop is the only runnable code),
    real OS threads must **sleep**: a spinning wait burns a core per
    blocked stage, and a naive "wake when my neighbor's counter
    changes" scheme has a missed-wakeup bug around the drain waiver —
    a stage can become ready because its predecessor *finished its
    traversal* (the counter never moves again), so waking on counter
    updates alone parks the successor forever.  Here every state
    change — counter advance *and* traversal finish *and* abort — goes
    through one :class:`threading.Condition` with ``notify_all``, and
    waiters re-check the policy in a loop, which is also what makes
    spurious wakeups harmless.

    Observability is preserved: :attr:`blocked_polls` counts every
    wakeup that found the window still shut (the threaded analogue of
    the simulated rail's ``sync.blocked_polls``), and
    :meth:`waiting_now` exposes the currently blocked stages through
    the module-level :func:`waiting_stages` helper.

    The board never decides *legality* — the threaded executor runs
    only schedules certified by :func:`repro.analysis.assert_legal` —
    but it still carries a watchdog timeout so a bug anywhere above it
    surfaces as :class:`SyncWaitTimeout` instead of a hung process.
    """

    def __init__(self, policy: SyncPolicy, n_stages: int, n_blocks: int,
                 timeout: Optional[float] = 120.0) -> None:
        if n_stages < 1 or n_blocks < 0:
            raise ValueError("need >= 1 stage and >= 0 blocks")
        self.policy = policy
        self.n_stages = n_stages
        self.n_blocks = n_blocks
        self.timeout = timeout
        self._cond = threading.Condition()
        self._counters = [0] * n_stages
        self._finished = [False] * n_stages
        self._blocked_polls = 0
        self._drain_blocks = 0
        self._max_gap = 0
        self._failure: Optional[BaseException] = None

    # -- the stage-thread protocol --------------------------------------------

    def wait_ready(self, stage: int) -> None:
        """Block until ``stage`` may start its next block (Eq. 3 window).

        Raises :class:`SyncAborted` if a peer stage failed while we
        waited and :class:`SyncWaitTimeout` if the watchdog fires.
        """
        with self._cond:
            while True:
                if self._failure is not None:
                    raise SyncAborted(
                        f"stage {stage}: a peer stage failed "
                        f"({type(self._failure).__name__})")
                if self.policy.ready(stage, self._counters, self._finished):
                    return
                self._blocked_polls += 1
                if any(self._finished):
                    self._drain_blocks += 1
                if not self._cond.wait(self.timeout):
                    self._failure = SyncWaitTimeout(
                        f"stage {stage} waited > {self.timeout}s "
                        f"(counters={self._counters}, "
                        f"finished={self._finished})")
                    self._cond.notify_all()
                    raise self._failure

    def advance(self, stage: int) -> int:
        """Publish one completed block; wakes every waiter.

        Marks the stage finished when its traversal completes — in the
        same critical section, so the drain waiver becomes visible to
        waiters atomically with the final counter update.
        """
        with self._cond:
            self._counters[stage] += 1
            value = self._counters[stage]
            if value >= self.n_blocks:
                self._finished[stage] = True
            gap = max(self._counters) - min(self._counters)
            if gap > self._max_gap:
                self._max_gap = gap
            self._cond.notify_all()
            return value

    def abort(self, exc: BaseException) -> None:
        """Record the first failure and wake every waiter to unwind."""
        with self._cond:
            if self._failure is None or isinstance(self._failure, SyncAborted):
                if not isinstance(exc, SyncAborted):
                    self._failure = exc
                elif self._failure is None:
                    self._failure = exc
            self._cond.notify_all()

    # -- observers ------------------------------------------------------------

    @property
    def failure(self) -> Optional[BaseException]:
        with self._cond:
            return self._failure

    @property
    def blocked_polls(self) -> int:
        """Wakeups that re-checked the window and found it still shut."""
        with self._cond:
            return self._blocked_polls

    @property
    def drain_blocks(self) -> int:
        """Blocked re-checks that happened while some stage had finished."""
        with self._cond:
            return self._drain_blocks

    @property
    def max_counter_gap(self) -> int:
        """Largest ``max(c) - min(c)`` observed at any advance."""
        with self._cond:
            return self._max_gap

    def snapshot(self) -> Tuple[List[int], List[bool]]:
        """Consistent copy of (counters, finished) for diagnostics."""
        with self._cond:
            return list(self._counters), list(self._finished)

    def waiting_now(self) -> List[int]:
        """Stages the window blocks at this instant (obs view)."""
        with self._cond:
            return waiting_stages(self.policy, self._counters, self._finished)

    @property
    def done(self) -> bool:
        with self._cond:
            return all(self._finished)
