"""Synchronisation policies as readiness predicates over progress counters.

Both execution rails share these semantics:

* the *functional* executor (:mod:`repro.core.executor`) asks "which
  threads may start their next block now?" to enumerate legal
  interleavings;
* the *performance* simulator (:mod:`repro.sim.threadsim`) asks the same
  question to decide when a simulated thread unblocks.

A policy sees the per-stage progress counters ``c`` (blocks completed in
the current pass) plus which stages have finished their traversal, and
answers readiness per stage.  This mirrors the paper's volatile-counter
protocol: "only thread t_i updates its own counter c_i; all others read
its updated value by means of the standard cache coherence mechanisms".
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

from .parameters import BarrierSpec, PipelineConfig, RelaxedSpec

__all__ = ["SyncPolicy", "BarrierPolicy", "RelaxedPolicy", "make_policy",
           "waiting_stages"]


class SyncPolicy(Protocol):
    """Protocol for synchronisation policies."""

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """May ``stage`` start its next block given counters/finish flags?"""
        ...

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """Stages whose counter must change before ``stage`` becomes ready.

        Used by the event-driven simulator to know which counter updates to
        wake on, and by deadlock diagnostics.
        """
        ...


class BarrierPolicy:
    """Global barrier after each block update (Fig. 1).

    The threads run *staggered*: stage ``s`` trails stage ``s-1`` by
    exactly one block, so stage ``s`` processes its block ``k`` in global
    round ``k + s`` ("the distance is kept constant by imposing a global
    barrier across all threads after each block update", Sect. 1.3).  A
    stage is ready iff its next round equals the minimum outstanding
    round.  Within a round the block operations are mutually independent
    (each stage's reads were produced in strictly earlier rounds), so any
    intra-round execution order is legal — which the adversarial
    interleaving tests exercise.
    """

    def __init__(self, n_stages: int) -> None:
        if n_stages < 1:
            raise ValueError("need at least one stage")
        self.n_stages = n_stages

    def _round(self, stage: int, counters: Sequence[int]) -> int:
        return counters[stage] + stage

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """Ready iff this stage sits at the current barrier round."""
        rounds = [self._round(s, counters) for s in range(self.n_stages)
                  if not finished[s]]
        return self._round(stage, counters) == min(rounds)

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """All stages still working on earlier rounds."""
        me = self._round(stage, counters)
        return [s for s in range(self.n_stages)
                if not finished[s] and self._round(s, counters) < me]


class RelaxedPolicy:
    """Relaxed synchronisation, Eq. 3 of the paper.

    Thread ``i`` may start its next block iff
    ``c_{i-1} - c_i >= d_l(i)`` and ``c_i - c_{i+1} <= d_u(i)`` where the
    per-stage bounds include the team delay on team boundaries:
    ``d_l(i) = d_l + d_t`` on a team's front thread (except the overall
    front) and ``d_u(i) = d_u + d_t`` on a team's rear thread (except the
    overall rear).  The overall front/rear threads ignore the first/second
    condition respectively, and a finished predecessor counts as infinitely
    far ahead (drain waiver; see :class:`repro.core.parameters.RelaxedSpec`).
    """

    def __init__(self, config: PipelineConfig) -> None:
        spec = config.sync
        if not isinstance(spec, RelaxedSpec):
            raise TypeError("RelaxedPolicy requires a RelaxedSpec config")
        self.n_stages = config.n_stages
        self.d_l_eff: List[int] = []
        self.d_u_eff: List[int] = []
        for s in range(self.n_stages):
            dl = spec.d_l
            du = spec.d_u
            if config.is_team_front(s) and s > 0:
                dl += spec.team_delay
            if config.is_team_rear(s) and s < self.n_stages - 1:
                du += spec.team_delay
            self.d_l_eff.append(dl)
            self.d_u_eff.append(du)

    def ready(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> bool:
        """Eq. 3 as a precondition for starting the next block."""
        if stage > 0 and not finished[stage - 1]:
            if counters[stage - 1] - counters[stage] < self.d_l_eff[stage]:
                return False
        if stage < self.n_stages - 1:
            if counters[stage] - counters[stage + 1] > self.d_u_eff[stage]:
                return False
        return True

    def blockers(self, stage: int, counters: Sequence[int], finished: Sequence[bool]) -> List[int]:
        """The neighbor stages currently holding this stage back."""
        out: List[int] = []
        if stage > 0 and not finished[stage - 1]:
            if counters[stage - 1] - counters[stage] < self.d_l_eff[stage]:
                out.append(stage - 1)
        if stage < self.n_stages - 1:
            if counters[stage] - counters[stage + 1] > self.d_u_eff[stage]:
                out.append(stage + 1)
        return out


def waiting_stages(policy: SyncPolicy, counters: Sequence[int],
                   finished: Sequence[bool]) -> List[int]:
    """Unfinished stages the sync window blocks *right now*.

    The observability layer's view of sync-wait: on the functional rail
    a stage never sleeps (stages are simulated on one thread), so the
    per-poll count of window-blocked stages is the deterministic,
    host-independent proxy for wait time — the executor accumulates it
    into the ``sync.blocked_polls`` counter only while tracing.
    """
    return [s for s in range(len(counters))
            if not finished[s] and not policy.ready(s, counters, finished)]


def make_policy(config: PipelineConfig) -> SyncPolicy:
    """Instantiate the policy matching ``config.sync``."""
    if isinstance(config.sync, BarrierSpec):
        return BarrierPolicy(config.n_stages)
    if isinstance(config.sync, RelaxedSpec):
        return RelaxedPolicy(config)
    raise TypeError(f"unknown sync spec {config.sync!r}")
