"""Core contribution: pipelined temporal blocking with relaxed sync.

Public surface:

* :class:`~repro.core.parameters.PipelineConfig` with
  :class:`~repro.core.parameters.BarrierSpec` /
  :class:`~repro.core.parameters.RelaxedSpec` — the parameter space of
  Sect. 1.3/1.5;
* :func:`~repro.core.pipeline.run_pipelined` — execute the scheme on real
  arrays (functional rail);
* :class:`~repro.core.executor.PipelineExecutor` — the underlying engine,
  for callers that need custom active regions (distributed trapezoids) or
  interleaving control;
* storage schemes (two-grid / compressed) in :mod:`~repro.core.storage`.
"""

from .parameters import BarrierSpec, PipelineConfig, RelaxedSpec, SyncSpec
from .sync import BarrierPolicy, RelaxedPolicy, SyncPolicy, make_policy
from .storage import CompressedStorage, StorageError, TwoGridStorage, make_storage
from .schedule import ScheduleError, check_coverage, check_skew, make_decomposition
from .executor import ExecutionStats, ORDERS, PipelineExecutor, ScheduleDeadlock
from .pipeline import PipelineResult, SolveResult, plan, run_pipelined
from .autotune import TuneResult, autotune
from .wavefront import compare_wavefront, wavefront_balance, wavefront_config

__all__ = [
    "BarrierSpec",
    "RelaxedSpec",
    "SyncSpec",
    "PipelineConfig",
    "BarrierPolicy",
    "RelaxedPolicy",
    "SyncPolicy",
    "make_policy",
    "TwoGridStorage",
    "CompressedStorage",
    "StorageError",
    "make_storage",
    "ScheduleError",
    "check_coverage",
    "check_skew",
    "make_decomposition",
    "PipelineExecutor",
    "ExecutionStats",
    "ScheduleDeadlock",
    "ORDERS",
    "PipelineResult",
    "SolveResult",
    "plan",
    "run_pipelined",
    "TuneResult",
    "autotune",
    "wavefront_config",
    "wavefront_balance",
    "compare_wavefront",
]
