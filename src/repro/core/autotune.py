"""Parameter autotuning over the pipelined blocking space (Sect. 1.5).

"We must stress that the parameter space for temporal blocking schemes,
and especially for pipelined blocking, is huge.  The optimal choices
reported here have been obtained experimentally" — this module automates
that experiment: a grid search over (block size, T, d_u, storage)
evaluated on the calibrated machine simulator, returning a ranked table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..machine.topology import MachineSpec
from .parameters import PipelineConfig, RelaxedSpec

__all__ = ["TuneResult", "autotune"]


@dataclass(frozen=True)
class TuneResult:
    """One evaluated configuration."""

    config: PipelineConfig
    mlups: float
    reloads: int

    def describe(self) -> str:
        """One-line summary for the ranked table."""
        return f"{self.mlups:8.1f} MLUP/s  reloads={self.reloads:<4d} {self.config.describe()}"


def autotune(
    machine: MachineSpec,
    shape: Sequence[int] = (300, 300, 300),
    teams: int = 1,
    bx_values: Sequence[int] = (60, 120, 240),
    bz_values: Sequence[int] = (10, 20, 40),
    T_values: Sequence[int] = (1, 2, 4),
    du_values: Sequence[int] = (1, 2, 4, 8),
    storages: Sequence[str] = ("compressed", "twogrid"),
    engines: Sequence[str] = ("numpy",),
    seed: int = 0,
    top: Optional[int] = None,
    prune_illegal: bool = True,
    perf_db=None,
    kernel: str = "jacobi",
) -> List[TuneResult]:
    """Exhaustive sweep; returns results sorted best-first.

    The search space mirrors the knobs the paper tuned by hand: inner
    block length ``b_x`` ("decisive for good performance"), block
    thickness, updates per thread ``T`` ("usually 2"), the sync window
    ``d_u`` ("1–4 with the block sizes chosen") and the storage scheme —
    plus, since PR 5, the kernel-execution **engine**
    (:mod:`repro.engine`).  The DES models the schedule and the memory
    hierarchy, which engines do not change (they are bit-identical
    traversal/fusion variants), so engine points tie on simulated
    MLUP/s and the stable sort ranks them in the order given —
    *unless* a measured perf database is supplied.  With
    ``perf_db=repro.perf.db.default_db()`` (or any
    :class:`~repro.perf.db.PerfDB`) each engine point's simulated rate
    is scaled by the host's measured engine/default throughput ratio
    for this ``kernel``, storage and size class
    (:func:`repro.sim.costmodel.engine_factor`), so calibrated hosts
    rank engine points by data; unmeasured engines keep the neutral
    factor 1.0 and the historical tie.  Pass
    ``engines=repro.engine.available_engines()`` to enumerate every
    engine registered in this process.

    With ``prune_illegal=True`` (the default) every candidate is first
    run through the static schedule analyzer
    (:func:`repro.analysis.quick_check`) and configurations it cannot
    certify race- and deadlock-free are dropped *before* the DES run —
    no simulator time is spent ranking schedules the executor could
    never legally run.  The stock sweep axes are all legal, so this
    changes nothing for the defaults; it matters when callers widen the
    axes into the illegal corner of the space.
    """
    from ..sim.des_pipeline import simulate_pipelined  # late: avoid cycle

    from dataclasses import replace as _replace

    if prune_illegal:
        from ..analysis import quick_check  # late: avoid cycle

    results: List[TuneResult] = []
    for storage in storages:
        for bx in bx_values:
            for bz in bz_values:
                for T in T_values:
                    for du in du_values:
                        cfg = PipelineConfig(
                            teams=teams,
                            threads_per_team=machine.cores_per_socket,
                            updates_per_thread=T,
                            block_size=(bz, 20, bx),
                            sync=RelaxedSpec(1, du),
                            storage=storage,
                        )
                        if prune_illegal and not quick_check(
                                cfg, tuple(int(s) for s in shape)):
                            continue
                        # One DES run covers every engine: engines are
                        # bit-identical traversal variants the machine
                        # model does not distinguish, so the simulated
                        # rate is shared and only the measured engine
                        # factor (1.0 without a perf database) differs.
                        rep = simulate_pipelined(machine, cfg, shape,
                                                 seed=seed)
                        for engine in engines:
                            mlups = rep.mlups
                            if perf_db is not None:
                                from ..sim.costmodel import engine_factor
                                mlups *= engine_factor(
                                    engine, storage=storage, shape=shape,
                                    kernel=kernel, db=perf_db)
                            results.append(TuneResult(
                                _replace(cfg, engine=engine),
                                mlups, rep.reloads))
    results.sort(key=lambda r: -r.mlups)
    return results[:top] if top else results
