"""The pipelined temporal-blocking executor (functional rail).

This engine runs the paper's scheme *as an algorithm*: simulated pipeline
stages (threads) walk the block traversal, each performing its ``T``
one-cell-shifted updates per block, gated by the synchronisation policy
(global barrier or relaxed counters, Eq. 3).  The engine explores *any*
legal interleaving — round-robin, seeded-random, or adversarial
front-/rear-biased orders — and every storage access is validated, so an
illegal schedule raises instead of silently producing a wrong (or even a
right) answer.

What this deliberately does **not** model is wall-clock time; that is the
job of the discrete-event rail in :mod:`repro.sim`, which executes the
same schedule against a machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..engine import get_engine
from ..grid.blocks import BlockDecomposition
from ..grid.grid3d import Grid3D
from ..grid.region import Box
from ..kernels.stencils import StarStencil
from ..obs.tracer import NULL_TRACER, Tracer
from .parameters import PipelineConfig
from .schedule import make_decomposition
from .storage import CompressedStorage, make_storage
from .sync import make_policy, waiting_stages

__all__ = ["ScheduleDeadlock", "ExecutionStats", "PipelineExecutor", "ORDERS"]

ActiveFn = Callable[[int], Box]

#: Interleaving orders understood by the executor.
ORDERS = ("round_robin", "random", "front_first", "rear_first")


class ScheduleDeadlock(RuntimeError):
    """No stage is ready although work remains (e.g. ``d_u < d_l``)."""


@dataclass
class ExecutionStats:
    """Counters describing one executor run (all passes)."""

    block_ops: int = 0
    empty_block_ops: int = 0
    updates: int = 0
    cells_updated: int = 0
    per_stage_blocks: List[int] = field(default_factory=list)
    max_counter_gap: int = 0
    trace: Optional[List[Tuple[int, int, int]]] = None  # (pass, stage, idx)

    def mlups_equivalent(self, seconds: float) -> float:
        """Convenience: cell updates per second if the run took ``seconds``."""
        return self.cells_updated / seconds / 1e6 if seconds > 0 else float("nan")


class PipelineExecutor:
    """Run a pipelined temporal-blocking schedule on real arrays.

    Parameters
    ----------
    grid, field:
        The domain description and the level-0 interior values.
    config:
        Pipeline parameters (teams, T, block size, sync, storage).
    stencil:
        A radius-1 star stencil.
    order:
        Interleaving policy among ready stages: ``round_robin`` (default,
        deterministic), ``random`` (seeded via ``rng``), ``front_first``
        (front thread as eager as possible — maximal skew), or
        ``rear_first`` (minimal skew).
    active_fn:
        Optional map from *global* time level to the active box for that
        update; used by the distributed trapezoid.  Defaults to the whole
        interior.
    validate:
        Enable storage validation (two-buffer / compressed-position
        checks).  Tests run with it on; large demo runs may switch it off.
    record_trace:
        Keep the full (pass, stage, block) execution order in the stats.
    tracer:
        An :class:`repro.obs.tracer.Tracer` to record per-block spans and
        sync/drain counters into; defaults to the no-op tracer, whose
        guard variable keeps the instrumented paths allocation-free.
    """

    def __init__(
        self,
        grid: Grid3D,
        field: np.ndarray,
        config: PipelineConfig,
        stencil: StarStencil,
        order: str = "round_robin",
        rng: Optional[np.random.Generator] = None,
        active_fn: Optional[ActiveFn] = None,
        validate: bool = True,
        record_trace: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if order not in ORDERS:
            raise ValueError(f"unknown order {order!r}; choose from {ORDERS}")
        self.grid = grid
        self.config = config
        self.stencil = stencil
        self.order = order
        self.rng = rng or np.random.default_rng(0)
        self.active_fn = active_fn
        self.decomp: BlockDecomposition = make_decomposition(grid.domain, config)
        self.policy = make_policy(config)
        #: Kernel-execution engine every update dispatches through
        #: (:mod:`repro.engine`); engines are bit-identical, so this
        #: changes throughput, never the schedule or the results.
        self.engine = get_engine(config.engine)
        self.storage = make_storage(config.storage, grid, field,
                                    self.decomp.shift_vec,
                                    config.updates_per_pass, validate=validate)
        self.stats = ExecutionStats(per_stage_blocks=[0] * config.n_stages,
                                    trace=[] if record_trace else None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rr_next = 0

    # -- public API -------------------------------------------------------------

    def run(self, passes: Optional[int] = None) -> np.ndarray:
        """Execute ``passes`` pipeline passes; return the final interior.

        Each pass advances every (active) cell by ``n*t*T`` levels; an
        implicit global barrier separates passes, as in the reference
        implementation.
        """
        n_passes = self.config.passes if passes is None else int(passes)
        for p in range(n_passes):
            self.run_pass(p)
        final = n_passes * self.config.updates_per_pass
        return self.storage.extract(final)

    def run_pass(self, pass_idx: int) -> None:
        """Execute one full pipeline pass (every stage over every block)."""
        cfg = self.config
        P = cfg.n_stages
        n_blocks = self.decomp.n_traversal_blocks
        counters = [0] * P
        finished = [False] * P
        with self.tracer.span("pass", cat="core", idx=pass_idx):
            while not all(finished):
                ready = [s for s in range(P)
                         if not finished[s]
                         and self.policy.ready(s, counters, finished)]
                if not ready:
                    raise ScheduleDeadlock(
                        f"pass {pass_idx}: no ready stage (counters={counters}); "
                        f"sync spec {cfg.sync.describe()} cannot make progress"
                    )
                if self.tracer.enabled:
                    # Sync-window pressure: how many unfinished stages the
                    # window blocks at this poll (the functional rail's
                    # deterministic proxy for wait time), and whether we
                    # are in a drain phase (some stage already done).
                    blocked = waiting_stages(self.policy, counters, finished)
                    if blocked:
                        self.tracer.count("sync.blocked_polls", len(blocked))
                    if any(finished):
                        self.tracer.count("core.drain_blocks")
                s = self._pick(ready)
                self._execute_block(pass_idx, s, counters[s])
                counters[s] += 1
                if counters[s] == n_blocks:
                    finished[s] = True
                gap = max(counters) - min(counters)
                if gap > self.stats.max_counter_gap:
                    self.stats.max_counter_gap = gap

    # -- internals ---------------------------------------------------------------

    def _pick(self, ready: List[int]) -> int:
        if self.order == "round_robin":
            for probe in range(self.config.n_stages):
                s = (self._rr_next + probe) % self.config.n_stages
                if s in ready:
                    self._rr_next = (s + 1) % self.config.n_stages
                    return s
            raise AssertionError("unreachable: ready set was non-empty")
        if self.order == "random":
            return int(self.rng.choice(ready))
        if self.order == "front_first":
            return min(ready)
        return max(ready)  # rear_first

    def _active(self, level: int) -> Box:
        if self.active_fn is None:
            return self.grid.domain
        box = self.active_fn(level)
        return box.intersect(self.grid.domain)

    def _execute_block(self, pass_idx: int, stage: int, traversal_idx: int,
                       stats: Optional[ExecutionStats] = None) -> None:
        # ``stats`` lets a caller isolate the counter sink per stage: the
        # threaded executor hands every stage thread its own
        # ExecutionStats (merged after the join), because concurrent
        # ``+=`` on one shared object loses updates.  The simulated rail
        # keeps the default — its single thread owns ``self.stats``.
        stats = self.stats if stats is None else stats
        cfg = self.config
        base = pass_idx * cfg.updates_per_pass
        # Compressed grid: odd passes unwind the storage shift, which
        # requires the reversed ("mirror") traversal — the paper's reverse
        # loops on even sweeps.  Two-grid passes are direction-agnostic.
        mirror = (pass_idx % 2 == 1) and isinstance(self.storage, CompressedStorage)
        stats.block_ops += 1
        if stats.trace is not None:
            stats.trace.append((pass_idx, stage, traversal_idx))
        any_work = False
        with self.tracer.span("block", cat="core", tid=stage + 1,
                              stage=stage, idx=traversal_idx):
            for u_local in cfg.stage_updates(stage):
                level = base + u_local
                region = self.decomp.region(traversal_idx, u_local - 1,
                                            self._active(level), mirror=mirror)
                if region.is_empty:
                    continue
                any_work = True
                self._apply_update(region, level, stage, stats=stats)
        stats.per_stage_blocks[stage] += 1
        if not any_work:
            stats.empty_block_ops += 1

    def _apply_update(self, region: Box, level: int, stage: int = 0,
                      stats: Optional[ExecutionStats] = None) -> None:
        stats = self.stats if stats is None else stats
        with self.tracer.span("apply", cat="engine", tid=stage + 1,
                              engine=self.engine.name,
                              semantics=self.engine.semantics,
                              cells=region.ncells):
            self.engine.apply(self.stencil, self.storage, region, level)
        stats.updates += 1
        stats.cells_updated += region.ncells
