"""Configuration objects for pipelined temporal blocking.

The paper's parameter space (Sect. 1.5: "the parameter space for temporal
blocking schemes, and especially for pipelined blocking, is huge") is
captured here as explicit dataclasses:

* ``n`` teams (one per cache group) of ``t`` threads each,
* ``T`` updates per thread and block,
* block size ``(bz, by, bx)``,
* synchronisation: global barrier, or relaxed counters with window
  ``[d_l, d_u]`` and team delay ``d_t`` (Eq. 3),
* storage scheme: separate grids A/B, or the compressed grid,
* execution engine: how the innermost update runs (:mod:`repro.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

__all__ = ["BarrierSpec", "RelaxedSpec", "SyncSpec", "PipelineConfig"]


@dataclass(frozen=True)
class BarrierSpec:
    """Global barrier across all threads after each block update (Fig. 1).

    Semantically: no thread may start traversal block ``k+1`` before every
    thread has completed block ``k``.
    """

    def describe(self) -> str:
        """Short label for reports."""
        return "barrier"


@dataclass(frozen=True)
class RelaxedSpec:
    """Relaxed synchronisation via per-thread progress counters (Eq. 3).

    A thread ``i`` may start its next block iff::

        c_{i-1} - c_i >= d_l   and   c_i - c_{i+1} <= d_u

    where the overall front thread ignores the first condition and the
    overall rear thread the second.  The *team delay* ``d_t`` is "trivially
    implemented by adding d_t to d_l on a team's front thread and to d_u on
    its rear thread" (Sect. 1.3).

    Notes
    -----
    ``d_l >= 1`` is required for correctness (one-block minimum distance
    averts the data race); ``d_u >= d_l`` is required for progress.  A
    predecessor that has finished its traversal no longer constrains its
    successor (its counter is effectively infinite) — without this waiver
    the pipeline would deadlock during drain for ``d_l > 1``.
    """

    d_l: int = 1
    d_u: int = 4
    team_delay: int = 0

    def __post_init__(self) -> None:
        if self.d_l < 1:
            raise ValueError(
                f"d_l={self.d_l} violates the minimum one-block distance "
                "between neighboring threads (data race)"
            )
        if self.d_u < self.d_l:
            raise ValueError(
                f"d_u={self.d_u} < d_l={self.d_l}: the window is empty and "
                "the pipeline cannot make progress"
            )
        if self.team_delay < 0:
            raise ValueError("team_delay must be >= 0")

    @property
    def looseness(self) -> int:
        """The x-axis of Fig. 3 (right): ``d_u - d_l``."""
        return self.d_u - self.d_l

    def describe(self) -> str:
        """Short label for reports."""
        s = f"relaxed(d_l={self.d_l},d_u={self.d_u}"
        if self.team_delay:
            s += f",d_t={self.team_delay}"
        return s + ")"


SyncSpec = Union[BarrierSpec, RelaxedSpec]


@dataclass(frozen=True)
class PipelineConfig:
    """Full parameterisation of a pipelined temporal-blocking run.

    Parameters
    ----------
    teams:
        Number of thread teams ``n`` (one per outer-level cache group;
        2 on the paper's dual-socket Nehalem node).
    threads_per_team:
        Team size ``t`` (4 on the paper's quad-core socket).
    updates_per_thread:
        Updates ``T`` each thread performs per block (paper: optimum
        usually 2, minor gain at 4).
    block_size:
        Block extents ``(bz, by, bx)``; dimensions the block spans fully
        are untiled and receive no shift.
    sync:
        :class:`BarrierSpec` or :class:`RelaxedSpec`.
    storage:
        ``"twogrid"`` for separate A/B grids or ``"compressed"`` for the
        single compressed grid.
    passes:
        Number of full pipeline passes; each pass advances every cell by
        ``updates_per_pass`` time levels (with a barrier between passes).
    engine:
        Kernel-execution engine name (:mod:`repro.engine` registry);
        every engine is bit-identical to the default ``"numpy"``, so
        this knob moves throughput, never results.  Travels with the
        configuration through every backend and the serving layer.
    """

    teams: int = 1
    threads_per_team: int = 4
    updates_per_thread: int = 1
    block_size: Tuple[int, int, int] = (8, 1_000_000, 1_000_000)
    sync: SyncSpec = field(default_factory=BarrierSpec)
    storage: str = "twogrid"
    passes: int = 1
    engine: str = "numpy"

    def __post_init__(self) -> None:
        if self.teams < 1:
            raise ValueError("need at least one team")
        if self.threads_per_team < 1:
            raise ValueError("need at least one thread per team")
        if self.updates_per_thread < 1:
            raise ValueError("T must be >= 1")
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if self.storage not in ("twogrid", "compressed"):
            raise ValueError(f"unknown storage scheme {self.storage!r}")
        if len(self.block_size) != 3 or any(int(b) < 1 for b in self.block_size):
            raise ValueError(f"bad block size {self.block_size!r}")
        object.__setattr__(self, "block_size",
                           tuple(int(b) for b in self.block_size))
        # Late import: the engine layer is below core in the import
        # graph, but this module is imported from its package __init__.
        from ..engine import check_engine

        check_engine(self.engine)

    # -- derived quantities ------------------------------------------------------

    @property
    def n_stages(self) -> int:
        """Pipeline depth in threads: ``P = n * t``."""
        return self.teams * self.threads_per_team

    @property
    def updates_per_pass(self) -> int:
        """Time levels advanced per pass: ``n * t * T`` (the paper's ``h``)."""
        return self.n_stages * self.updates_per_thread

    @property
    def max_shift(self) -> int:
        """Largest region shift within a pass: ``n*t*T - 1``."""
        return self.updates_per_pass - 1

    @property
    def total_updates(self) -> int:
        """Time levels advanced by the whole run."""
        return self.passes * self.updates_per_pass

    def stage_team(self, stage: int) -> int:
        """Team index of pipeline stage ``stage``."""
        if not 0 <= stage < self.n_stages:
            raise IndexError(f"stage {stage} out of range")
        return stage // self.threads_per_team

    def is_team_front(self, stage: int) -> bool:
        """True if ``stage`` is the front (first) thread of its team."""
        return stage % self.threads_per_team == 0

    def is_team_rear(self, stage: int) -> bool:
        """True if ``stage`` is the rear (last) thread of its team."""
        return stage % self.threads_per_team == self.threads_per_team - 1

    def stage_updates(self, stage: int) -> range:
        """Pass-local update numbers performed by ``stage`` (1-based)."""
        T = self.updates_per_thread
        return range(stage * T + 1, (stage + 1) * T + 1)

    def describe(self) -> str:
        """One-line human-readable summary used by the bench harness."""
        engine = "" if self.engine == "numpy" else f",{self.engine}"
        return (
            f"pipeline(n={self.teams},t={self.threads_per_team},"
            f"T={self.updates_per_thread},b={self.block_size},"
            f"{self.sync.describe()},{self.storage}{engine})"
        )
