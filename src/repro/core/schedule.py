"""Schedule-level geometry checks for the pipelined scheme.

These helpers validate *global* properties of a pipeline schedule that the
per-operation storage validators cannot see:

* **coverage** — for every time level, the shifted-and-clipped block
  regions tile the active domain exactly once (no cell skipped, none
  updated twice);
* **skew bound** — after any prefix of a legal execution, the time-level
  surface has spatial slope at most one along shifted dimensions (this is
  the property that makes the two-buffer window sufficient).

They are used by the test-suite and by :func:`repro.core.pipeline.plan`
to fail fast on inconsistent configurations.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..grid.blocks import BlockDecomposition
from ..grid.region import Box, boxes_partition
from .parameters import PipelineConfig

__all__ = [
    "make_decomposition",
    "check_coverage",
    "check_skew",
    "ScheduleError",
]

ActiveFn = Callable[[int], Box]


class ScheduleError(ValueError):
    """A schedule-level inconsistency (coverage hole, bad skew, ...)."""


def make_decomposition(domain: Box, config: PipelineConfig) -> BlockDecomposition:
    """Build the block decomposition implied by a pipeline configuration."""
    return BlockDecomposition(domain, config.block_size, config.max_shift)


def check_coverage(decomp: BlockDecomposition, config: PipelineConfig,
                   active_fn: Optional[ActiveFn] = None) -> None:
    """Verify that every pass-local level's regions partition its domain.

    Raises :class:`ScheduleError` on the first violation.  ``active_fn``
    maps a pass-local update number (1-based) to the active box (defaults
    to the full domain; the distributed trapezoid passes its shrinking
    boxes).
    """
    for u in range(1, config.updates_per_pass + 1):
        active = active_fn(u) if active_fn is not None else decomp.domain
        regions = decomp.level_regions(u - 1, active)
        if not boxes_partition(regions, active):
            covered = sum(r.ncells for r in regions)
            raise ScheduleError(
                f"update {u}: regions cover {covered} cells but active "
                f"domain has {active.ncells}; the shifted blocks do not "
                "tile the domain"
            )


def check_skew(levels: np.ndarray, shift_vec: Tuple[int, int, int],
               max_skew: int = 1) -> None:
    """Verify the time-level surface has bounded slope along shifted dims.

    ``levels`` is the executor's per-cell level array at any instant of a
    legal execution.  Along each shifted dimension, adjacent cells may
    differ by at most ``max_skew`` levels; along unshifted dimensions they
    must be *equal* away from active-region boundaries — we only check the
    shifted dims here because trapezoid clipping legitimately creates
    steps along all dims near the rim.
    """
    for d in range(3):
        if not shift_vec[d]:
            continue
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[d] = slice(0, -1)
        hi[d] = slice(1, None)
        diff = np.abs(levels[tuple(hi)].astype(np.int64)
                      - levels[tuple(lo)].astype(np.int64))
        worst = int(diff.max()) if diff.size else 0
        if worst > max_skew:
            raise ScheduleError(
                f"time-level skew {worst} along dim {d} exceeds bound "
                f"{max_skew}; the one-cell-shift discipline is broken"
            )


def traversal_neighbors_gap(decomp: BlockDecomposition) -> int:
    """Traversal-index distance that makes a predecessor's regions safe.

    For a 1-D pipeline (single tiled dimension) consecutive traversal
    blocks are spatially adjacent and the paper's minimum distance of one
    block suffices.  When more dimensions are tiled, lexicographic
    traversal places spatially adjacent blocks ``extended_counts`` apart,
    so the *effective* minimum ``d_l`` grows; this helper returns that
    distance for diagnostics and the autotuner.
    """
    counts = decomp.extended_counts
    tiled = decomp.tiled_dims
    if not tiled:
        return 1
    # Stride of one step along the slowest tiled dimension.
    strides = (counts[1] * counts[2], counts[2], 1)
    return max(strides[d] for d in tiled)
