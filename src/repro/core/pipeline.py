"""High-level front-end for pipelined temporal blocking.

``run_pipelined`` is the one-call public API: give it a grid, an initial
field and a :class:`~repro.core.parameters.PipelineConfig`, get back the
field advanced by ``passes * n*t*T`` time levels — guaranteed identical to
that many plain Jacobi sweeps (the equivalence the whole paper rests on,
and which our test-suite asserts for every scheme/sync/storage
combination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..grid.grid3d import Grid3D
from ..kernels.jacobi import jacobi7
from ..kernels.stencils import StarStencil
from .executor import ExecutionStats, PipelineExecutor
from .parameters import PipelineConfig
from .schedule import check_coverage, make_decomposition

__all__ = ["PipelineResult", "plan", "run_pipelined"]


@dataclass
class PipelineResult:
    """Outcome of a pipelined run."""

    field: np.ndarray
    levels_advanced: int
    stats: ExecutionStats
    config: PipelineConfig

    @property
    def cells_updated(self) -> int:
        """Total cell updates performed (incl. trapezoid extra work)."""
        return self.stats.cells_updated


def plan(grid: Grid3D, config: PipelineConfig, verify_coverage: bool = True):
    """Validate a configuration against a grid and return its decomposition.

    Fails fast with a descriptive error if the shifted blocks would not
    tile the domain (which cannot happen for consistent inputs, but guards
    against hand-built decompositions) or if the block size is degenerate
    for the requested pipeline depth.
    """
    decomp = make_decomposition(grid.domain, config)
    if verify_coverage:
        check_coverage(decomp, config)
    return decomp


def run_pipelined(
    grid: Grid3D,
    field: np.ndarray,
    config: PipelineConfig,
    stencil: Optional[StarStencil] = None,
    order: str = "round_robin",
    rng: Optional[np.random.Generator] = None,
    validate: bool = True,
    record_trace: bool = False,
) -> PipelineResult:
    """Advance ``field`` by ``config.total_updates`` Jacobi time levels.

    This is the shared-memory entry point; the distributed front-end in
    :mod:`repro.dist.solver` drives the same executor per rank with
    trapezoidal active regions and multi-layer halo exchange between
    passes.
    """
    st = stencil or jacobi7()
    ex = PipelineExecutor(
        grid, field, config, st,
        order=order, rng=rng, validate=validate, record_trace=record_trace,
    )
    out = ex.run()
    return PipelineResult(
        field=out,
        levels_advanced=config.total_updates,
        stats=ex.stats,
        config=config,
    )
