"""High-level front-end for pipelined temporal blocking.

``run_pipelined`` is the shared-memory entry point: give it a grid, an
initial field and a :class:`~repro.core.parameters.PipelineConfig`, get
back the field advanced by ``passes * n*t*T`` time levels — guaranteed
identical to that many plain Jacobi sweeps (the equivalence the whole
paper rests on, and which our test-suite asserts for every
scheme/sync/storage combination).

Every solver front-end — this one and the distributed ones in
:mod:`repro.dist.solver` — returns the same :class:`SolveResult`, so
callers can switch between the shared-memory and distributed-memory
rails (or go through the dispatching :func:`repro.solve`) without
touching their result handling.  ``PipelineResult`` remains as an alias
for existing code.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Optional, Tuple

import numpy as np

from ..grid.grid3d import Grid3D
from ..kernels.jacobi import jacobi7
from ..kernels.stencils import StarStencil
from ..obs.tracer import Trace, Tracer
from .executor import ExecutionStats, PipelineExecutor
from .parameters import PipelineConfig
from .schedule import check_coverage, make_decomposition

__all__ = ["SolveResult", "PipelineResult", "plan", "run_pipelined"]


@dataclass
class SolveResult:
    """Outcome of a solve, uniform across execution backends.

    The shared-memory backend fills the communication fields with their
    single-process values (one rank, nothing exchanged); the distributed
    backends report the aggregate traffic of all ranks.
    """

    #: Final interior field (global domain, all backends).
    field: np.ndarray
    #: Time levels the field was advanced by.
    levels_advanced: int
    #: Aggregate executor counters (``None`` for non-pipelined solvers).
    stats: Optional[ExecutionStats]
    #: The pipeline configuration (``None`` for non-pipelined solvers).
    config: Optional[PipelineConfig]
    #: Which backend produced this result (``"shared"`` or ``"simmpi"``).
    backend: str = "shared"
    #: Process-grid topology the solve ran on.
    topology: Tuple[int, int, int] = (1, 1, 1)
    #: Number of ranks (product of the topology).
    n_ranks: int = 1
    #: Ghost layers exchanged per superstep (0: no exchange happened).
    halo: int = 0
    #: Total bytes sent by all ranks over the whole solve.
    bytes_exchanged: int = 0
    #: Total messages sent by all ranks over the whole solve.
    messages: int = 0
    #: Flat observability metrics (empty unless the solve was traced).
    metrics: Dict[str, float] = dc_field(default_factory=dict)
    #: Merged span/counter timeline (``None`` unless the solve was traced).
    trace: Optional[Trace] = None

    @property
    def cells_updated(self) -> int:
        """Total cell updates performed (incl. trapezoid extra work)."""
        return self.stats.cells_updated if self.stats is not None else 0


#: Backwards-compatible name from before the unified front-end.
PipelineResult = SolveResult


def plan(grid: Grid3D, config: PipelineConfig, verify_coverage: bool = True):
    """Validate a configuration against a grid and return its decomposition.

    Fails fast with a descriptive error if the shifted blocks would not
    tile the domain (which cannot happen for consistent inputs, but guards
    against hand-built decompositions) or if the block size is degenerate
    for the requested pipeline depth.
    """
    decomp = make_decomposition(grid.domain, config)
    if verify_coverage:
        check_coverage(decomp, config)
    return decomp


def run_pipelined(
    grid: Grid3D,
    field: np.ndarray,
    config: PipelineConfig,
    stencil: Optional[StarStencil] = None,
    order: str = "round_robin",
    rng: Optional[np.random.Generator] = None,
    validate: bool = True,
    record_trace: bool = False,
    tracer: Optional[Tracer] = None,
) -> SolveResult:
    """Advance ``field`` by ``config.total_updates`` Jacobi time levels.

    This is the shared-memory entry point; the distributed front-end in
    :mod:`repro.dist.solver` drives the same executor per rank with
    trapezoidal active regions and multi-layer halo exchange between
    passes.
    """
    st = stencil or jacobi7()
    ex = PipelineExecutor(
        grid, field, config, st,
        order=order, rng=rng, validate=validate, record_trace=record_trace,
        tracer=tracer,
    )
    out = ex.run()
    return SolveResult(
        field=out,
        levels_advanced=config.total_updates,
        stats=ex.stats,
        config=config,
        backend="shared",
    )
