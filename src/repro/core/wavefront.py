"""Wavefront temporal blocking — the comparison baseline of ref. [2].

The paper positions pipelined blocking against the earlier *wavefront*
method (Wellein et al., COMPSAC 2009): there, the ``t`` threads of a
cache group follow each other through the domain one time level apart —
structurally the pipelined scheme with ``T = 1`` — but the published
wavefront implementation incurs **boundary copies** between the
wavefront fronts ("Compared to the wavefront technique, it does not
incur extra work or boundary copies", Sect. 1.3).

Functionally the wavefront therefore maps onto the pipelined executor
with ``T = 1`` (and the tests assert it reproduces the reference);
performance-wise the boundary-copy overhead is charged as extra
shared-cache traffic proportional to the block's surface layers.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..machine.topology import MachineSpec
from ..sim.costmodel import CodeBalance, W
from .parameters import PipelineConfig, RelaxedSpec, SyncSpec

__all__ = ["wavefront_config", "wavefront_balance", "compare_wavefront"]


def wavefront_config(threads: int, block_size: Tuple[int, int, int],
                     sync: SyncSpec | None = None,
                     passes: int = 1) -> PipelineConfig:
    """The wavefront scheme as a pipeline: one team, T = 1.

    Each thread performs exactly one time level per block — the moving
    wavefront of ref. [2].
    """
    return PipelineConfig(teams=1, threads_per_team=threads,
                          updates_per_thread=1, block_size=block_size,
                          sync=sync or RelaxedSpec(1, 2),
                          storage="twogrid", passes=passes)


def wavefront_balance(block_size: Tuple[int, int, int],
                      copy_layers: int = 2) -> CodeBalance:
    """Code balance including the wavefront's boundary-copy traffic.

    ``copy_layers`` boundary layers are copied per update between the
    wavefront fronts; the extra bytes are charged to the shared cache as
    a per-update surcharge proportional to the surface-to-volume ratio of
    the block.
    """
    bz, by, bx = block_size
    cells = bz * by * bx
    surface = cells - max(0, bz - 2) * max(0, by - 2) * max(0, bx - 2)
    extra = 2 * W * copy_layers * surface / cells  # read + write per copy
    base = CodeBalance.pipelined("twogrid")
    return CodeBalance(
        name=f"wavefront(copies={copy_layers})",
        mem_load_bpc=base.mem_load_bpc,
        mem_writeback_bpc=base.mem_writeback_bpc,
        cache_bpc_update=base.cache_bpc_update + extra,
        resident_arrays=base.resident_arrays,
    )


def compare_wavefront(machine: MachineSpec,
                      shape: Sequence[int] = (300, 300, 300),
                      block_size: Tuple[int, int, int] = (20, 20, 120),
                      ) -> Tuple[float, float]:
    """(wavefront MLUP/s, pipelined MLUP/s) on one cache group.

    Same thread count and block geometry; the pipelined variant uses
    T = 2 and the compressed grid (its two structural advantages).
    """
    from ..sim.des_pipeline import simulate_pipelined  # late: avoid cycle

    t = machine.cores_per_socket
    wf_cfg = wavefront_config(t, block_size)
    wf = simulate_pipelined(machine, wf_cfg, shape,
                            balance=wavefront_balance(block_size)).mlups
    pipe_cfg = PipelineConfig(teams=1, threads_per_team=t,
                              updates_per_thread=2, block_size=block_size,
                              sync=RelaxedSpec(1, 4), storage="compressed")
    pipe = simulate_pipelined(machine, pipe_cfg, shape).mlups
    return wf, pipe
