"""The unified solver front-end: one call, interchangeable backends.

Shared-memory pipelined temporal blocking and the distributed hybrid
scheme execute the *same* algorithm — the difference is where the data
lives and how ghost values travel.  :func:`solve` makes that an argument
instead of an import decision::

    res = repro.solve(grid, field, cfg)                           # shared
    res = repro.solve(grid, field, cfg, topology=(2, 2, 1),
                      backend="simmpi")                           # 4 ranks
    res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                      backend="procmpi")                          # 2 processes

All calls return a :class:`~repro.core.pipeline.SolveResult`; on a
``(1, 1, 1)`` topology the backends produce bit-identical fields
(the degenerate distributed run has an empty exchange plan and drives
the identical executor schedule), and on any topology ``simmpi`` and
``procmpi`` are bit-identical to each other (same per-rank body, same
exchange plan — only the transport differs).

Backends
--------
``"shared"``
    One process, ``n`` teams of ``t`` threads (simulated stages) —
    :func:`repro.core.pipeline.run_pipelined`.
``"threads"``
    One process, one **real OS thread per pipeline stage**, gated by
    condition-variable sync counters — :func:`repro.threads.run_threaded`.
    Bit-identical to ``"shared"``; the schedule is certified by
    :func:`repro.analysis.assert_legal` unconditionally before any
    thread starts (a true-threads executor cannot rely on runtime
    interleaving checks alone).
``"simmpi"``
    One thread-backed simulated-MPI rank per subdomain —
    :func:`repro.dist.solver.distributed_jacobi_pipelined`.
``"procmpi"``
    One OS process per subdomain (:mod:`repro.dist.procmpi`), fields
    and halo rings in :mod:`multiprocessing.shared_memory` blocks —
    real rank overlap without an MPI installation.  A real MPI
    deployment implements the same :class:`repro.dist.comm.Comm`
    protocol (see :class:`repro.dist.comm.MPI4PyComm`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .core.parameters import PipelineConfig
from .core.pipeline import SolveResult, run_pipelined
from .grid.grid3d import Grid3D
from .kernels.stencils import StarStencil
from .obs.metrics import trace_metrics
from .obs.tracer import NULL_TRACER, Tracer

__all__ = ["BACKENDS", "solve", "submit", "map_jobs"]

#: Execution backends understood by :func:`solve`.
BACKENDS = ("shared", "threads", "simmpi", "procmpi")


def _check_topology(topology: Optional[Sequence[int]]) -> Tuple[int, int, int]:
    if topology is None:
        return (1, 1, 1)
    if len(topology) != 3:
        raise ValueError(
            f"topology must be a (Pz, Py, Px) triple, got {topology!r}")
    topo = tuple(int(p) for p in topology)
    if any(p < 1 for p in topo):
        raise ValueError(f"topology extents must be >= 1, got {topo}")
    return topo  # type: ignore[return-value]


def solve(
    grid: Grid3D,
    field: np.ndarray,
    config: PipelineConfig,
    topology: Optional[Sequence[int]] = None,
    backend: str = "shared",
    stencil: Optional[StarStencil] = None,
    engine: Optional[str] = None,
    validate: Union[bool, str] = True,
    trace: bool = False,
) -> SolveResult:
    """Advance ``field`` by ``config.total_updates`` levels on ``backend``.

    Parameters
    ----------
    grid, field, config:
        The problem and the pipelined temporal-blocking parameters, same
        as :func:`~repro.core.pipeline.run_pipelined`.
    topology:
        Process grid ``(Pz, Py, Px)``; defaults to ``(1, 1, 1)``.  The
        shared backend is single-process and rejects anything else.
    backend:
        ``"shared"``, ``"threads"``, ``"simmpi"`` or ``"procmpi"``
        (see module docstring).
    stencil:
        Optional radius-1 star stencil (defaults to the 7-point Jacobi).
    engine:
        Optional kernel-execution engine name (:mod:`repro.engine`);
        overrides ``config.engine``.  Engines are bit-identical, so
        this changes throughput, never the result — every backend
        dispatches the same engine registry per rank.  ``"auto"``
        resolves to the measured-best engine for this host, storage
        scheme and grid size from the perf database
        (:mod:`repro.perf.db`) — the static default when no
        measurements apply, so it is always safe.
    validate:
        ``True`` (default) keeps the runtime coverage checks of the
        executor.  ``"static"`` first certifies the schedule with the
        :mod:`repro.analysis` happens-before checker — raising
        :class:`~repro.analysis.StaticAnalysisError` with a witness on
        an illegal schedule — and then runs with the per-pass runtime
        checks switched off (the proof replaces the assertions).
        ``False`` skips both.
    trace:
        ``True`` records an observability trace (:mod:`repro.obs`):
        spans for every pass/block/engine-apply and halo-exchange
        phase, merged across ranks onto one timeline, returned as
        ``result.trace`` with the flat summary in ``result.metrics``.
        Tracing never changes the numbers — the result is bit-identical
        with tracing on or off — and when left off the instrumentation
        reduces to a guard-variable check.

    Returns
    -------
    SolveResult
        With the same field layout regardless of backend; communication
        counters are zero for the shared backend.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    if engine == "auto":
        # Resolve eagerly from the measured perf database: the static
        # default engine when this host has no applicable measurements.
        from .perf.db import resolve_auto_engine

        engine = resolve_auto_engine(config.storage, grid.shape)
    if engine is not None and engine != config.engine:
        config = replace(config, engine=engine)
    topo = _check_topology(topology)
    if validate not in (True, False, "static"):
        raise ValueError(
            f"validate must be True, False or 'static', got {validate!r}")
    runtime_validate = bool(validate) and validate != "static"
    if validate == "static":
        # Prove the schedule race/deadlock-free before touching the
        # field; the executor's runtime checks are then redundant.
        from .analysis import assert_legal

        radius = stencil.radius if stencil is not None else 1
        assert_legal(config, grid.shape, topo, radius=radius)
    if backend in ("shared", "threads") and topo != (1, 1, 1):
        raise ValueError(
            f"the {backend} backend is single-process; topology {topo} "
            "needs backend='simmpi' or 'procmpi'")
    tracer = Tracer(pid=0, label="driver") if trace else NULL_TRACER
    with tracer.span("solve", cat="solve", backend=backend,
                     topo=f"{topo[0]}x{topo[1]}x{topo[2]}"):
        if backend == "shared":
            result = run_pipelined(grid, field, config, stencil=stencil,
                                   validate=runtime_validate, tracer=tracer)
        elif backend == "threads":
            # run_threaded re-runs assert_legal itself, unconditionally —
            # real threads never launch on an uncertified schedule, no
            # matter what ``validate`` says.
            from .threads import run_threaded

            result = run_threaded(grid, field, config, stencil=stencil,
                                  validate=runtime_validate, tracer=tracer)
        else:
            # Imported lazily, mirroring the top-level re-exports: the
            # shared backend must work even where the distributed rail
            # is unavailable.
            from .dist.solver import distributed_jacobi_pipelined

            result = distributed_jacobi_pipelined(
                grid, field, topo, config, stencil=stencil,
                transport=backend, validate=runtime_validate, tracer=tracer)
    if trace:
        result.trace = tracer.finish()
        result.metrics = trace_metrics(result.trace)
    return result


def submit(grid: Grid3D, field: np.ndarray,
           config: Union[PipelineConfig, str],
           topology: Optional[Sequence[int]] = None,
           backend: str = "shared",
           stencil: Optional[StarStencil] = None,
           priority: int = 0,
           engine: Optional[str] = None):
    """Queue a solve on the process-wide service; returns a future.

    The asynchronous sibling of :func:`solve` — same arguments, plus a
    scheduling ``priority``, and ``config`` may be ``"auto"`` to let the
    service autotune the pipeline parameters.  Runs through
    :mod:`repro.serve`: persistent worker pools (warm procmpi ranks),
    duplicate coalescing, batching and the content-addressed result
    cache.  ``future.result()`` returns the identical
    :class:`~repro.core.pipeline.SolveResult` a direct ``solve`` call
    would have produced — bit-identical when served from cache.  Since
    engines of one semantics class are bit-identical, jobs differing
    only in ``engine`` share one cache entry (exactly like transports).
    """
    from .serve import submit as _submit

    if engine is not None and engine != "auto":
        if not isinstance(config, PipelineConfig):
            raise ValueError(
                "a concrete engine cannot be combined with config='auto'; "
                "the autotuner resolves the full configuration (pass "
                "engines=... to repro.autotune for an engine sweep, or "
                "engine='auto' for the measured-best engine)")
        if engine != config.engine:
            config = replace(config, engine=engine)
        engine = None
    return _submit(grid, field, config, topology=topology, backend=backend,
                   stencil=stencil, priority=priority, engine=engine)


def map_jobs(jobs: Iterable, timeout: Optional[float] = None,
             ) -> List[SolveResult]:
    """Run many :class:`~repro.serve.SolveJob`\\ s; results in order.

    Exported as ``repro.map``.  Fail-fast: waits for every job, then
    raises the first failure in submission order.
    """
    from .serve import map_jobs as _map_jobs

    return _map_jobs(jobs, timeout=timeout)
