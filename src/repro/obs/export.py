"""Chrome ``trace_events`` exporter and loader.

Writes the JSON Object Format understood by ``chrome://tracing`` /
Perfetto: a ``traceEvents`` array of complete ("X") events with
microsecond timestamps, plus metadata ("M") events naming the process
rows (driver, rank 0, rank 1, ...).  Counters and gauges travel in the
spec's free-form ``otherData`` so a dumped file round-trips through
:func:`load_chrome_trace` without loss (the schema test pins this).

Timestamps are re-based to the trace's earliest span, so files start at
``ts == 0`` regardless of the host's clock origin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .tracer import SpanRecord, Trace

__all__ = ["to_chrome", "from_chrome", "write_chrome_trace",
           "load_chrome_trace", "span_coverage"]

_US = 1e6  # trace_events timestamps are microseconds


def to_chrome(trace: Trace) -> Dict[str, object]:
    """The ``chrome://tracing`` JSON document for ``trace``."""
    t0 = trace.start
    events: List[Dict[str, object]] = []
    processes = dict(trace.processes)
    for pid in trace.pids():
        processes.setdefault(pid, f"pid {pid}")
    for pid in sorted(processes):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": processes[pid]}})
    for s in trace.spans:
        events.append({
            "name": s.name,
            "cat": s.cat or "repro",
            "ph": "X",
            "ts": (s.start - t0) * _US,
            "dur": s.duration * _US,
            "pid": s.pid,
            "tid": s.tid,
            "args": {k: v for k, v in s.args},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(trace.counters),
            "gauges": dict(trace.gauges),
        },
    }


def from_chrome(doc: Dict[str, object]) -> Trace:
    """Rebuild a :class:`Trace` from a ``trace_events`` document."""
    events = doc.get("traceEvents", [])
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    spans: List[SpanRecord] = []
    processes: Dict[int, str] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            processes[int(ev.get("pid", 0))] = str(
                ev.get("args", {}).get("name", ""))
        elif ph == "X":
            start = float(ev["ts"]) / _US
            spans.append(SpanRecord(
                name=str(ev["name"]), cat=str(ev.get("cat", "")),
                pid=int(ev.get("pid", 0)), tid=int(ev.get("tid", 0)),
                start=start, end=start + float(ev.get("dur", 0.0)) / _US,
                args=tuple(sorted(dict(ev.get("args", {})).items()))))
    other = doc.get("otherData", {}) or {}
    return Trace(spans=spans,
                 counters=dict(other.get("counters", {})),
                 gauges=dict(other.get("gauges", {})),
                 processes=processes)


def write_chrome_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` as ``chrome://tracing`` JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome(trace), indent=1, sort_keys=True),
                    encoding="utf-8")
    return path


def load_chrome_trace(path: Union[str, Path]) -> Trace:
    """Load a file written by :func:`write_chrome_trace`."""
    return from_chrome(json.loads(Path(path).read_text(encoding="utf-8")))


def span_coverage(trace: Trace) -> float:
    """Fraction of the trace's wall interval covered by >= 1 span.

    The acceptance bar for instrumented solves: the interval union of
    all spans must cover at least 95% of ``[trace.start, trace.end]``
    (the root span alone nearly guarantees it; this measures that no
    exporter or merge step dropped it).
    """
    if not trace.spans:
        return 0.0
    intervals = sorted((s.start, s.end) for s in trace.spans)
    total = trace.wall
    if total <= 0:
        return 1.0
    covered = 0.0
    cur_s, cur_e = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_e:
            covered += cur_e - cur_s
            cur_s, cur_e = s, e
        else:
            cur_e = max(cur_e, e)
    covered += cur_e - cur_s
    return covered / total
