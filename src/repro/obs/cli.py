"""``python -m repro.obs`` — traces, live monitoring, health views.

Subcommands::

    dump       print every span of a Chrome-trace JSON file as a table
    summarize  reduce a trace file to the flat metrics dict
    diff       compare the summarized metrics of two trace files
    monitor    run a small monitored workload; print/export its health
    top        render a Service.health() JSON snapshot as a terminal view

Examples::

    python -m repro.obs dump trace.json
    python -m repro.obs summarize trace.json
    python -m repro.obs diff before.json after.json
    python -m repro.obs monitor --jobs 6 --openmetrics metrics.txt --check
    python -m repro.obs top health.json

The trace files are the ``chrome://tracing`` JSON produced by
:func:`repro.obs.write_chrome_trace` (e.g. from
``repro.solve(..., trace=True)`` results) — load the same file in
``chrome://tracing`` or Perfetto for the visual timeline.  ``monitor``
is both a demo and CI's exporter tripwire: ``--check`` validates the
OpenMetrics exposition with :func:`repro.obs.validate_openmetrics` and
exits non-zero on any problem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..bench.reporting import banner, format_table
from .export import load_chrome_trace
from .metrics import trace_metrics
from .tracer import Trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect Chrome-trace JSON files produced by traced "
                    "solves (repro.solve(..., trace=True)) and drive the "
                    "live monitor.")
    sub = p.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="print every span as a table")
    dump.add_argument("trace", type=Path)
    dump.add_argument("--limit", type=int, default=0,
                      help="print at most N spans (0 = all)")

    summ = sub.add_parser("summarize",
                          help="reduce a trace to the flat metrics dict")
    summ.add_argument("trace", type=Path)

    diff = sub.add_parser("diff",
                          help="compare the summarized metrics of two traces")
    diff.add_argument("base", type=Path)
    diff.add_argument("new", type=Path)

    mon = sub.add_parser(
        "monitor",
        help="run a small monitored workload and report its health")
    mon.add_argument("--jobs", type=int, default=6,
                     help="solve jobs to run (default 6)")
    mon.add_argument("--size", type=int, default=12,
                     help="cubic grid edge for the demo problem (default 12)")
    mon.add_argument("--record", type=int, default=4,
                     help="flight-recorder ring size (default 4)")
    mon.add_argument("--seed", type=int, default=0,
                     help="RNG seed for the demo fields (default 0)")
    mon.add_argument("--openmetrics", type=Path, default=None,
                     help="write the OpenMetrics exposition here")
    mon.add_argument("--health", type=Path, default=None,
                     help="write the health snapshot JSON here")
    mon.add_argument("--check", action="store_true",
                     help="validate the OpenMetrics output; exit 1 on "
                          "problems")

    top = sub.add_parser(
        "top", help="render a Service.health() JSON snapshot")
    top.add_argument("health", type=Path)
    return p


def _load(path: Path):
    try:
        return load_chrome_trace(path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot read trace {path}: {exc}")


def _empty(trace: Trace) -> bool:
    """No spans *and* no counters: nothing was recorded at all."""
    return not trace.spans and not trace.counters


def _cmd_dump(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    t0 = trace.start
    spans = sorted(trace.spans, key=lambda s: (s.start, s.pid, s.tid))
    if args.limit > 0:
        spans = spans[:args.limit]
    rows = [[s.pid, s.tid, s.name, s.cat,
             (s.start - t0) * 1e3, s.duration * 1e3,
             " ".join(f"{k}={v}" for k, v in s.args)]
            for s in spans]
    print(banner(f"{args.trace} — {len(trace.spans)} span(s), "
                 f"{len(trace.pids())} process(es)"))
    print(format_table(["pid", "tid", "name", "cat", "t_ms", "dur_ms",
                        "args"], rows, floatfmt="10.3f"))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    if _empty(trace):
        # An all-zero metrics table would look like a measured run that
        # did nothing in zero seconds; say what actually happened.
        print(f"{args.trace}: no spans or counters recorded "
              "(empty trace — was tracing enabled?)")
        return 0
    metrics = trace_metrics(trace)
    print(banner(f"{args.trace} — summarized"))
    print(format_table(["metric", "value"],
                       [[name, value] for name, value in metrics.items()],
                       floatfmt="14.6f"))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    base_trace = _load(args.base)
    new_trace = _load(args.new)
    empties = [str(p) for p, t in ((args.base, base_trace),
                                   (args.new, new_trace)) if _empty(t)]
    if empties:
        for path in empties:
            print(f"{path}: no spans or counters recorded "
                  "(empty trace — was tracing enabled?)")
        print("nothing to diff")
        return 0
    base = trace_metrics(base_trace)
    new = trace_metrics(new_trace)
    rows = []
    for name in sorted(set(base) | set(new)):
        b = base.get(name)
        n = new.get(name)
        if b is None:
            rows.append([name, "-", n, "added"])
        elif n is None:
            rows.append([name, b, "-", "removed"])
        else:
            if b != 0:
                note = f"{(n - b) / abs(b):+.1%}"
            else:
                note = "=" if n == b else "changed"
            rows.append([name, b, n, note])
    print(banner(f"{args.base} -> {args.new}"))
    print(format_table(["metric", "base", "new", "delta"], rows,
                       floatfmt="14.6f"))
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import numpy as np

    from ..core.parameters import PipelineConfig, RelaxedSpec
    from ..grid.grid3d import Grid3D
    from ..serve.service import Service
    from .monitor import validate_openmetrics
    from .monitor.export import render_health

    if args.jobs < 1:
        raise SystemExit("error: --jobs must be >= 1")
    grid = Grid3D((args.size, args.size, args.size))
    rng = np.random.default_rng(args.seed)
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    # workers=0 + drain: the whole demo is deterministic scheduling on
    # this thread, so counter totals in the exports are reproducible.
    with Service(workers=0, monitor=True,
                 record_traces=args.record) as svc:
        for _ in range(args.jobs):
            svc.submit(grid, rng.standard_normal(grid.shape), cfg)
        svc.drain()
        assert svc.monitor is not None
        svc.monitor.sample()
        exposition = svc.monitor.openmetrics()
        health = svc.health()
    if args.openmetrics is not None:
        args.openmetrics.write_text(exposition)
    if args.health is not None:
        args.health.write_text(
            json.dumps(health, indent=2, sort_keys=True) + "\n")
    print(render_health(health))
    if args.check:
        problems = validate_openmetrics(exposition)
        if problems:
            for problem in problems:
                print(f"openmetrics: {problem}", file=sys.stderr)
            return 1
        print(f"openmetrics: valid "
              f"({len(exposition.splitlines())} lines)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .monitor.export import render_health

    try:
        health = json.loads(args.health.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"error: cannot read health snapshot {args.health}: {exc}")
    if not isinstance(health, dict):
        raise SystemExit(
            f"error: {args.health} is not a health snapshot object")
    print(render_health(health))
    return 0


_COMMANDS = {"dump": _cmd_dump, "summarize": _cmd_summarize,
             "diff": _cmd_diff, "monitor": _cmd_monitor, "top": _cmd_top}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
