"""``python -m repro.obs`` — dump, summarize and diff trace files.

Subcommands::

    dump       print every span of a Chrome-trace JSON file as a table
    summarize  reduce a trace file to the flat metrics dict
    diff       compare the summarized metrics of two trace files

Examples::

    python -m repro.obs dump trace.json
    python -m repro.obs summarize trace.json
    python -m repro.obs diff before.json after.json

The files are the ``chrome://tracing`` JSON produced by
:func:`repro.obs.write_chrome_trace` (e.g. from
``repro.solve(..., trace=True)`` results) — load the same file in
``chrome://tracing`` or Perfetto for the visual timeline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..bench.reporting import banner, format_table
from .export import load_chrome_trace
from .metrics import trace_metrics

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect Chrome-trace JSON files produced by traced "
                    "solves (repro.solve(..., trace=True)).")
    sub = p.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="print every span as a table")
    dump.add_argument("trace", type=Path)
    dump.add_argument("--limit", type=int, default=0,
                      help="print at most N spans (0 = all)")

    summ = sub.add_parser("summarize",
                          help="reduce a trace to the flat metrics dict")
    summ.add_argument("trace", type=Path)

    diff = sub.add_parser("diff",
                          help="compare the summarized metrics of two traces")
    diff.add_argument("base", type=Path)
    diff.add_argument("new", type=Path)
    return p


def _load(path: Path):
    try:
        return load_chrome_trace(path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot read trace {path}: {exc}")


def _cmd_dump(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    t0 = trace.start
    spans = sorted(trace.spans, key=lambda s: (s.start, s.pid, s.tid))
    if args.limit > 0:
        spans = spans[:args.limit]
    rows = [[s.pid, s.tid, s.name, s.cat,
             (s.start - t0) * 1e3, s.duration * 1e3,
             " ".join(f"{k}={v}" for k, v in s.args)]
            for s in spans]
    print(banner(f"{args.trace} — {len(trace.spans)} span(s), "
                 f"{len(trace.pids())} process(es)"))
    print(format_table(["pid", "tid", "name", "cat", "t_ms", "dur_ms",
                        "args"], rows, floatfmt="10.3f"))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    metrics = trace_metrics(trace)
    print(banner(f"{args.trace} — summarized"))
    print(format_table(["metric", "value"],
                       [[name, value] for name, value in metrics.items()],
                       floatfmt="14.6f"))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    base = trace_metrics(_load(args.base))
    new = trace_metrics(_load(args.new))
    rows = []
    for name in sorted(set(base) | set(new)):
        b = base.get(name)
        n = new.get(name)
        if b is None:
            rows.append([name, "-", n, "added"])
        elif n is None:
            rows.append([name, b, "-", "removed"])
        else:
            if b != 0:
                note = f"{(n - b) / abs(b):+.1%}"
            else:
                note = "=" if n == b else "changed"
            rows.append([name, b, n, note])
    print(banner(f"{args.base} -> {args.new}"))
    print(format_table(["metric", "base", "new", "delta"], rows,
                       floatfmt="14.6f"))
    return 0


_COMMANDS = {"dump": _cmd_dump, "summarize": _cmd_summarize,
             "diff": _cmd_diff}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
