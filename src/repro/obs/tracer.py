"""The tracer: nestable spans plus monotonic counters and gauges.

Design constraints, in order:

1. **Disabled tracing must cost nothing measurable.**  Every
   instrumentation point goes through a guard variable
   (:attr:`Tracer.enabled`) checked *first*; when it is false,
   :meth:`Tracer.span` returns the shared :data:`NULL_SPAN` singleton —
   no object is allocated, no clock is read, no lock is taken.  The
   module-level :func:`spans_started` counter increments only when a
   *real* span is created, which is what lets the test suite pin the
   no-op fast path with a counter assertion instead of a flaky
   wall-clock benchmark.
2. **Traces must survive process boundaries.**  A finished
   :class:`Trace` is a plain dataclass of primitives, picklable under
   every :mod:`multiprocessing` start method, so procmpi rank traces
   ride the existing result queues back to rank 0, where
   :meth:`Tracer.absorb` merges them onto one timeline.
3. **Span enter/exit must pair.**  Spans are context managers and the
   project lint (``python -m repro.analysis lint``) enforces that every
   ``.span(...)`` call in instrumented modules is the context expression
   of a ``with`` statement, so an exception can never leave a span open.

Timestamps come from :func:`time.perf_counter` and are *tracer-local*:
only differences within one tracer are meaningful.  Merging traces from
other processes therefore re-bases them (``Trace.shifted``) against an
anchor the parent recorded — correct under fork *and* spawn, where the
child's clock origin is not otherwise comparable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SpanRecord", "Trace", "Tracer", "NULL_SPAN", "NULL_TRACER",
           "spans_started"]

_alloc_lock = threading.Lock()
_spans_started = 0


def spans_started() -> int:
    """Real span objects allocated process-wide since import.

    The no-op fast path never touches this counter, so "tracing off
    allocates nothing" is an exact equality test, not a timing test.
    """
    return _spans_started


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: The singleton no-op span; identity-testable by the fast-path test.
NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (picklable, JSON-friendly primitives only)."""

    name: str
    cat: str
    pid: int
    tid: int
    start: float  # tracer-local seconds (perf_counter)
    end: float
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default


@dataclass
class Trace:
    """Everything one tracer recorded: spans, counters, gauges, labels.

    ``processes`` maps pid -> human label for the Chrome exporter's
    metadata events; after a distributed merge there is one entry per
    rank plus the driver.
    """

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    processes: Dict[int, str] = field(default_factory=dict)

    @property
    def start(self) -> float:
        return min((s.start for s in self.spans), default=0.0)

    @property
    def end(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    @property
    def wall(self) -> float:
        return self.end - self.start

    def pids(self) -> List[int]:
        return sorted({s.pid for s in self.spans})

    def shifted(self, dt: float, pid: Optional[int] = None) -> "Trace":
        """A copy with every timestamp moved by ``dt`` (and pid retagged).

        This is the re-basing primitive the distributed merge uses: a
        child process's clock origin is arbitrary, so its spans are
        slid onto the parent's timeline before absorption.
        """
        spans = [SpanRecord(name=s.name, cat=s.cat,
                            pid=(pid if pid is not None else s.pid),
                            tid=s.tid, start=s.start + dt, end=s.end + dt,
                            args=s.args)
                 for s in self.spans]
        procs = ({pid: lbl for _, lbl in self.processes.items()}
                 if pid is not None else dict(self.processes))
        return Trace(spans=spans, counters=dict(self.counters),
                     gauges=dict(self.gauges), processes=procs)


class _Span:
    """A live span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "tid", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 args: Tuple[Tuple[str, object], ...]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter()
        self._tracer._record(SpanRecord(
            name=self.name, cat=self.cat, pid=self._tracer.pid,
            tid=self.tid, start=self.start, end=end, args=self.args))
        return False


class _ThreadBuffer:
    """One thread's private span/counter sink inside a shared tracer."""

    __slots__ = ("records", "counters")

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}


class Tracer:
    """Collects spans, monotonic counters and gauges for one process.

    Thread-safe *and* contention-free on the hot path: the simmpi
    transport runs one rank per thread against per-rank tracers, the
    serving layer's worker threads may share one, and the
    ``backend="threads"`` executor has every pipeline stage recording
    into the **same** tracer concurrently.  Span records and counter
    bumps therefore go to per-thread buffers (``threading.local``),
    registered once per thread under the lock and merged by
    :meth:`finish` — a shared list behind one lock would serialise the
    stage threads on exactly the code that is supposed to measure their
    overlap, and unlocked sharing loses updates.  Within a thread the
    buffer preserves completion order, so single-threaded traces are
    byte-for-byte what the shared-list implementation produced.

    Gauges, process labels and :meth:`absorb` stay under the lock —
    they are rare, and gauges are last-write-wins so per-thread
    accumulation has no meaning for them.

    Disabled tracers (``enabled=False``) are permanent no-ops —
    :data:`NULL_TRACER` is the shared instance every instrumented code
    path defaults to, so hot loops carry exactly one attribute load and
    one branch when tracing is off.
    """

    def __init__(self, pid: int = 0, enabled: bool = True,
                 label: Optional[str] = None) -> None:
        self.pid = pid
        self.enabled = enabled
        self._records: List[SpanRecord] = []  # absorbed child spans only
        self._counters: Dict[str, float] = {}  # absorbed child counters only
        self._gauges: Dict[str, float] = {}
        self._processes: Dict[int, str] = {}
        if label is not None:
            self._processes[pid] = label
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffers: List[_ThreadBuffer] = []  # registration order

    # -- hot path ---------------------------------------------------------------

    def span(self, name: str, cat: str = "", tid: int = 0, **args):
        """A context-manager span; the no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        global _spans_started
        with _alloc_lock:
            _spans_started += 1
        return _Span(self, name, cat, tid, tuple(args.items()))

    def count(self, name: str, n: float = 1) -> None:
        """Bump a monotonic counter (no-op when disabled)."""
        if not self.enabled:
            return
        counters = self._buffer().counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    # -- assembly ---------------------------------------------------------------

    def _buffer(self) -> _ThreadBuffer:
        """This thread's private buffer, registered on first use.

        The buffer outlives its thread — the registry list keeps the
        reference, so :meth:`finish` still sees spans recorded by stage
        threads that have already been joined.
        """
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = _ThreadBuffer()
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def _record(self, record: SpanRecord) -> None:
        self._buffer().records.append(record)

    def label_process(self, pid: int, label: str) -> None:
        """Name a pid row for the Chrome exporter's metadata events."""
        if not self.enabled:
            return
        with self._lock:
            self._processes[pid] = label

    def absorb(self, trace: Trace, pid: int, at: float,
               label: Optional[str] = None) -> None:
        """Merge a child process's trace onto this tracer's timeline.

        ``at`` is this tracer's clock reading when the child was
        dispatched; the child's earliest span is aligned to it, which
        makes the merge correct under fork *and* spawn (the child's
        clock origin is never assumed comparable).  Counters add up;
        gauges keep the child's last value under a rank-scoped name.
        """
        if not self.enabled or trace is None:
            return
        child = trace.shifted(at - trace.start, pid=pid)
        with self._lock:
            self._records.extend(child.spans)
            for k, v in child.counters.items():
                self._counters[k] = self._counters.get(k, 0) + v
            for k, v in child.gauges.items():
                self._gauges[f"pid{pid}.{k}"] = v
            self._processes[pid] = label if label is not None else f"pid {pid}"

    def finish(self) -> Trace:
        """Snapshot everything recorded so far into a picklable Trace.

        Merges the per-thread buffers (in thread-registration order,
        each preserving its thread's completion order) after the
        absorbed child-process spans.  Non-destructive and idempotent:
        buffers are read, never cleared, so a second ``finish`` returns
        a superset snapshot, as before.
        """
        with self._lock:
            spans = list(self._records)
            counters = dict(self._counters)
            for buf in self._buffers:
                spans.extend(buf.records)
                for k, v in buf.counters.items():
                    counters[k] = counters.get(k, 0) + v
            return Trace(spans=spans,
                         counters=counters,
                         gauges=dict(self._gauges),
                         processes=dict(self._processes))


#: The process-wide disabled tracer instrumented code defaults to.
NULL_TRACER = Tracer(enabled=False)
