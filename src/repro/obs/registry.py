"""The metrics registry: named monotonic counters and gauges.

Where :class:`~repro.obs.tracer.Tracer` answers "where did *this
solve's* time go", the registry answers "what has *this process* done":
rank-process spawns, shared-memory segment creations, cache
hits/misses/evictions, queue depths.  Before this module those were
one-off module globals scattered over :mod:`repro.dist.procmpi`,
:mod:`repro.dist.shm` and :mod:`repro.serve.cache`; they now all route
through here (the old accessors remain as thin compatibility wrappers).

Counters are **events, not seconds** — deterministic for a fixed
workload on any host, which is what lets the perf harness and the test
suite gate on them.  The module-level :data:`REGISTRY` is the
process-wide default; components that need isolated numbers (each
:class:`~repro.serve.service.Service`, each
:class:`~repro.serve.cache.ResultCache`) own private
:class:`MetricsRegistry` instances and *additionally* mirror into the
global one.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["MetricsRegistry", "REGISTRY", "inc", "set_gauge", "counter",
           "gauge", "snapshot"]


class MetricsRegistry:
    """A thread-safe bag of named monotonic counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    def inc(self, name: str, n: float = 1) -> float:
        """Add ``n`` to counter ``name``; returns the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + n
            self._counters[name] = value
            return value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A point-in-time copy: ``{"counters": {...}, "gauges": {...}}``."""
        with self._lock:
            return {"counters": dict(self._counters),
                    "gauges": dict(self._gauges)}

    def reset(self) -> None:
        """Drop everything (tests only — counters are monotonic in use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


#: The process-wide registry behind the compatibility wrappers.
REGISTRY = MetricsRegistry()


def inc(name: str, n: float = 1) -> float:
    """Bump a counter on the process-wide registry."""
    return REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the process-wide registry."""
    REGISTRY.set_gauge(name, value)


def counter(name: str, default: float = 0) -> float:
    """Read a counter from the process-wide registry."""
    return REGISTRY.counter(name, default)


def gauge(name: str, default: float = 0.0) -> float:
    """Read a gauge from the process-wide registry."""
    return REGISTRY.gauge(name, default)


def snapshot() -> Dict[str, Dict[str, float]]:
    """Snapshot the process-wide registry."""
    return REGISTRY.snapshot()
