"""Differential hook: traced stage occupancy vs. DES prediction.

The paper validates its analytic models against measurements (Fig. 5/6);
ROADMAP's "turn the DES on ourselves" asks for the same loop around our
own runtime.  This module is the first closure of that loop: it takes a
*traced* solve (per-stage busy time from the block-update spans) and the
:class:`~repro.sim.des_pipeline.NodeSimReport` the calibrated
discrete-event simulator predicts for the identical configuration, and
compares each stage's **share of total busy time**.

Shares — not wall-clock occupancies — because the functional rail
*simulates* its pipeline stages on one thread: absolute seconds measure
the host interpreter, but the *distribution* of work across stages is a
property of the schedule itself, which both rails execute identically.
A stage whose traced share drifts from its predicted share is doing
unexpected work (or unexpected waiting) — exactly the signal straggler
detection in the serving fleet needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .metrics import stage_busy
from .tracer import Trace

__all__ = ["StageComparison", "compare_stage_occupancy",
           "predicted_stage_share"]


@dataclass(frozen=True)
class StageComparison:
    """One stage's traced-vs-predicted work share."""

    stage: int
    traced_share: float
    predicted_share: float

    @property
    def delta(self) -> float:
        return self.traced_share - self.predicted_share


def predicted_stage_share(report) -> Dict[int, float]:
    """Per-stage busy share implied by a DES ``NodeSimReport``.

    The DES reports per-stage *idle* time; a stage's busy time is
    ``total_time - idle_time[s]`` and shares normalise over stages.
    """
    busy = {int(s): max(report.total_time - t, 0.0)
            for s, t in report.idle_time.items()}
    total = sum(busy.values())
    if total <= 0:
        return {s: 0.0 for s in busy}
    return {s: b / total for s, b in busy.items()}


def compare_stage_occupancy(trace: Trace, report=None,
                            config=None,
                            shape: Optional[Sequence[int]] = None,
                            machine=None) -> List[StageComparison]:
    """Traced vs DES-predicted per-stage work shares, per stage.

    Either pass a ready ``report`` (a
    :class:`~repro.sim.des_pipeline.NodeSimReport`), or pass ``config``
    and ``shape`` (plus optionally a ``machine`` — default: the paper's
    Nehalem EP preset) and the DES runs here.
    """
    if report is None:
        if config is None or shape is None:
            raise ValueError(
                "compare_stage_occupancy needs either a NodeSimReport or "
                "(config, shape) to simulate one")
        # Imported lazily: the sim rail is heavy and the obs package
        # must stay importable (and cheap) everywhere, including inside
        # spawned rank processes.
        from ..machine.presets import nehalem_ep
        from ..sim.des_pipeline import simulate_pipelined

        report = simulate_pipelined(machine or nehalem_ep(), config,
                                    tuple(shape), passes=config.passes)
    predicted = predicted_stage_share(report)
    busy = stage_busy(trace)
    total = sum(busy.values())
    traced = ({s: b / total for s, b in busy.items()} if total > 0
              else {s: 0.0 for s in busy})
    stages = sorted(set(predicted) | set(traced))
    return [StageComparison(stage=s,
                            traced_share=traced.get(s, 0.0),
                            predicted_share=predicted.get(s, 0.0))
            for s in stages]
