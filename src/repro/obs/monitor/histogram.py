"""Deterministic fixed-bucket latency histograms (SLO quantiles).

The monitor's latency distributions are *fixed-bucket* histograms: the
bucket boundaries are a compile-time constant ladder, never adapted to
the data.  That buys the property the test suite and the perf gates
lean on: a histogram is a pure function of the observation sequence —
replaying the same observations produces bit-identical bucket counts,
sums and quantile reports on any host and any Python version (no
rebalancing, no sampling, no randomized sketches à la t-digest).

Quantiles are reported as the **upper edge of the bucket containing the
quantile rank** (the overflow bucket reports the observed maximum) —
the standard Prometheus-style histogram_quantile answer, deterministic
by construction.  Exactness is bounded by bucket resolution, which is
the documented trade for replayable CI gates.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_LATENCY_BOUNDS", "FixedHistogram"]

#: Upper bucket edges in seconds: a 1-2.5-5 ladder from 1 µs to 60 s.
#: Wide enough for queue waits (µs) and limplocked solves (tens of s);
#: an implicit +Inf bucket catches everything beyond.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class FixedHistogram:
    """A thread-safe histogram over a fixed ladder of bucket edges.

    ``bounds`` are the finite upper edges (inclusive, ascending); one
    extra overflow bucket covers ``(bounds[-1], +inf)``.  All state is
    integers and exact float sums, so two histograms fed the same
    sequence compare equal field-for-field.
    """

    def __init__(self, name: str, unit: str = "s",
                 bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or any(nxt <= prev
                            for prev, nxt in zip(edges, edges[1:])):
            raise ValueError("bounds must be non-empty and strictly ascending")
        self.name = name
        self.unit = unit
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)  # last = overflow
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def record(self, value: float) -> None:
        """Count one observation (``value`` in :attr:`unit`)."""
        v = float(value)
        # bisect by hand: the ladder is ~24 entries, and an explicit loop
        # keeps the bucket rule ("first edge >= value") in one place.
        idx = len(self.bounds)
        for i, edge in enumerate(self.bounds):
            if v <= edge:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    def replay(self, values: Sequence[float]) -> "FixedHistogram":
        """Record every value in order; returns self (replay helper)."""
        for v in values:
            self.record(v)
        return self

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """The upper edge of the bucket holding the ``q``-quantile rank.

        ``q`` in [0, 1].  Empty histogram → 0.0.  Ranks landing in the
        overflow bucket report the observed maximum (the tightest
        deterministic upper bound available).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            n = sum(self._counts)
            if n == 0:
                return 0.0
            rank = max(1, math.ceil(q * n))
            cum = 0
            for i, c in enumerate(self._counts):
                cum += c
                if cum >= rank:
                    if i < len(self.bounds):
                        return self.bounds[i]
                    return self._max
            return self._max  # pragma: no cover - rank <= n always hits

    def percentiles(self) -> Dict[str, float]:
        """The monitor's SLO report: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {"p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (finite buckets then overflow), a copy."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> Dict[str, object]:
        """Everything, as plain JSON-able types (health exports, tests)."""
        with self._lock:
            n = sum(self._counts)
            counts = list(self._counts)
            total = self._sum
            vmin: Optional[float] = self._min if n else None
            vmax: Optional[float] = self._max if n else None
        snap: Dict[str, object] = {
            "name": self.name, "unit": self.unit,
            "bounds": list(self.bounds), "counts": counts,
            "count": n, "sum": total, "min": vmin, "max": vmax,
        }
        snap.update(self.percentiles())
        return snap
