"""The Monitor: periodic registry sampling, histograms, policy probes.

One :class:`Monitor` watches a set of :class:`MetricsRegistry` sources
(the service's, the cache's, the process-wide one — anything
registered via :meth:`attach`).  Each :meth:`sample` stamps every
source into a :class:`~repro.obs.monitor.sampling.Sample` and appends
it to a bounded ring, so memory is constant no matter how long the
service runs.  Between samples, components push latency observations
into named :class:`FixedHistogram`\\ s via :meth:`observe` and the
monitor's injectable clock (:attr:`clock`) — the only sanctioned way to
time things in the serving layer (see the ``no-naked-perf-counter``
lint rule).

``clock`` is injectable for one load-bearing reason: determinism.
Under the default wall clock, observation *counts* are exact for a
fixed job stream but the values are host timings; a test that needs
bit-identical histograms across runs and Python versions injects a
deterministic clock and replays the same stream (see
``tests/test_monitor.py``).

Policy lives in **probes**: callables run at the *start* of every
sample (the service registers one that refreshes gauges, quarantines
flagged sessions and speculates on stuck jobs).  Sampling can be driven
manually (deterministic tests, ``workers=0`` mode) or by a background
thread (:meth:`start` / :meth:`stop`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

from ..registry import MetricsRegistry
from .histogram import DEFAULT_LATENCY_BOUNDS, FixedHistogram
from .recorder import FlightRecorder
from .sampling import Ring, Sample, monotime
from .straggler import StragglerDetector, StragglerPolicy

__all__ = ["Monitor"]


class Monitor:
    """Live sampling and SLO accounting over metrics registries."""

    def __init__(self, capacity: int = 240,
                 record_traces: int = 0,
                 policy: Optional[StragglerPolicy] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: The monitor's clock — every serving-layer timestamp comes
        #: from here.  Injectable; defaults to the monotonic wall clock.
        self.clock: Callable[[], float] = clock or monotime
        #: The monitor's own meta-registry (samples taken, observations
        #: recorded) — itself sampled like any other source.
        self.metrics = MetricsRegistry()
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(record_traces) if record_traces > 0 else None)
        self.detector = StragglerDetector(policy)
        self._sources: Dict[str, MetricsRegistry] = {"monitor": self.metrics}
        self._rings: Dict[str, Ring] = {"monitor": Ring(capacity)}
        self._hists: Dict[str, FixedHistogram] = {}
        self._probes: List[Callable[[], None]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- wiring --------------------------------------------------------------

    def attach(self, name: str, registry: MetricsRegistry) -> None:
        """Sample ``registry`` under ``name`` from now on."""
        with self._lock:
            if name in self._sources:
                raise ValueError(f"source {name!r} already attached")
            self._sources[name] = registry
            self._rings[name] = Ring(self.capacity)

    def add_probe(self, probe: Callable[[], None]) -> None:
        """Run ``probe()`` at the start of every :meth:`sample`."""
        with self._lock:
            self._probes.append(probe)

    def histogram(self, name: str, unit: str = "s",
                  bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
                  ) -> FixedHistogram:
        """The named histogram, created on first use."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = FixedHistogram(name, unit=unit,
                                                          bounds=bounds)
            return hist

    # -- recording -----------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """One latency observation into histogram ``name``."""
        self.histogram(name).record(value)
        self.metrics.inc("monitor.observations")

    def sample(self) -> Dict[str, Sample]:
        """Probes, then one stamped snapshot of every source.

        Returns the fresh samples by source name; each is also appended
        to that source's ring.
        """
        with self._lock:
            probes = list(self._probes)
        for probe in probes:
            probe()
        self.metrics.inc("monitor.samples")
        t = self.clock()
        with self._lock:
            sources = list(self._sources.items())
        out: Dict[str, Sample] = {}
        for name, registry in sources:
            snap = registry.snapshot()
            sample = Sample(t=t, counters=snap["counters"],
                            gauges=snap["gauges"])
            self._rings[name].push(sample)
            out[name] = sample
        return out

    # -- reading -------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Samples taken so far (deterministic for manual driving)."""
        return int(self.metrics.counter("monitor.samples"))

    @property
    def observations(self) -> int:
        return int(self.metrics.counter("monitor.observations"))

    def series(self, name: str) -> List[Sample]:
        """Retained samples of source ``name``, oldest first."""
        with self._lock:
            ring = self._rings.get(name)
        if ring is None:
            raise KeyError(f"no such source {name!r}; have "
                           f"{sorted(self._rings)}")
        return ring.items()

    def sources(self) -> List[str]:
        with self._lock:
            return sorted(self._sources)

    def histograms(self) -> List[FixedHistogram]:
        with self._lock:
            return [self._hists[n] for n in sorted(self._hists)]

    def openmetrics(self) -> str:
        """The OpenMetrics exposition of the latest state."""
        from .export import to_openmetrics

        with self._lock:
            sources = list(self._sources.items())
        merged_counters: Dict[str, float] = {}
        merged_gauges: Dict[str, float] = {}
        for name, registry in sources:
            snap = registry.snapshot()
            for k, v in snap["counters"].items():
                merged_counters[f"{name}.{k}"] = v
            for k, v in snap["gauges"].items():
                merged_gauges[f"{name}.{k}"] = v
        return to_openmetrics(merged_counters, merged_gauges,
                              self.histograms())

    # -- background sampling -------------------------------------------------

    def start(self, interval: float) -> None:
        """Sample every ``interval`` seconds on a daemon thread."""
        if interval <= 0:
            raise ValueError("interval must be > 0")
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("monitor already started")
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, args=(float(interval),),
                name="obs-monitor", daemon=True)
            self._thread.start()

    def _loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.sample()

    def stop(self) -> None:
        """Stop the background thread (idempotent; manual mode unaffected)."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()
