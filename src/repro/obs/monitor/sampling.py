"""Clock and sampling primitives for the live monitor.

Two deliberately tiny pieces:

* :func:`monotime` — **the** monotonic clock of the serving layer.  The
  ``no-naked-perf-counter`` lint rule bans direct ``time.perf_counter()``
  timing everywhere under ``repro.serve`` and ``repro.obs`` (ad-hoc
  timing is how unsampled, unexported latencies accumulate); this module
  and :mod:`repro.obs.tracer` are the allowlisted clock primitives all
  other code must route through.
* :class:`Ring` — a bounded, thread-safe ring buffer.  Everything the
  monitor retains (registry snapshots, flight-recorder traces) lives in
  rings so a service that runs for weeks holds a constant amount of
  monitoring state.

:class:`Sample` is one timestamped registry snapshot; the monitor's
rings are rings of these.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, TypeVar

__all__ = ["monotime", "Ring", "Sample"]

T = TypeVar("T")


def monotime() -> float:
    """Seconds on the process-local monotonic clock.

    The single sanctioned ``time.perf_counter`` call site of the
    serving/observability layers (with the Tracer's span clock); see the
    ``no-naked-perf-counter`` lint rule.
    """
    return time.perf_counter()


@dataclass(frozen=True)
class Sample:
    """One point-in-time registry snapshot, stamped with :func:`monotime`."""

    t: float
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)


class Ring:
    """A thread-safe bounded ring: push evicts the oldest past capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[T] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Total pushes ever (items seen, not items retained).
        self.pushed = 0

    def push(self, item: T) -> None:
        with self._lock:
            self._items.append(item)
            self.pushed += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self.items())

    def items(self) -> List[T]:
        """Oldest-to-newest copy of the retained items."""
        with self._lock:
            return list(self._items)

    def last(self) -> T:
        """The newest item; raises ``IndexError`` when empty."""
        with self._lock:
            return self._items[-1]
