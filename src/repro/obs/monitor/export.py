"""OpenMetrics text exposition and health-snapshot rendering.

:func:`to_openmetrics` turns registry snapshots plus fixed-bucket
histograms into the OpenMetrics text format Prometheus scrapes —
counters as ``<name>_total``, gauges plain, histograms as cumulative
``_bucket{le="..."}`` series with ``_sum``/``_count``, ``# EOF``
terminated.  :func:`validate_openmetrics` is the self-check CI runs
over the produced output (name charset, TYPE declarations, bucket
monotonicity, count consistency, EOF) so the exporter can never drift
from the format without a red build.

:func:`render_health` pretty-prints a ``Service.health()`` JSON
snapshot — the ``python -m repro.obs top`` verb.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Tuple

from ...bench.reporting import banner, format_table
from .histogram import FixedHistogram

__all__ = ["metric_name", "to_openmetrics", "validate_openmetrics",
           "render_health"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """A dotted repo metric name as a legal OpenMetrics metric name."""
    flat = _INVALID.sub("_", name.strip())
    if prefix:
        flat = f"{prefix}_{flat}"
    if not _NAME_OK.match(flat):
        flat = f"_{flat}"
    return flat


def _fmt(value: float) -> str:
    """Canonical sample-value rendering (integers without the .0)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def to_openmetrics(counters: Mapping[str, float],
                   gauges: Mapping[str, float],
                   histograms: Iterable[FixedHistogram] = (),
                   prefix: str = "repro") -> str:
    """The OpenMetrics text exposition of one monitoring snapshot."""
    lines: List[str] = []
    for name in sorted(counters):
        m = metric_name(name, prefix)
        lines.append(f"# TYPE {m} counter")
        lines.append(f"{m}_total {_fmt(counters[name])}")
    for name in sorted(gauges):
        m = metric_name(name, prefix)
        lines.append(f"# TYPE {m} gauge")
        lines.append(f"{m} {_fmt(gauges[name])}")
    for hist in histograms:
        m = metric_name(hist.name, prefix)
        if hist.unit == "s":
            m += "_seconds"
        lines.append(f"# TYPE {m} histogram")
        cum = 0
        for edge, count in zip(hist.bounds, hist.bucket_counts()):
            cum += count
            lines.append(f'{m}_bucket{{le="{edge:g}"}} {cum}')
        total = hist.count
        lines.append(f'{m}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{m}_sum {_fmt(hist.total)}")
        lines.append(f"{m}_count {total}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? (?P<value>[^ ]+)$")


def validate_openmetrics(text: str) -> List[str]:
    """Problems with an OpenMetrics exposition (empty list = valid).

    Checks the invariants our exporter promises: every sample belongs
    to a declared metric family, histogram buckets are cumulative and
    consistent with ``_count``, and the exposition is ``# EOF``
    terminated.  Not a full spec parser — a format tripwire for CI.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition does not end with '# EOF'")
    declared: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for i, line in enumerate(lines, 1):
        if not line:
            problems.append(f"line {i}: empty line inside exposition")
            continue
        if line.startswith("#"):
            parts = line.split()
            if parts[:2] == ["#", "TYPE"] and len(parts) == 4:
                family, kind = parts[2], parts[3]
                if not _NAME_OK.match(family):
                    problems.append(
                        f"line {i}: invalid metric name {family!r}")
                if family in declared:
                    problems.append(
                        f"line {i}: duplicate TYPE for {family!r}")
                declared[family] = kind
            elif line != "# EOF":
                problems.append(f"line {i}: unrecognised comment {line!r}")
            continue
        m = _SAMPLE.match(line)
        if m is None:
            problems.append(f"line {i}: unparsable sample {line!r}")
            continue
        name = m.group("name")
        family = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in declared and name not in declared:
            problems.append(
                f"line {i}: sample {name!r} has no preceding TYPE")
            continue
        try:
            value = float(m.group("value").replace("+Inf", "inf"))
        except ValueError:
            problems.append(f"line {i}: non-numeric value in {line!r}")
            continue
        if name.endswith("_bucket"):
            labels = m.group("labels") or ""
            le = re.search(r'le="([^"]+)"', labels)
            if le is None:
                problems.append(f"line {i}: bucket without an le label")
                continue
            edge = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
            buckets.setdefault(family, []).append((edge, value))
        elif name.endswith("_count"):
            counts[family] = value
    for family, series in buckets.items():
        edges = [e for e, _ in series]
        values = [v for _, v in series]
        if edges != sorted(edges):
            problems.append(f"{family}: bucket edges not ascending")
        if values != sorted(values):
            problems.append(f"{family}: bucket counts not cumulative")
        if edges and edges[-1] != float("inf"):
            problems.append(f"{family}: missing le=\"+Inf\" bucket")
        if family in counts and values and counts[family] != values[-1]:
            problems.append(
                f"{family}: _count {counts[family]:g} != +Inf bucket "
                f"{values[-1]:g}")
    return problems


# ---------------------------------------------------------------------------
# Health-snapshot rendering (the `top` CLI verb).
# ---------------------------------------------------------------------------

def render_health(health: Mapping[str, object]) -> str:
    """A terminal rendering of one ``Service.health()`` snapshot."""
    out: List[str] = []
    status = health.get("status", "?")
    out.append(banner(f"service health: {status}"))
    basics = [[k, health.get(k)] for k in
              ("workers", "queue_depth", "inflight") if k in health]
    sessions = health.get("sessions") or {}
    if isinstance(sessions, Mapping):
        basics += [[f"sessions.{k}", v] for k, v in sorted(sessions.items())]
    if basics:
        out.append(format_table(["field", "value"], basics))
    hists = health.get("histograms") or {}
    if isinstance(hists, Mapping) and hists:
        rows = [[name, h.get("count"), h.get("p50"), h.get("p95"),
                 h.get("p99"), h.get("max")]
                for name, h in sorted(hists.items())]
        out.append(banner("latency histograms (s)"))
        out.append(format_table(
            ["histogram", "count", "p50", "p95", "p99", "max"], rows,
            floatfmt="12.6f"))
    scores = health.get("stragglers") or []
    if scores:
        rows = [[s.get("worker"), s.get("jobs"), s.get("last_s"),
                 s.get("expected_s"), s.get("ratio"), s.get("over"),
                 "FLAGGED" if s.get("flagged") else "ok"]
                for s in scores]
        out.append(banner("workers (straggler scores)"))
        out.append(format_table(
            ["worker", "jobs", "last_s", "expected_s", "ratio", "over",
             "state"], rows, floatfmt="10.4f"))
    counters = health.get("counters") or {}
    if isinstance(counters, Mapping) and counters:
        out.append(banner("counters"))
        out.append(format_table(
            ["counter", "value"],
            [[k, v] for k, v in sorted(counters.items())]))
    return "\n".join(out)
