"""Straggler detection: score workers against the fleet and the DES.

The paper's pipeline model (Eq. 3/5) predicts *where time goes* for a
healthy schedule; a limplocked worker — degraded but not dead, the
failure mode crash-only handling cannot see — shows up as service times
that drift away from that prediction while every health check still
passes.  The detector closes the ROADMAP's "turn the DES on ourselves"
loop at the fleet level:

* every completed job contributes one ``(worker, service_time)``
  observation;
* a worker's **expected** service time is the fastest recent per-worker
  median in the fleet (the healthy reference — on a homogeneous pool
  every worker runs the same schedules, so the fastest median *is* the
  model-calibrated healthy rate);
* a worker whose observations exceed ``threshold ×`` expected for
  ``consecutive`` observations in a row is **flagged** — the policy
  automaton is deterministic, so the DES can predict the detection
  latency for a given degradation factor exactly
  (:func:`predict_detection_latency` over
  :func:`predict_limplock_ratio`), and the fault-injection battery pins
  observed == predicted;
* per-stage share drift against the DES
  (:func:`repro.obs.compare_stage_occupancy`) is the second signal:
  :meth:`StragglerDetector.check_trace` scores a flight-recorded trace
  and records the worst stage-share drift on the worker.

The detector only *scores*; policy actions (quarantine via
:meth:`repro.serve.pool.SessionPool.quarantine`, speculative
re-execution past :meth:`StragglerDetector.deadline`) live in the
service's monitor probe.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

__all__ = ["StragglerPolicy", "WorkerScore", "StragglerDetector",
           "predict_limplock_ratio", "predict_detection_latency"]


@dataclass(frozen=True)
class StragglerPolicy:
    """Knobs of the detection/quarantine/speculation automaton."""

    #: A job slower than ``threshold ×`` the fleet-expected service time
    #: counts as a degraded observation.
    threshold: float = 2.0
    #: Degraded observations *in a row* before the worker is flagged
    #: (one slow job is noise; a limplocked worker is slow every time).
    consecutive: int = 2
    #: Fleet observations required before any scoring happens at all.
    min_observations: int = 2
    #: Speculative re-execution deadline: a job in flight longer than
    #: ``speculation_factor ×`` expected is re-queued on a healthy
    #: worker (first completion wins; results are bit-identical by the
    #: backend contract, so the duplicate is pure latency insurance).
    speculation_factor: float = 4.0
    #: Worst acceptable per-stage busy-share drift |traced - DES|.
    share_drift: float = 0.25
    #: Recent observations retained per worker (median window).
    window: int = 16


@dataclass(frozen=True)
class WorkerScore:
    """One worker's health, as of the last observation."""

    worker: str
    jobs: int
    last_s: float
    expected_s: float
    #: last_s / expected_s (1.0 = healthy, inf = no expectation yet).
    ratio: float
    #: Current run of consecutive degraded observations.
    over: int
    flagged: bool
    #: Degraded observations it took to flag (None while healthy) —
    #: the quantity the DES predicts via its limplock prediction.
    flagged_after: Optional[int]
    #: Worst |traced - predicted| stage share seen (None = no trace scored).
    worst_share_drift: Optional[float]


class _WorkerState:
    __slots__ = ("times", "jobs", "last", "over", "flagged",
                 "flagged_after", "worst_drift")

    def __init__(self, window: int) -> None:
        self.times: Deque[float] = deque(maxlen=window)
        self.jobs = 0
        self.last = 0.0
        self.over = 0
        self.flagged = False
        self.flagged_after: Optional[int] = None
        self.worst_drift: Optional[float] = None

    def median(self) -> float:
        xs = sorted(self.times)
        n = len(xs)
        if n == 0:
            return math.inf
        mid = n // 2
        return xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])


class StragglerDetector:
    """Deterministic per-worker scoring over service-time observations."""

    def __init__(self, policy: Optional[StragglerPolicy] = None) -> None:
        self.policy = policy or StragglerPolicy()
        self._workers: Dict[str, _WorkerState] = {}
        self._observations = 0
        self._lock = threading.Lock()

    # -- observations --------------------------------------------------------

    def observe(self, worker: str, service_s: float) -> WorkerScore:
        """Account one completed job; returns the worker's fresh score.

        The expectation a job is judged against deliberately *excludes*
        the job itself (it is computed before insertion): the first
        observation on a cold fleet can never self-flag.
        """
        pol = self.policy
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = _WorkerState(pol.window)
            expected = self._expected_locked()
            self._observations += 1
            state.jobs += 1
            state.last = float(service_s)
            state.times.append(float(service_s))
            scorable = (self._observations > pol.min_observations
                        and math.isfinite(expected) and expected > 0)
            ratio = (service_s / expected if scorable else 1.0)
            if scorable and ratio > pol.threshold:
                state.over += 1
                if not state.flagged and state.over >= pol.consecutive:
                    state.flagged = True
                    state.flagged_after = state.over
            else:
                state.over = 0
            return self._score_locked(worker, state, expected)

    def check_trace(self, worker: str, trace, *, report=None, config=None,
                    shape: Optional[Sequence[int]] = None,
                    machine=None) -> float:
        """Score a job trace's stage-share drift against the DES.

        Returns the worst ``|traced_share - predicted_share|`` over the
        stages and records it on the worker (see
        :attr:`WorkerScore.worst_share_drift`).  Thin wrapper over
        :func:`repro.obs.compare_stage_occupancy` so flight-recorded
        timelines feed the same differential the post-hoc report uses.
        """
        from ..differential import compare_stage_occupancy

        comparisons = compare_stage_occupancy(trace, report=report,
                                              config=config, shape=shape,
                                              machine=machine)
        drift = max((abs(c.delta) for c in comparisons), default=0.0)
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = _WorkerState(
                    self.policy.window)
            if state.worst_drift is None or drift > state.worst_drift:
                state.worst_drift = drift
        return drift

    # -- scores --------------------------------------------------------------

    def _expected_locked(self) -> float:
        """Fleet-expected healthy service time: fastest recent median."""
        medians = [s.median() for s in self._workers.values() if s.times]
        return min(medians) if medians else math.inf

    def _score_locked(self, worker: str, state: _WorkerState,
                      expected: float) -> WorkerScore:
        ratio = (state.last / expected
                 if math.isfinite(expected) and expected > 0 else math.inf)
        return WorkerScore(worker=worker, jobs=state.jobs,
                           last_s=state.last, expected_s=expected,
                           ratio=ratio, over=state.over,
                           flagged=state.flagged,
                           flagged_after=state.flagged_after,
                           worst_share_drift=state.worst_drift)

    def expected(self) -> float:
        """Current fleet-expected service time (inf on a cold fleet)."""
        with self._lock:
            return self._expected_locked()

    def deadline(self) -> Optional[float]:
        """Speculation deadline in seconds, or None before calibration."""
        with self._lock:
            if self._observations < self.policy.min_observations:
                return None
            expected = self._expected_locked()
        if not math.isfinite(expected) or expected <= 0:
            return None
        return self.policy.speculation_factor * expected

    def scores(self) -> List[WorkerScore]:
        """Every worker's score, most suspicious (highest ratio) first."""
        with self._lock:
            expected = self._expected_locked()
            out = [self._score_locked(w, s, expected)
                   for w, s in self._workers.items()]
        return sorted(out, key=lambda s: (-s.ratio, s.worker))

    def degraded(self) -> List[str]:
        """Names of currently flagged workers (sorted)."""
        with self._lock:
            return sorted(w for w, s in self._workers.items() if s.flagged)


# ---------------------------------------------------------------------------
# The DES side of the differential: what *should* detection look like?
# ---------------------------------------------------------------------------

def predict_limplock_ratio(machine, config, shape: Sequence[int],
                           factor: float, passes: int = 1,
                           seed: int = 0) -> float:
    """DES-predicted service-time ratio of a limplocked worker.

    Runs the calibrated pipeline DES twice — once on ``machine``, once
    on :func:`repro.sim.costmodel.limplock`-degraded ``machine`` — and
    returns ``degraded_total_time / healthy_total_time``.  A limplock
    degrades every service rate of the node uniformly, so the ratio
    lands on ``factor`` up to the model's fixed costs; the detector's
    fault-injection battery asserts the *real* fleet's observed ratio
    and detection latency against exactly this prediction.
    """
    from ...sim.costmodel import limplock
    from ...sim.des_pipeline import simulate_pipelined

    healthy = simulate_pipelined(machine, config, tuple(shape),
                                 passes=passes, seed=seed)
    degraded = simulate_pipelined(limplock(machine, factor), config,
                                  tuple(shape), passes=passes, seed=seed)
    return degraded.total_time / healthy.total_time


def predict_detection_latency(ratio: float,
                              policy: Optional[StragglerPolicy] = None,
                              ) -> float:
    """Degraded observations until the policy automaton flags.

    For a worker whose every job runs at ``ratio ×`` the fleet-expected
    service time: ``policy.consecutive`` observations when the ratio
    clears the threshold, ``math.inf`` when it never will.  Deliberately
    the same automaton :meth:`StragglerDetector.observe` executes, so
    prediction and detection can only diverge if the *observed* ratio
    disagrees with the DES — which is precisely the differential signal.
    """
    pol = policy or StragglerPolicy()
    if ratio <= pol.threshold:
        return math.inf
    return float(pol.consecutive)
