"""The flight recorder: a bounded ring of recent per-job traces.

Global ``trace=True`` is the wrong tool for production diagnosis — it
must be on *before* the interesting job runs, and keeping it on forever
grows without bound.  The flight recorder inverts that: when enabled,
the service traces **every** job into a ring that only ever holds the
last N merged traces, so "why was that job slow five seconds ago?" is
answerable after the fact at a fixed memory cost.  Dumping a record
writes the standard Chrome ``trace_events`` JSON
(:func:`repro.obs.write_chrome_trace`) for Perfetto.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..export import write_chrome_trace
from ..tracer import Trace
from .sampling import Ring

__all__ = ["FlightRecord", "FlightRecorder"]


@dataclass(frozen=True)
class FlightRecord:
    """One completed job's timeline plus the context to find it again."""

    #: Monotonically increasing record number (never reused; survives
    #: ring eviction, so CLI references stay unambiguous).
    seq: int
    #: ``SolveJob.describe()`` — human-readable job identity.
    label: str
    #: Content key of the job (None for uncacheable jobs).
    key: Optional[str]
    #: Service time of the recorded execution, seconds.
    wall_s: float
    #: Worker that executed it (e.g. ``session-3``).
    worker: str
    #: ``ok`` | ``error`` | ``speculated`` (the winning duplicate).
    status: str
    #: The merged timeline (driver + every rank for procmpi jobs).
    trace: Trace


class FlightRecorder:
    """Keep the last ``capacity`` job traces; memory-bounded by design."""

    def __init__(self, capacity: int = 32) -> None:
        self._ring: Ring = Ring(capacity)
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._ring.capacity

    @property
    def recorded(self) -> int:
        """Total jobs ever recorded (including evicted ones)."""
        return self._ring.pushed

    def record(self, label: str, trace: Trace, wall_s: float,
               worker: str = "", key: Optional[str] = None,
               status: str = "ok") -> FlightRecord:
        with self._lock:
            seq = self._seq
            self._seq += 1
        rec = FlightRecord(seq=seq, label=label, key=key,
                           wall_s=float(wall_s), worker=worker,
                           status=status, trace=trace)
        self._ring.push(rec)
        return rec

    def records(self) -> List[FlightRecord]:
        """Retained records, oldest first."""
        return self._ring.items()

    def slowest(self, n: int = 1) -> List[FlightRecord]:
        """The ``n`` slowest retained jobs, slowest first."""
        return sorted(self.records(),
                      key=lambda r: (-r.wall_s, r.seq))[:max(0, n)]

    def find(self, seq: int) -> Optional[FlightRecord]:
        for rec in self.records():
            if rec.seq == seq:
                return rec
        return None

    def dump(self, seq: int, path: Union[str, Path]) -> FlightRecord:
        """Write record ``seq``'s timeline as Chrome-trace JSON."""
        rec = self.find(seq)
        if rec is None:
            raise KeyError(
                f"no retained flight record #{seq} (ring holds "
                f"{len(self._ring)} of {self.recorded} recorded)")
        write_chrome_trace(rec.trace, path)
        return rec
