"""repro.obs.monitor — live health monitoring for the serving fleet.

Where the rest of :mod:`repro.obs` explains a run *after the fact*
(traces, metrics dicts, differential reports), this subpackage watches
the serving layer *while it runs* and feeds policy:

* :class:`Monitor` — periodic, bounded-memory sampling of every
  attached :class:`~repro.obs.registry.MetricsRegistry` plus
  deterministic fixed-bucket latency histograms
  (:class:`FixedHistogram`: p50/p95/p99 on solve wall time and queue
  wait, bit-identical under replay);
* :class:`FlightRecorder` — the last N merged per-job traces, so any
  recent slow job's timeline is dumpable without global ``trace=True``;
* :class:`StragglerDetector` — per-worker service-time scoring against
  the fleet and the DES cost model (:func:`predict_limplock_ratio` /
  :func:`predict_detection_latency` close the ROADMAP's "turn the DES
  on ourselves" loop), driving session quarantine and speculative
  re-execution in :mod:`repro.serve`;
* OpenMetrics/Prometheus text exposition
  (:func:`to_openmetrics` + :func:`validate_openmetrics`) and the
  ``python -m repro.obs monitor``/``top`` CLI verbs.
"""

from .core import Monitor
from .export import (
    metric_name,
    render_health,
    to_openmetrics,
    validate_openmetrics,
)
from .histogram import DEFAULT_LATENCY_BOUNDS, FixedHistogram
from .recorder import FlightRecord, FlightRecorder
from .sampling import Ring, Sample, monotime
from .straggler import (
    StragglerDetector,
    StragglerPolicy,
    WorkerScore,
    predict_detection_latency,
    predict_limplock_ratio,
)

__all__ = [
    "Monitor",
    "FixedHistogram",
    "DEFAULT_LATENCY_BOUNDS",
    "FlightRecord",
    "FlightRecorder",
    "Ring",
    "Sample",
    "monotime",
    "StragglerDetector",
    "StragglerPolicy",
    "WorkerScore",
    "predict_limplock_ratio",
    "predict_detection_latency",
    "metric_name",
    "to_openmetrics",
    "validate_openmetrics",
    "render_health",
]
