"""Flat metrics derived from a trace: the ``SolveResult.metrics`` dict.

The tracer records *events*; this module reduces them to the flat
``{name: float}`` mapping attached to
:attr:`repro.SolveResult.metrics` (and therefore to
``SolveFuture.result().metrics``) and consumed by the perf harness and
the ``python -m repro.obs summarize`` CLI.

Two kinds of values coexist and are named so they cannot be confused:

* **counts** (``spans``, ``sync.blocked_polls``, ``exchange.messages``,
  ...) are deterministic for a fixed problem — the perf harness gates
  on these;
* **seconds / fractions** (``wall_s``, ``exchange_wait_frac``,
  ``stage.N.busy_s``) are host-clock measurements — informational only.
"""

from __future__ import annotations

from typing import Dict

from .export import span_coverage
from .tracer import Trace

__all__ = ["trace_metrics", "stage_busy", "stage_occupancy"]

#: Span names whose durations the summarizer singles out.
EXCHANGE_WAIT = "exchange.recv_wait"
STAGE_SPAN = "block"


def stage_busy(trace: Trace) -> Dict[int, float]:
    """Seconds spent in per-stage block-update spans, by stage."""
    busy: Dict[int, float] = {}
    for s in trace.spans:
        if s.name != STAGE_SPAN:
            continue
        stage = s.arg("stage")
        if stage is None:
            continue
        busy[int(stage)] = busy.get(int(stage), 0.0) + s.duration
    return busy


def stage_occupancy(trace: Trace) -> Dict[int, float]:
    """Each stage's share of the total per-stage busy time.

    Shares (not wall fractions) on purpose: the shared rail *simulates*
    stages on one thread, so wall occupancy would measure the schedule
    interleaver, not the work balance.  Shares are comparable between a
    traced run and the DES prediction — see :mod:`repro.obs.differential`.
    """
    busy = stage_busy(trace)
    total = sum(busy.values())
    if total <= 0:
        return {s: 0.0 for s in busy}
    return {s: t / total for s, t in busy.items()}


def trace_metrics(trace: Trace) -> Dict[str, float]:
    """Reduce ``trace`` to the flat metrics dict."""
    out: Dict[str, float] = {}
    out["spans"] = float(len(trace.spans))
    out["wall_s"] = trace.wall
    out["span_coverage"] = span_coverage(trace)
    out["ranks"] = float(len(trace.pids()))
    wait = sum(s.duration for s in trace.spans if s.name == EXCHANGE_WAIT)
    out["exchange_wait_s"] = wait
    out["exchange_wait_frac"] = wait / trace.wall if trace.wall > 0 else 0.0
    for stage, busy in sorted(stage_busy(trace).items()):
        out[f"stage.{stage}.busy_s"] = busy
    for stage, share in sorted(stage_occupancy(trace).items()):
        out[f"stage.{stage}.share"] = share
    for name, value in sorted(trace.counters.items()):
        out[name] = float(value)
    for name, value in sorted(trace.gauges.items()):
        out[f"gauge.{name}"] = float(value)
    return out
