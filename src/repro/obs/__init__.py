"""repro.obs — zero-dependency tracing and metrics across every rail.

The observability layer the paper implicitly assumes: the argument of
pipelined temporal blocking is about *where time goes* (sync-window
waits, halo exchange, in-cache block updates), so the runtime must be
able to show exactly that.  Four pieces:

* **Tracer** (:mod:`repro.obs.tracer`) — nestable spans plus monotonic
  counters and gauges, a no-op behind a guard variable when disabled
  (the zero-allocation fast path is pinned by a counter-based test).
  ``repro.solve(..., trace=True)`` threads one through the executor,
  the halo exchange, the engine layer and — for the distributed
  backends — every rank, whose traces are shipped back over the
  existing queues and merged onto one timeline under fork *and* spawn.
* **Registry** (:mod:`repro.obs.registry`) — process-wide named
  counters/gauges unifying what used to be ad-hoc module globals
  (``procmpi.process_spawns()``, ``shm.segment_creates()``, the
  ``ResultCache`` counters, the ``Service`` stats).
* **Exporters** — Chrome ``trace_events`` JSON
  (:func:`write_chrome_trace`, viewable in ``chrome://tracing`` /
  Perfetto), the flat ``SolveResult.metrics`` dict
  (:func:`trace_metrics`), and a ``python -m repro.obs`` CLI to
  dump/summarize/diff trace files.  The differential hook
  (:mod:`repro.obs.differential`) compares traced per-stage occupancy
  against the calibrated DES prediction — the first step of ROADMAP's
  "turn the DES on ourselves".
* **Monitor** (:mod:`repro.obs.monitor`) — the *live* half: bounded
  registry sampling, deterministic SLO histograms, a flight recorder of
  recent job traces, straggler detection differential-tested against
  the DES limplock prediction, and OpenMetrics/health exporters wired
  through :class:`repro.serve.Service`.

Typical use::

    res = repro.solve(grid, field, cfg, topology=(1, 1, 2),
                      backend="procmpi", trace=True)
    print(res.metrics["exchange_wait_frac"], res.metrics["spans"])
    repro.obs.write_chrome_trace(res.trace, "solve.json")
"""

from .differential import StageComparison, compare_stage_occupancy
from .export import (
    load_chrome_trace,
    span_coverage,
    to_chrome,
    write_chrome_trace,
)
from .metrics import stage_busy, stage_occupancy, trace_metrics
from .monitor import (
    FixedHistogram,
    FlightRecord,
    FlightRecorder,
    Monitor,
    StragglerDetector,
    StragglerPolicy,
    WorkerScore,
    predict_detection_latency,
    predict_limplock_ratio,
    to_openmetrics,
    validate_openmetrics,
)
from .registry import REGISTRY, MetricsRegistry
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Trace,
    Tracer,
    spans_started,
)

__all__ = [
    "Tracer",
    "Trace",
    "SpanRecord",
    "NULL_SPAN",
    "NULL_TRACER",
    "spans_started",
    "MetricsRegistry",
    "REGISTRY",
    "trace_metrics",
    "stage_busy",
    "stage_occupancy",
    "to_chrome",
    "write_chrome_trace",
    "load_chrome_trace",
    "span_coverage",
    "StageComparison",
    "compare_stage_occupancy",
    "Monitor",
    "FixedHistogram",
    "FlightRecord",
    "FlightRecorder",
    "StragglerDetector",
    "StragglerPolicy",
    "WorkerScore",
    "predict_limplock_ratio",
    "predict_detection_latency",
    "to_openmetrics",
    "validate_openmetrics",
]
