"""Grid substrate: regions, 3-D domains, block decomposition.

This package provides the geometric foundation shared by every execution
engine in the reproduction: immutable box algebra (:mod:`.region`), the
domain/boundary description (:mod:`.grid3d`) and the shift-aware block
decomposition (:mod:`.blocks`).  Distributed-memory domain decomposition
lives in :mod:`repro.dist.decomp` on top of these.
"""

from .region import Box, bounding_box, boxes_are_disjoint, boxes_partition
from .grid3d import DirichletBoundary, Grid3D, random_field
from .blocks import BlockDecomposition, block_count

__all__ = [
    "Box",
    "bounding_box",
    "boxes_are_disjoint",
    "boxes_partition",
    "DirichletBoundary",
    "Grid3D",
    "random_field",
    "BlockDecomposition",
    "block_count",
]
