"""Axis-aligned box (region) algebra for 3-D grids.

The pipelined temporal-blocking schedule of Wittmann/Hager/Wellein is, at
its core, arithmetic on axis-aligned boxes: a block region is *shifted* by
one cell per update ("Shifting the block by one cell in each direction
after an update avoids extra boundary copies", Sect. 1.3 of the paper) and
*clipped* against the computational domain and, in the distributed case,
against the shrinking multi-halo trapezoid.  This module provides the
immutable :class:`Box` type and the operations the scheduler needs.

Coordinates are *interior* cell coordinates: cell ``(0, 0, 0)`` is the
first interior (updatable) cell; the Dirichlet boundary ring lives at
coordinate ``-1`` and ``n`` in each dimension and is owned by the grid
object, not by boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = ["Box", "bounding_box", "boxes_are_disjoint", "boxes_partition"]

Coord = Tuple[int, int, int]


@dataclass(frozen=True)
class Box:
    """A half-open axis-aligned box ``[lo, hi)`` in 3-D cell coordinates.

    A box with ``hi[d] <= lo[d]`` in any dimension is *empty*; empty boxes
    are normal values (the schedule produces them for fully-clipped block
    regions) and all operations treat them consistently.

    Parameters
    ----------
    lo:
        Inclusive lower corner ``(z, y, x)``.
    hi:
        Exclusive upper corner ``(z, y, x)``.
    """

    lo: Coord
    hi: Coord

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def make(lo: Sequence[int], hi: Sequence[int]) -> "Box":
        """Build a box from any integer sequences (normalised to tuples)."""
        lo_t = (int(lo[0]), int(lo[1]), int(lo[2]))
        hi_t = (int(hi[0]), int(hi[1]), int(hi[2]))
        return Box(lo_t, hi_t)

    @staticmethod
    def from_shape(shape: Sequence[int]) -> "Box":
        """The box ``[0, shape)`` covering a whole interior of ``shape``."""
        return Box((0, 0, 0), (int(shape[0]), int(shape[1]), int(shape[2])))

    @staticmethod
    def empty() -> "Box":
        """A canonical empty box."""
        return Box((0, 0, 0), (0, 0, 0))

    # -- predicates ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True if the box contains no cells."""
        return any(self.hi[d] <= self.lo[d] for d in range(3))

    def contains(self, cell: Sequence[int]) -> bool:
        """True if ``cell`` lies inside the box."""
        return all(self.lo[d] <= cell[d] < self.hi[d] for d in range(3))

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` is fully inside this box (empty boxes always are)."""
        if other.is_empty:
            return True
        return all(
            self.lo[d] <= other.lo[d] and other.hi[d] <= self.hi[d]
            for d in range(3)
        )

    # -- measures ---------------------------------------------------------------

    @property
    def shape(self) -> Coord:
        """Edge lengths, clamped at zero for empty dimensions."""
        return tuple(max(0, self.hi[d] - self.lo[d]) for d in range(3))  # type: ignore[return-value]

    @property
    def ncells(self) -> int:
        """Number of cells in the box (0 if empty)."""
        s = self.shape
        return s[0] * s[1] * s[2]

    def surface_cells(self) -> int:
        """Number of cells on the one-cell-thick surface shell of the box."""
        if self.is_empty:
            return 0
        s = self.shape
        inner = tuple(max(0, e - 2) for e in s)
        return self.ncells - inner[0] * inner[1] * inner[2]

    # -- transformations ---------------------------------------------------------

    def shift(self, vec: Sequence[int]) -> "Box":
        """Translate the box by ``vec`` (may be negative per component)."""
        lo = (self.lo[0] + vec[0], self.lo[1] + vec[1], self.lo[2] + vec[2])
        hi = (self.hi[0] + vec[0], self.hi[1] + vec[1], self.hi[2] + vec[2])
        return Box(lo, hi)

    def grow(self, layers: int) -> "Box":
        """Expand the box by ``layers`` cells on every face (negative shrinks)."""
        lo = tuple(self.lo[d] - layers for d in range(3))
        hi = tuple(self.hi[d] + layers for d in range(3))
        return Box(lo, hi)  # type: ignore[arg-type]

    def grow_vec(self, per_dim: Sequence[int]) -> "Box":
        """Expand by ``per_dim[d]`` layers on both faces of dimension ``d``."""
        lo = tuple(self.lo[d] - per_dim[d] for d in range(3))
        hi = tuple(self.hi[d] + per_dim[d] for d in range(3))
        return Box(lo, hi)  # type: ignore[arg-type]

    def clip(self, other: "Box") -> "Box":
        """Intersect with ``other`` (alias of :meth:`intersect`)."""
        return self.intersect(other)

    def intersect(self, other: "Box") -> "Box":
        """The intersection box (possibly empty)."""
        lo = tuple(max(self.lo[d], other.lo[d]) for d in range(3))
        hi = tuple(min(self.hi[d], other.hi[d]) for d in range(3))
        return Box(lo, hi)  # type: ignore[arg-type]

    def face(self, dim: int, side: int, width: int = 1) -> "Box":
        """A slab of ``width`` layers hugging one face of the box.

        Parameters
        ----------
        dim:
            Dimension index 0..2.
        side:
            ``-1`` for the low face, ``+1`` for the high face.
        width:
            Slab thickness in cells.
        """
        if side not in (-1, 1):
            raise ValueError(f"side must be -1 or +1, got {side}")
        lo = list(self.lo)
        hi = list(self.hi)
        if side < 0:
            hi[dim] = min(hi[dim], lo[dim] + width)
        else:
            lo[dim] = max(lo[dim], hi[dim] - width)
        return Box(tuple(lo), tuple(hi))  # type: ignore[arg-type]

    def outer_face(self, dim: int, side: int, width: int = 1) -> "Box":
        """A slab of ``width`` layers *outside* the box, adjacent to one face."""
        if side not in (-1, 1):
            raise ValueError(f"side must be -1 or +1, got {side}")
        lo = list(self.lo)
        hi = list(self.hi)
        if side < 0:
            hi[dim] = lo[dim]
            lo[dim] = lo[dim] - width
        else:
            lo[dim] = hi[dim]
            hi[dim] = hi[dim] + width
        return Box(tuple(lo), tuple(hi))  # type: ignore[arg-type]

    # -- numpy interop -----------------------------------------------------------

    def slices(self, offset: Sequence[int] = (0, 0, 0)) -> Tuple[slice, slice, slice]:
        """Slices addressing the box in an array whose origin is ``-offset``.

        For an array where interior cell ``(0,0,0)`` is stored at index
        ``offset``, ``arr[box.slices(offset)]`` views exactly the box.
        Empty boxes produce zero-length slices.
        """
        return tuple(
            slice(self.lo[d] + offset[d], max(self.lo[d], self.hi[d]) + offset[d])
            for d in range(3)
        )  # type: ignore[return-value]

    def iter_cells(self) -> Iterator[Coord]:
        """Iterate over all cell coordinates (small boxes only; O(ncells))."""
        for z in range(self.lo[0], self.hi[0]):
            for y in range(self.lo[1], self.hi[1]):
                for x in range(self.lo[2], self.hi[2]):
                    yield (z, y, x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({self.lo}..{self.hi})"


def bounding_box(boxes: Sequence[Box]) -> Box:
    """Smallest box containing every non-empty box in ``boxes``.

    Returns an empty box when there is nothing to bound.
    """
    nonempty = [b for b in boxes if not b.is_empty]
    if not nonempty:
        return Box.empty()
    lo = tuple(min(b.lo[d] for b in nonempty) for d in range(3))
    hi = tuple(max(b.hi[d] for b in nonempty) for d in range(3))
    return Box(lo, hi)  # type: ignore[arg-type]


def boxes_are_disjoint(boxes: Sequence[Box]) -> bool:
    """True if no two non-empty boxes intersect (O(n^2), for validation)."""
    nonempty = [b for b in boxes if not b.is_empty]
    for i in range(len(nonempty)):
        for j in range(i + 1, len(nonempty)):
            if not nonempty[i].intersect(nonempty[j]).is_empty:
                return False
    return True


def boxes_partition(boxes: Sequence[Box], domain: Box) -> bool:
    """True if the boxes exactly partition ``domain``.

    Used by the schedule validator: the shifted-and-clipped block regions of
    one time level must tile the (active) domain exactly once.
    """
    if not boxes_are_disjoint(boxes):
        return False
    covered = sum(b.intersect(domain).ncells for b in boxes)
    outside = sum(b.ncells - b.intersect(domain).ncells for b in boxes)
    return covered == domain.ncells and outside == 0
