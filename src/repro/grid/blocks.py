"""Block decomposition and traversal for (temporal) blocking schemes.

The pipelined scheme walks the domain block by block in lexicographic
traversal order.  Each pipeline stage ``s`` performs updates
``u = s*T+1 .. (s+1)*T`` on every block, and the update-``u`` region of a
block is the block box shifted by ``-(u-1)`` cells along each *tiled*
dimension (Sect. 1.3: "Shifting the block by one cell in each direction
after an update").  Because of the shift, the traversal must be extended
past the last real block so that the trailing (clipped) regions drain the
high end of the domain; :class:`BlockDecomposition` computes the extension
from the maximum shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .region import Box

__all__ = ["BlockDecomposition", "block_count"]


def block_count(extent: int, block: int) -> int:
    """Number of blocks of size ``block`` needed to tile ``extent`` cells."""
    if block < 1:
        raise ValueError("block size must be >= 1")
    return -(-extent // block)


@dataclass(frozen=True)
class BlockDecomposition:
    """Tiling of a 3-D domain into blocks, with shift-aware traversal.

    Parameters
    ----------
    domain:
        The interior box being updated (usually ``grid.domain``; for
        distributed trapezoids, the maximal active region).
    block_size:
        Block extents ``(bz, by, bx)``.  An entry that equals or exceeds
        the domain extent makes that dimension *untiled* (a single block
        spans it and no shift is applied there).
    max_shift:
        The largest region shift the schedule will request, i.e.
        ``n_stages * T - 1`` for a pipeline of that depth.  Determines how
        many drain blocks extend the traversal.
    """

    domain: Box
    block_size: Tuple[int, int, int]
    max_shift: int = 0

    def __post_init__(self) -> None:
        if self.domain.is_empty:
            raise ValueError("cannot decompose an empty domain")
        if any(int(b) < 1 for b in self.block_size):
            raise ValueError(f"block sizes must be >= 1, got {self.block_size}")
        if self.max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        object.__setattr__(self, "block_size",
                           tuple(int(b) for b in self.block_size))

    # -- derived geometry -------------------------------------------------------

    @property
    def extents(self) -> Tuple[int, int, int]:
        """Domain edge lengths."""
        return self.domain.shape

    @property
    def tiled_dims(self) -> Tuple[int, ...]:
        """Dimensions actually cut into more than one block (shifted dims)."""
        return tuple(d for d in range(3)
                     if self.block_size[d] < self.extents[d])

    @property
    def shift_vec(self) -> Tuple[int, int, int]:
        """Unit shift vector: 1 in each tiled dimension, 0 elsewhere."""
        tiled = set(self.tiled_dims)
        return tuple(1 if d in tiled else 0 for d in range(3))  # type: ignore[return-value]

    @property
    def base_counts(self) -> Tuple[int, int, int]:
        """Blocks per dimension without drain extension."""
        return tuple(block_count(self.extents[d], self.block_size[d])
                     for d in range(3))  # type: ignore[return-value]

    @property
    def extended_counts(self) -> Tuple[int, int, int]:
        """Blocks per dimension including drain blocks for the max shift.

        Along a tiled dimension the last region at shift ``S`` is
        ``[k*b - S, (k+1)*b - S)``; it still intersects the domain while
        ``k*b - S < n``, so blocks run up to ``ceil((n + S) / b) - 1``.
        """
        out = []
        for d in range(3):
            n, b = self.extents[d], self.block_size[d]
            if self.block_size[d] < n:
                out.append(block_count(n + self.max_shift, b))
            else:
                out.append(block_count(n, b))
        return tuple(out)  # type: ignore[return-value]

    @property
    def n_traversal_blocks(self) -> int:
        """Total traversal length (shared by every pipeline stage)."""
        c = self.extended_counts
        return c[0] * c[1] * c[2]

    @property
    def n_base_blocks(self) -> int:
        """Number of real (unshifted) blocks tiling the domain."""
        c = self.base_counts
        return c[0] * c[1] * c[2]

    # -- block boxes ------------------------------------------------------------

    def block_index(self, traversal_idx: int) -> Tuple[int, int, int]:
        """Map a linear traversal index to a block index triple (z-major)."""
        c = self.extended_counts
        if not (0 <= traversal_idx < c[0] * c[1] * c[2]):
            raise IndexError(f"traversal index {traversal_idx} out of range")
        k2 = traversal_idx % c[2]
        rest = traversal_idx // c[2]
        k1 = rest % c[1]
        k0 = rest // c[1]
        return (k0, k1, k2)

    def block_box(self, k: Sequence[int]) -> Box:
        """The *unshifted* box of block ``k`` (not clipped to the domain).

        Drain blocks lie partially or fully above the domain; clipping
        happens after the shift, in :meth:`region`.
        """
        lo = tuple(self.domain.lo[d] + k[d] * self.block_size[d] for d in range(3))
        hi = tuple(lo[d] + self.block_size[d] for d in range(3))
        return Box(lo, hi)  # type: ignore[arg-type]

    def region(self, traversal_idx: int, shift: int,
               active: Optional[Box] = None, mirror: bool = False) -> Box:
        """Update region: block box shifted by ``-shift`` along tiled dims.

        The result is clipped to ``active`` (defaults to the domain).  This
        is the geometric core of the scheme; everything else — coverage,
        two-buffer legality, no-boundary-copies — follows from it and is
        machine-checked by the executor.

        ``mirror=True`` reflects the region about the domain centre along
        the tiled dimensions.  This realises the paper's "reverse loops
        (running from large to small indices) on all even sweeps" for the
        compressed grid: traversal index 0 then starts at the *high* end
        and regions shift upward, matching the unwinding storage offsets.
        """
        if shift < 0 or shift > self.max_shift:
            raise ValueError(f"shift {shift} outside [0, {self.max_shift}]")
        k = self.block_index(traversal_idx)
        vec = self.shift_vec
        box = self.block_box(k).shift(tuple(-shift * vec[d] for d in range(3)))
        if mirror:
            box = self._mirror(box)
        return box.intersect(active if active is not None else self.domain)

    def _mirror(self, box: Box) -> Box:
        """Reflect a box about the domain centre along tiled dimensions."""
        lo = list(box.lo)
        hi = list(box.hi)
        for d in self.tiled_dims:
            span = self.domain.lo[d] + self.domain.hi[d]
            lo[d], hi[d] = span - box.hi[d], span - box.lo[d]
        return Box(tuple(lo), tuple(hi))  # type: ignore[arg-type]

    def level_regions(self, shift: int, active: Optional[Box] = None,
                      mirror: bool = False) -> List[Box]:
        """All (non-empty) regions of one shift level, for partition checks."""
        out = []
        for idx in range(self.n_traversal_blocks):
            r = self.region(idx, shift, active, mirror)
            if not r.is_empty:
                out.append(r)
        return out

    def iter_traversal(self) -> Iterator[int]:
        """Linear traversal indices in pipeline order."""
        return iter(range(self.n_traversal_blocks))

    # -- sizes for cost models -----------------------------------------------------

    def block_bytes(self, itemsize: int = 8, arrays: int = 1) -> int:
        """Nominal bytes of one (full) block for one or more field arrays."""
        b = self.block_size
        return b[0] * b[1] * b[2] * itemsize * arrays
