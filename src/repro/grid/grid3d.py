"""3-D computational domain with Dirichlet boundary ring.

The paper's Jacobi solver (Eq. 1) updates the *interior* of a cubic domain
while a one-cell boundary ring supplies fixed (Dirichlet) values.  In the
original C code the ring is materialised as ghost cells of the arrays; here
the ring is owned by a :class:`DirichletBoundary` object and the execution
engines *patch* stencil reads that fall outside the interior.  This keeps
the two-grid and compressed-grid storage schemes free of ghost-layer
bookkeeping while remaining bit-equivalent to the ghost-cell formulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .region import Box

__all__ = ["DirichletBoundary", "Grid3D", "random_field"]

FaceKey = Tuple[int, int]  # (dim, side) with side in {-1, +1}
BoundaryFunc = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


class DirichletBoundary:
    """Fixed-value boundary for a 3-D interior domain.

    The boundary conceptually occupies the one-cell ring around the
    interior: coordinates ``-1`` and ``n_d`` in each dimension ``d``.  Values
    may be

    * a single scalar (same value on every face),
    * per-face scalars via ``faces={(dim, side): value}``, or
    * a callable ``f(z, y, x) -> values`` evaluated on boundary-cell
      coordinates (arrays broadcast together), for spatially varying data.

    Boundary values are immutable during a solve, which is what makes them
    readable at *any* time level by the temporal-blocking engines.
    """

    def __init__(
        self,
        value: float = 0.0,
        faces: Optional[Dict[FaceKey, float]] = None,
        func: Optional[BoundaryFunc] = None,
    ) -> None:
        self.default = float(value)
        self.faces: Dict[FaceKey, float] = dict(faces or {})
        self.func = func
        for (dim, side) in self.faces:
            if dim not in (0, 1, 2) or side not in (-1, 1):
                raise ValueError(f"bad face key {(dim, side)}")

    def face_value(self, dim: int, side: int) -> float:
        """Scalar value of a face (ignores ``func``)."""
        return self.faces.get((dim, side), self.default)

    def values(self, box: Box, dtype=np.float64) -> np.ndarray:
        """Boundary values for the cells of ``box``.

        ``box`` must consist purely of boundary cells of one face, i.e. be
        degenerate (width 1) in exactly the dimension that sticks out of the
        interior.  The caller (storage gather) guarantees this; we only need
        the coordinates to evaluate ``func`` or pick the face constant.
        """
        shape = box.shape
        if self.func is not None:
            z = np.arange(box.lo[0], box.hi[0]).reshape(-1, 1, 1)
            y = np.arange(box.lo[1], box.hi[1]).reshape(1, -1, 1)
            x = np.arange(box.lo[2], box.hi[2]).reshape(1, 1, -1)
            out = np.broadcast_to(np.asarray(self.func(z, y, x), dtype=dtype), shape)
            return np.ascontiguousarray(out)
        # Identify which face the box hugs to pick the per-face constant.
        val = self.default
        for dim in range(3):
            if box.hi[dim] - box.lo[dim] == 1:
                if box.lo[dim] < 0:
                    val = self.face_value(dim, -1)
                    break
                # side determined by caller context; high faces have lo >= n,
                # but `values` does not know n, so rely on per-face scalars
                # stored for the positive side when lo > 0.
                if (dim, 1) in self.faces and box.lo[dim] > 0:
                    val = self.face_value(dim, 1)
                    break
        return np.full(shape, val, dtype=dtype)

    def values_for_face(self, dim: int, side: int, box: Box, dtype=np.float64) -> np.ndarray:
        """Boundary values for ``box`` known to lie on face ``(dim, side)``.

        This is the precise entry point used by the execution engines: the
        face identity is passed explicitly, so per-face constants are always
        resolved correctly (unlike :meth:`values`, which has to guess for
        high faces).
        """
        if self.func is not None:
            return self.values(box, dtype=dtype)
        return np.full(box.shape, self.face_value(dim, side), dtype=dtype)


InitSpec = Union[float, np.ndarray, Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]]


class Grid3D:
    """Description of a 3-D Jacobi problem: interior shape + boundary + init.

    ``Grid3D`` deliberately does **not** own the solution arrays — the
    storage schemes (two-grid, compressed grid) of
    :mod:`repro.core.storage` do, because *where* values live at a given
    time level is exactly what those schemes vary.

    Parameters
    ----------
    shape:
        Interior extents ``(nz, ny, nx)``; the contiguous ("x") dimension is
        last, matching the paper's long-inner-loop layout.
    boundary:
        Dirichlet boundary ring; defaults to all-zero.
    dtype:
        Floating dtype of the fields (paper uses double precision).
    """

    def __init__(
        self,
        shape: Sequence[int],
        boundary: Optional[DirichletBoundary] = None,
        dtype=np.float64,
    ) -> None:
        if len(shape) != 3 or any(int(s) < 1 for s in shape):
            raise ValueError(f"shape must be three positive extents, got {shape!r}")
        self.shape: Tuple[int, int, int] = (int(shape[0]), int(shape[1]), int(shape[2]))
        self.boundary = boundary if boundary is not None else DirichletBoundary(0.0)
        self.dtype = np.dtype(dtype)

    @property
    def domain(self) -> Box:
        """The interior as a box ``[0, shape)``."""
        return Box.from_shape(self.shape)

    @property
    def ncells(self) -> int:
        """Number of interior cells."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    def make_field(self, init: InitSpec = 0.0) -> np.ndarray:
        """Materialise an interior field from a scalar, array or callable."""
        if callable(init):
            z = np.arange(self.shape[0]).reshape(-1, 1, 1)
            y = np.arange(self.shape[1]).reshape(1, -1, 1)
            x = np.arange(self.shape[2]).reshape(1, 1, -1)
            arr = np.asarray(init(z, y, x), dtype=self.dtype)
            return np.ascontiguousarray(np.broadcast_to(arr, self.shape)).copy()
        if isinstance(init, np.ndarray):
            if init.shape != self.shape:
                raise ValueError(f"init shape {init.shape} != grid shape {self.shape}")
            return np.ascontiguousarray(init.astype(self.dtype, copy=True))
        return np.full(self.shape, float(init), dtype=self.dtype)

    def padded(self, field: np.ndarray) -> np.ndarray:
        """Interior field embedded in a ghost ring filled with boundary values.

        Used by the reference sweeps; ring *edges/corners* are filled too
        (by extending faces in dimension order) although 7-point star
        stencils never read them.
        """
        if field.shape != self.shape:
            raise ValueError("field shape mismatch")
        n = self.shape
        out = np.zeros((n[0] + 2, n[1] + 2, n[2] + 2), dtype=self.dtype)
        out[1:-1, 1:-1, 1:-1] = field
        self.fill_ghost_ring(out)
        return out

    def fill_ghost_ring(self, padded: np.ndarray) -> None:
        """(Re)fill the one-cell ghost ring of ``padded`` with boundary values."""
        n = self.shape
        b = self.boundary
        interior = Box.from_shape(n)
        for dim in range(3):
            for side in (-1, 1):
                face_box = interior.outer_face(dim, side, 1)
                vals = b.values_for_face(dim, side, face_box, dtype=self.dtype)
                sl = [slice(1, n[d] + 1) for d in range(3)]
                sl[dim] = slice(0, 1) if side < 0 else slice(n[dim] + 1, n[dim] + 2)
                padded[tuple(sl)] = vals
        # Edges/corners: copy from adjacent faces so generic inspect tools see
        # finite values; star stencils never read these.
        padded[0, 0, :] = padded[0, 1, :]
        padded[0, -1, :] = padded[0, -2, :]
        padded[-1, 0, :] = padded[-1, 1, :]
        padded[-1, -1, :] = padded[-1, -2, :]
        padded[:, 0, 0] = padded[:, 0, 1]
        padded[:, 0, -1] = padded[:, 0, -2]
        padded[:, -1, 0] = padded[:, -1, 1]
        padded[:, -1, -1] = padded[:, -1, -2]
        padded[0, :, 0] = padded[1, :, 0]
        padded[0, :, -1] = padded[1, :, -1]
        padded[-1, :, 0] = padded[-2, :, 0]
        padded[-1, :, -1] = padded[-2, :, -1]


def random_field(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                 lo: float = 0.0, hi: float = 1.0) -> np.ndarray:
    """A uniform random interior field, for tests and examples."""
    rng = rng or np.random.default_rng()
    return rng.uniform(lo, hi, size=tuple(int(s) for s in shape))
