"""repro — reproduction of Wittmann, Hager & Wellein (2010),
"Multicore-aware parallel temporal blocking of stencil codes for shared
and distributed memory" (arXiv:0912.4506).

The package has two rails:

* a **functional rail** that executes the paper's pipelined
  temporal-blocking schemes on real NumPy arrays with machine-checked
  legality (``repro.core``, ``repro.dist``), and
* a **performance rail** that runs the identical schedules through a
  calibrated discrete-event machine model (``repro.machine``,
  ``repro.sim``, ``repro.models``) to regenerate the paper's figures.

Quickstart::

    import numpy as np
    from repro import Grid3D, PipelineConfig, RelaxedSpec, run_pipelined
    from repro.kernels import reference_sweeps

    grid = Grid3D((32, 32, 32))
    field = np.random.default_rng(0).random(grid.shape)
    cfg = PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=2,
                         block_size=(8, 64, 64), sync=RelaxedSpec(1, 4))
    result = run_pipelined(grid, field, cfg)
    assert np.allclose(result.field,
                       reference_sweeps(grid, field, cfg.total_updates))
"""

from .grid import Box, BlockDecomposition, DirichletBoundary, Grid3D, random_field
from .kernels import (
    StarStencil,
    jacobi7,
    jacobi5_2d,
    reference_sweeps,
    solve_to_tolerance,
)
from .core import (
    BarrierSpec,
    PipelineConfig,
    PipelineExecutor,
    PipelineResult,
    RelaxedSpec,
    ScheduleDeadlock,
    StorageError,
    run_pipelined,
)

__version__ = "1.0.0"

__all__ = [
    "Box",
    "BlockDecomposition",
    "DirichletBoundary",
    "Grid3D",
    "random_field",
    "StarStencil",
    "jacobi7",
    "jacobi5_2d",
    "reference_sweeps",
    "solve_to_tolerance",
    "BarrierSpec",
    "RelaxedSpec",
    "PipelineConfig",
    "PipelineExecutor",
    "PipelineResult",
    "ScheduleDeadlock",
    "StorageError",
    "run_pipelined",
    "__version__",
]
