"""repro — reproduction of Wittmann, Hager & Wellein (2010),
"Multicore-aware parallel temporal blocking of stencil codes for shared
and distributed memory" (arXiv:0912.4506).

The package has two rails:

* a **functional rail** that executes the paper's pipelined
  temporal-blocking schemes on real NumPy arrays with machine-checked
  legality (``repro.core``, ``repro.dist``), and
* a **performance rail** that runs the identical schedules through a
  calibrated discrete-event machine model (``repro.machine``,
  ``repro.sim``, ``repro.models``) to regenerate the paper's figures.

Measurements of both rails are driven by the ``repro.perf`` harness
(``python -m repro.perf run|list|compare|report``): a declarative
scenario registry with ``quick``/``paper``/``stress`` suites, a
versioned JSON results store (``BENCH_<suite>.json``) and a regression
gate that fails CI on a >10 % slowdown of any deterministic metric.
See EXPERIMENTS.md for the figure-to-scenario map.

The front door to the functional rail is :func:`repro.solve`, which runs
the same configuration on either backend::

    import numpy as np
    from repro import Grid3D, PipelineConfig, RelaxedSpec, solve
    from repro.kernels import reference_sweeps

    grid = Grid3D((32, 32, 32))
    field = np.random.default_rng(0).random(grid.shape)
    cfg = PipelineConfig(teams=2, threads_per_team=2, updates_per_thread=2,
                         block_size=(8, 64, 64), sync=RelaxedSpec(1, 4))
    shared = solve(grid, field, cfg)                       # one process
    dist = solve(grid, field, cfg, topology=(2, 1, 1),
                 backend="simmpi")                         # two ranks
    ref = reference_sweeps(grid, field, cfg.total_updates)
    assert np.allclose(shared.field, ref)
    assert np.allclose(dist.field, ref)
"""

from .engine import (
    Engine,
    available_engines,
    get_engine,
    register_engine,
)
from .grid import Box, BlockDecomposition, DirichletBoundary, Grid3D, random_field
from .kernels import (
    StarStencil,
    jacobi7,
    jacobi5_2d,
    reference_sweeps,
    solve_to_tolerance,
)
from .core import (
    BarrierSpec,
    PipelineConfig,
    PipelineExecutor,
    PipelineResult,
    RelaxedSpec,
    ScheduleDeadlock,
    SolveResult,
    StorageError,
    run_pipelined,
)
from .api import BACKENDS, map_jobs, solve, submit

#: ``repro.map`` — the ergonomic name for :func:`map_jobs` (shadows the
#: builtin only inside this namespace; the wrapper itself imports the
#: serving layer lazily, at call time).
map = map_jobs

__version__ = "1.9.0"

#: Symbols re-exported from the truly-threaded rail (lazy: the shared
#: and distributed rails never import it).
_THREADS_EXPORTS = frozenset({
    "ThreadedPipelineExecutor",
    "run_threaded",
})

#: Symbols re-exported from the distributed rail.  Resolved lazily (PEP
#: 562) so that `import repro` — and with it the shared-memory rail and
#: the figure-independent bench utilities — keeps working even if
#: ``repro.dist`` (or a future hard MPI dependency of it) is broken or
#: absent in a stripped-down deployment.
_DIST_EXPORTS = frozenset({
    "CartesianDecomposition",
    "ClusterModel",
    "Comm",
    "ProcComm",
    "ProcMPIError",
    "ProcSolverSession",
    "ProcWorld",
    "RankComm",
    "SimMPIError",
    "balanced_grid",
    "distributed_jacobi_pipelined",
    "distributed_jacobi_sweeps",
    "exchange_plan",
    "fig6_variants",
    "run_procs",
    "run_ranks",
})

#: Symbols re-exported from the serving layer (also lazy: the service
#: pulls in the distributed rail) and the autotuner.  ``submit``/``map``
#: are *not* here — they come eagerly from :mod:`repro.api`, whose
#: wrappers import the service at call time.
_SERVE_EXPORTS = frozenset({
    "Service",
    "ServiceStats",
    "SolveJob",
    "SolveFuture",
    "ResultCache",
})
_AUTOTUNE_EXPORTS = frozenset({"TuneResult", "autotune"})

#: Symbols re-exported from the static analyzer (lazy: nothing on the
#: execution path needs it unless ``validate="static"`` is requested).
_ANALYSIS_EXPORTS = frozenset({
    "ScheduleSpec",
    "StaticAnalysisError",
    "analyze_schedule",
    "assert_legal",
})

#: Symbols re-exported from the observability layer (lazy for symmetry;
#: the hot-path pieces — ``Tracer``, ``NULL_TRACER`` — are imported
#: directly by the rails that use them).
_OBS_EXPORTS = frozenset({
    "Trace",
    "Tracer",
    "load_chrome_trace",
    "span_coverage",
    "trace_metrics",
    "write_chrome_trace",
})


def __getattr__(name: str):
    if name in _ANALYSIS_EXPORTS:
        from . import analysis

        return getattr(analysis, name)
    if name in _OBS_EXPORTS:
        from . import obs

        return getattr(obs, name)
    if name in _THREADS_EXPORTS:
        from . import threads

        return getattr(threads, name)
    if name in _DIST_EXPORTS:
        from . import dist

        return getattr(dist, name)
    if name in _SERVE_EXPORTS:
        from . import serve

        return getattr(serve, name)
    if name in _AUTOTUNE_EXPORTS:
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _THREADS_EXPORTS | _DIST_EXPORTS
                  | _SERVE_EXPORTS | _AUTOTUNE_EXPORTS | _ANALYSIS_EXPORTS
                  | _OBS_EXPORTS)

__all__ = [
    "Engine",
    "available_engines",
    "get_engine",
    "register_engine",
    "Box",
    "BlockDecomposition",
    "DirichletBoundary",
    "Grid3D",
    "random_field",
    "StarStencil",
    "jacobi7",
    "jacobi5_2d",
    "reference_sweeps",
    "solve_to_tolerance",
    "BarrierSpec",
    "RelaxedSpec",
    "PipelineConfig",
    "PipelineExecutor",
    "PipelineResult",
    "ScheduleDeadlock",
    "SolveResult",
    "StorageError",
    "run_pipelined",
    "ThreadedPipelineExecutor",
    "run_threaded",
    "CartesianDecomposition",
    "ClusterModel",
    "Comm",
    "ProcComm",
    "ProcMPIError",
    "ProcSolverSession",
    "ProcWorld",
    "RankComm",
    "SimMPIError",
    "balanced_grid",
    "distributed_jacobi_pipelined",
    "distributed_jacobi_sweeps",
    "exchange_plan",
    "fig6_variants",
    "run_procs",
    "run_ranks",
    "BACKENDS",
    "solve",
    "Service",
    "ServiceStats",
    "SolveJob",
    "SolveFuture",
    "ResultCache",
    "submit",
    # "map" stays a module attribute but out of __all__: star-imports
    # must not shadow the builtin in the user's namespace.
    "map_jobs",
    "TuneResult",
    "autotune",
    "ScheduleSpec",
    "StaticAnalysisError",
    "analyze_schedule",
    "assert_legal",
    "Trace",
    "Tracer",
    "trace_metrics",
    "span_coverage",
    "write_chrome_trace",
    "load_chrome_trace",
    "__version__",
]
