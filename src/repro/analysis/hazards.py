"""Geometric hazard analysis of the one-cell-shift schedule.

The pipelined schedule is arithmetic on boxes (Sect. 1.3 of the paper):
update ``u`` on traversal block ``k`` writes the block box shifted by
``-(u-1)`` cells along every tiled dimension and reads the same box at
shift ``u-1`` plus the star-stencil offsets at level ``u-1``.  Because
every stage walks the *same* traversal in the *same* order, whether two
operations can touch the same storage is a function of their **block
delta** only — translation-invariant in the interior — so the whole
dependence structure compresses into a small table:

    for each ordered pair of updates (u, w) and each hazard kind,
    the set of traversal deltas ``Δ`` such that op ``(block i+Δ, w)``
    must complete before op ``(block i, u)`` starts.

Three kinds cover everything, derived from the storage position maps
(two-grid: ``(cell, level mod 2)``; compressed: ``cell + off(level)``):

* **RAW** — ``u`` reads level ``u-1`` cells that update ``u-1`` writes.
* **WAR** — writing ``u`` destroys the value a pending reader still
  needs: the previous occupant of the written positions is level
  ``u-2`` of the same cells (two-grid) or level ``u-1`` of the cells
  one shift behind (compressed); its readers run update ``u-1`` resp.
  ``u``.
* **WAW** — writing ``u`` must come *after* the write that produced
  that previous occupant, or a stale value would land on top of a
  newer one.

Deltas whose two ops belong to one stage are checked against program
order right here (a violation no counter window can fix — e.g. any
radius-2 stencil under the one-cell shift); deltas that cross stages
become *lead constraints* ``c_other - c_self >= Δ + 1`` for the counter
automaton in :mod:`repro.analysis.checker` to test against every
reachable counter assignment.

Everything is computed per dimension on unclipped interior boxes: two
length-``L`` intervals ``k·b + a`` and ``(k+Δ)·b + a'`` overlap iff
``|Δ·b + a' - a| < L``, which turns each (update pair, stencil offset)
into an integer interval of conflicting per-dim deltas.  Domain-edge
clipping only ever *shrinks* regions, so the interior analysis is
complete (no missed hazards) and exact away from the last blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..grid.blocks import BlockDecomposition
from ..grid.region import Box
from .findings import Report
from .model import ScheduleSpec

__all__ = [
    "Constraint",
    "ConstraintTable",
    "star_offsets",
    "build_constraints",
    "check_coverage_static",
    "check_inplace_order",
]

Coord = Tuple[int, int, int]


def star_offsets(radius: int) -> List[Coord]:
    """All read offsets of a radius-``r`` star stencil, centre included."""
    offs: List[Coord] = [(0, 0, 0)]
    for d in range(3):
        for r in range(1, radius + 1):
            for sign in (-1, 1):
                o = [0, 0, 0]
                o[d] = sign * r
                offs.append(tuple(o))  # type: ignore[arg-type]
    return offs


@dataclass(frozen=True)
class Constraint:
    """One cross-stage ordering requirement.

    Op ``(block i + delta, update w)`` of stage ``other`` must complete
    before op ``(block i, update u)`` of stage ``stage`` starts, for
    every traversal block ``i`` where the conflicting block exists.
    """

    stage: int          # the stage whose op is about to execute
    other: int          # the stage owning the op that must be complete
    delta: int          # traversal-index delta of the conflicting block
    kind: str           # "raw" | "war" | "waw"
    u: int              # executing update (pass-local, 1-based)
    w: int              # conflicting update
    cells: str          # human-readable shared-cells witness fragment

    @property
    def lead(self) -> int:
        """Minimum counter gap ``c_other - c_stage`` that discharges it."""
        return self.delta + 1


@dataclass
class ConstraintTable:
    """The compressed dependence structure of one schedule."""

    #: Cross-stage constraints, every delta kept for witness quality.
    constraints: List[Constraint] = field(default_factory=list)
    #: ``lead[(stage, other)]`` = binding (max) lead over all constraints.
    lead: Dict[Tuple[int, int], Constraint] = field(default_factory=dict)

    def add(self, c: Constraint) -> None:
        """Record a constraint and update the binding-lead table."""
        self.constraints.append(c)
        key = (c.stage, c.other)
        cur = self.lead.get(key)
        if cur is None or c.lead > cur.lead:
            self.lead[key] = c

    def required_d_l(self) -> int:
        """Largest adjacent-stage lead — the minimum legal ``d_l``."""
        return max((c.lead for (s, o), c in self.lead.items() if s - o == 1),
                   default=0)


# -- per-dimension interval arithmetic ---------------------------------------


def _delta_range_1d(b: int, L: int, C: int) -> range:
    """Integer ``dk`` with ``-L < dk*b + C < L`` (equal-length overlap)."""
    lo = (-L - C) // b + 1
    hi = -((C - L) // b) - 1
    return range(lo, hi + 1)


def _conflict_deltas(decomp: BlockDecomposition,
                     shift_a: int, off_a: Coord,
                     shift_b: int, off_b: Coord) -> Iterator[Coord]:
    """Block-delta triples where the two shifted box families overlap.

    Family A is ``block(k).shift(-shift_a * v + off_a)``, family B is
    ``block(k + dk).shift(-shift_b * v + off_b)`` with ``v`` the unit
    shift vector; per dimension the interval start difference is
    ``dk*b + (shift_a - shift_b)*v_d + (off_b_d - off_a_d)``.
    """
    tiled = set(decomp.tiled_dims)
    ranges: List[range] = []
    for d in range(3):
        b = decomp.block_size[d]
        if d in tiled:
            C = (shift_a - shift_b) + (off_b[d] - off_a[d])
            ranges.append(_delta_range_1d(b, b, C))
        else:
            L = min(b, decomp.extents[d])
            C = off_b[d] - off_a[d]
            ranges.append(range(0, 1) if -L < C < L else range(0, 0))
        if not ranges[-1]:
            return
    for dz in ranges[0]:
        for dy in ranges[1]:
            for dx in ranges[2]:
                yield (dz, dy, dx)


def _traversal_strides(decomp: BlockDecomposition) -> Coord:
    """Linear traversal-index stride of a +1 step per block dimension."""
    c = decomp.extended_counts
    return (c[1] * c[2], c[2], 1)


def _witness_cells(decomp: BlockDecomposition, spec: ScheduleSpec,
                   shift_a: int, off_a: Coord,
                   shift_b: int, off_b: Coord, dk: Coord) -> str:
    """Concrete overlapping cells at a representative interior block."""
    v = decomp.shift_vec
    b = decomp.block_size
    k = tuple(
        -(-(spec.max_shift + spec.radius) // b[d]) if v[d] else 0
        for d in range(3))
    box_a = decomp.block_box(k).shift(
        tuple(-shift_a * v[d] + off_a[d] for d in range(3)))
    box_b = decomp.block_box(
        tuple(k[d] + dk[d] for d in range(3))).shift(
        tuple(-shift_b * v[d] + off_b[d] for d in range(3)))
    inter = box_a.intersect(box_b)
    if inter.is_empty:  # pragma: no cover - defensive; deltas imply overlap
        return f"blocks {k} and {tuple(k[d] + dk[d] for d in range(3))}"
    return (f"e.g. cells {inter.lo}..{inter.hi} shared by blocks "
            f"{k} and {tuple(k[d] + dk[d] for d in range(3))}")


# -- the relation catalogue ---------------------------------------------------


def _relations(spec: ScheduleSpec) -> Iterator[Tuple[str, int, int, List[Coord], int, List[Coord]]]:
    """Yield ``(kind, u, shift_a, offs_a, w, offs_b)`` hazard relations.

    ``offs_a`` are the offsets applied to the executing op's base box
    (shift ``shift_a = u-1``); the conflicting op ``w`` always uses its
    own write/read geometry as documented per kind below.  ``offs_b``
    is the offset list of op ``w``'s boxes (its region shift is
    ``w-1``).  Order requirement is always: op ``w`` before op ``u``.
    """
    h = spec.updates_per_pass
    reads = star_offsets(spec.radius)
    center = [(0, 0, 0)]
    back = [(-1, -1, -1)]  # scaled by the shift vector inside _conflict_deltas?
    # NOTE: the compressed-grid "one shift behind" cell set is the write
    # region translated by -1 along tiled dims; untiled components are
    # masked below by passing the offset through the tiled-aware
    # interval arithmetic (off is ignored on untiled dims only if 0, so
    # build the offset per tiled dim instead).
    for u in range(1, h + 1):
        sa = u - 1
        # RAW: reads of level u-1 vs. the producers of level u-1.
        if u >= 2:
            yield ("raw", u, sa, reads, u - 1, center)
        if spec.storage == "twogrid":
            # WAR: writing u (array u%2) destroys level u-2 of the same
            # cells, still wanted by update u-1 readers.
            if u >= 2:
                yield ("war", u, sa, center, u - 1, reads)
            # WAW: that destroyed value was written by update u-2.
            if u >= 3:
                yield ("waw", u, sa, center, u - 2, center)
        else:  # compressed
            # Writing u at position c - u*v destroys level u-1 of cell
            # c - v (the "one shift behind" cell), read by update u...
            yield ("war", u, sa, back, u, reads)
            # ...and written by update u-1.
            if u >= 2:
                yield ("waw", u, sa, back, u - 1, center)


def _mask_untiled(off: Coord, decomp: BlockDecomposition) -> Coord:
    """Zero an offset's components on untiled dims (shift-vector scaling)."""
    v = decomp.shift_vec
    return tuple(off[d] * v[d] for d in range(3))  # type: ignore[return-value]


def build_constraints(spec: ScheduleSpec, decomp: BlockDecomposition,
                      report: Report) -> ConstraintTable:
    """Compute the dependence table; same-stage violations go to ``report``.

    Cross-stage requirements come back as a :class:`ConstraintTable`
    for the automaton; ordering requirements *within* one stage are
    decided here against program order (block ascending, update
    ascending within a block) — a violation means the schedule is
    broken independently of any synchronisation window.
    """
    table = ConstraintTable()
    strides = _traversal_strides(decomp)
    seen_structural = set()
    for kind, u, sa, offs_a, w, offs_b in _relations(spec):
        sb = w - 1
        stage_u = spec.stage_of_update(u)
        stage_w = spec.stage_of_update(w)
        for off_a in offs_a:
            oa = _mask_untiled(off_a, decomp) if off_a == (-1, -1, -1) else off_a
            for off_b in offs_b:
                for dk in _conflict_deltas(decomp, sa, oa, sb, off_b):
                    if u == w and dk == (0, 0, 0):
                        continue  # the op itself (engine-internal order)
                    delta = dk[0] * strides[0] + dk[1] * strides[1] + dk[2]
                    if stage_u == stage_w:
                        # Program order: (i+delta, w) precedes (i, u)
                        # iff delta < 0, or same block and w < u.
                        if delta < 0 or (delta == 0 and w < u):
                            continue
                        key = (kind, u, w, delta)
                        if key in seen_structural:
                            continue
                        seen_structural.add(key)
                        cells = _witness_cells(decomp, spec, sa, oa,
                                               sb, off_b, dk)
                        report.add(
                            f"{kind}-hazard", "error",
                            f"stage {stage_u}, updates {w} and {u}",
                            f"intra-stage {kind.upper()} dependency runs "
                            f"against program order: update {u} on block i "
                            f"conflicts with update {w} on block i"
                            f"{delta:+d}, which the same thread executes "
                            "later — no counter window can order ops of "
                            "one thread",
                            f"{cells}; with radius "
                            f"{spec.radius} and the one-cell shift the "
                            f"read/write footprints of the two updates "
                            "overlap ahead of the traversal",
                        )
                        continue
                    table.add(Constraint(
                        stage=stage_u, other=stage_w, delta=delta,
                        kind=kind, u=u, w=w,
                        cells=_witness_cells(decomp, spec, sa, oa,
                                             sb, off_b, dk),
                    ))
    return table


# -- coverage ----------------------------------------------------------------


def check_coverage_static(spec: ScheduleSpec, decomp: BlockDecomposition,
                          report: Report,
                          max_blocks: int = 512) -> None:
    """Each level's shifted regions must partition the domain exactly.

    The quadratic disjointness check is skipped (with a note) above
    ``max_blocks`` traversal blocks; for consistent inputs it cannot
    fail — it guards hand-built decompositions, mirroring
    :func:`repro.core.schedule.check_coverage` without requiring a
    validated config.
    """
    from ..grid.region import boxes_partition

    if decomp.n_traversal_blocks > max_blocks:
        report.note(
            f"coverage check skipped: {decomp.n_traversal_blocks} traversal "
            f"blocks exceed the {max_blocks}-block partition-check budget")
        return
    for u in range(1, spec.updates_per_pass + 1):
        regions = decomp.level_regions(u - 1)
        if not boxes_partition(regions, decomp.domain):
            report.add(
                "coverage", "error", f"update {u}",
                f"the shift-{u - 1} block regions do not partition the "
                f"domain {decomp.domain}",
                "some cells would be updated twice or never at this level",
            )
            return  # one witness level is enough


# -- in-place (fused) engine ordering ----------------------------------------


def check_inplace_order(spec: ScheduleSpec, decomp: BlockDecomposition,
                        report: Report) -> None:
    """Compressed-grid aliasing safety of fused in-place execution.

    A fused engine fills ``storage.write_view`` plane by plane, so
    inside one region the write of plane ``p`` at level ``u`` lands on
    the positions holding plane ``p-1``'s level ``u-1`` values.  Those
    are still live reads of the planes *behind* ``p`` — legal iff the
    traversal walks in the direction the storage offsets move
    (ascending on even passes, where offsets descend).  Engines that
    materialise the whole region before writing (``fused_inplace``
    False) are immune; the two-grid layout is immune for every engine
    (the destination is the other array).
    """
    from ..engine import get_engine

    try:
        engine = get_engine(spec.engine)
    except ValueError as exc:
        report.add("engine-unknown", "error", f"engine {spec.engine!r}",
                   str(exc))
        return
    fused = bool(getattr(engine, "fused_inplace", False))
    forced = spec.inplace_step is not None
    if spec.storage != "compressed" or not decomp.tiled_dims:
        if fused:
            report.note(
                f"engine {spec.engine!r} is fused in-place but the "
                f"{spec.storage} layout has no destination aliasing")
        return
    if not fused:
        report.note(
            f"engine {spec.engine!r} materialises regions before writing; "
            "compressed-grid destination aliasing cannot occur"
            + (" (forced inplace_step ignored)" if forced else ""))
        return
    axis = decomp.tiled_dims[0]
    # Even passes: offsets descend (off(u) = off(u-1) - 1), so a plane's
    # write destroys the plane one *below* it; ascending is safe.
    safe_step = 1
    step = spec.inplace_step if forced else safe_step
    if spec.radius >= 2:
        report.add(
            "inplace-aliasing", "error",
            f"engine {spec.engine!r}, axis {axis}",
            f"radius-{spec.radius} reads make fused in-place updates "
            "illegal in either direction on the compressed grid",
            f"writing plane p at level u destroys the level u-1 value of "
            f"plane p-1; planes p-1-{spec.radius - 1}..p-1+{spec.radius - 1} "
            "read it, so pending planes exist on both sides of the write",
        )
        return
    if step != safe_step:
        report.add(
            "inplace-aliasing", "error",
            f"engine {spec.engine!r}, axis {axis}",
            "descending plane traversal on an even pass overwrites live "
            "level u-1 data: write regions at level u overlap reads the "
            "same op has not issued yet",
            "writing plane p at level u lands on the positions holding "
            "plane p-1's level u-1 values; with step -1 plane p-1 is "
            "processed after plane p and reads clobbered data (e.g. u=1: "
            "plane 5 writes over plane 4's initial values before plane 4 "
            "consumes them)",
        )
    else:
        report.note(
            f"in-place plane order on axis {axis} verified: ascending "
            "traversal matches the descending storage offsets (mirrored "
            "symmetrically on odd passes)")


def decomposition_for(spec: ScheduleSpec, shape: Coord) -> Optional[BlockDecomposition]:
    """The traversal geometry of ``spec`` on a domain, or ``None``.

    Returns ``None`` (after the caller reported config errors) when the
    geometry is unbuildable — the remaining checks need real boxes.
    """
    try:
        return BlockDecomposition(Box.from_shape(shape),
                                  tuple(spec.block_size), spec.max_shift)
    except (ValueError, TypeError):
        return None
