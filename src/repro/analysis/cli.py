"""Command-line front end: ``python -m repro.analysis <subcommand>``.

Two subcommands, matching the two halves of the pass:

* ``check-schedule`` — build a :class:`ScheduleSpec` from flags (or
  sweep every registered perf-suite schedule with ``--suite``) and run
  the static legality analysis; exit 1 on any error finding.
* ``lint`` — run the project-aware AST lint over files/directories;
  exit 1 on any finding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .checker import analyze_schedule
from .findings import Report
from .lint import lint_paths
from .model import ScheduleSpec

__all__ = ["main"]


def _triple(text: str) -> Tuple[int, int, int]:
    parts = [int(p) for p in text.replace("x", ",").split(",") if p]
    if len(parts) == 1:
        parts = parts * 3
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected 3 comma/x-separated integers, got {text!r}")
    return (parts[0], parts[1], parts[2])


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static schedule-legality analysis and project lint "
                    "for the pipelined temporal-blocking solver.")
    sub = parser.add_subparsers(dest="command", required=True)

    cs = sub.add_parser(
        "check-schedule",
        help="prove a pipeline schedule race/deadlock-free (or produce "
             "a witness)")
    cs.add_argument("--suite", metavar="NAME",
                    help="check every registered schedule of a perf suite "
                         "(e.g. 'quick') instead of building one from flags")
    cs.add_argument("--shape", type=_triple, default=(32, 32, 32),
                    help="grid shape, e.g. 32,32,32 (default) or 64x64x64")
    cs.add_argument("--topology", type=_triple, default=(1, 1, 1),
                    help="process grid for the distributed checks "
                         "(default 1,1,1 = shared memory only)")
    cs.add_argument("--teams", type=int, default=1)
    cs.add_argument("--threads", type=int, default=4,
                    help="threads per team (pipeline stages = teams*threads)")
    cs.add_argument("--updates", type=int, default=1, metavar="T",
                    help="updates per thread per block")
    cs.add_argument("--block", type=_triple, default=(8, 1_000_000, 1_000_000),
                    help="block size, e.g. 8,64,64")
    cs.add_argument("--sync", choices=("barrier", "relaxed"),
                    default="relaxed")
    cs.add_argument("--d-l", type=int, default=1, dest="d_l")
    cs.add_argument("--d-u", type=int, default=4, dest="d_u")
    cs.add_argument("--team-delay", type=int, default=0)
    cs.add_argument("--storage", choices=("twogrid", "compressed"),
                    default="twogrid")
    cs.add_argument("--engine", default="numpy")
    cs.add_argument("--passes", type=int, default=1)
    cs.add_argument("--radius", type=int, default=1,
                    help="stencil radius to analyze (shipped kernels: 1)")
    cs.add_argument("--inplace-step", type=int, choices=(1, -1),
                    default=None,
                    help="force the in-place plane direction instead of "
                         "the engine-derived one")
    cs.add_argument("--halo", type=int, default=None,
                    help="ghost layers per exchange (default: n*t*T)")
    cs.add_argument("-v", "--verbose", action="store_true",
                    help="also print notes (what was proven, not just "
                         "what failed)")

    li = sub.add_parser(
        "lint", help="project-aware AST lint (spawn-pickle, shm "
                     "lifecycle, engine contract, hygiene)")
    li.add_argument("paths", nargs="+", help="files or directories")
    li.add_argument("-v", "--verbose", action="store_true",
                    help="also print notes")
    return parser


def _suite_reports(args) -> List[Report]:
    from ..perf.scenarios import solver_schedules

    reports = []
    for name, shape, config, topology in solver_schedules(args.suite):
        report = analyze_schedule(config, shape, topology,
                                  radius=args.radius)
        report.subject = f"{name}: {report.subject}"
        reports.append(report)
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        report = lint_paths(args.paths)
        print(report.describe(verbose=args.verbose))
        return 0 if report.ok else 1

    if args.suite:
        reports = _suite_reports(args)
    else:
        spec = ScheduleSpec(
            teams=args.teams,
            threads_per_team=args.threads,
            updates_per_thread=args.updates,
            block_size=args.block,
            sync_kind=args.sync,
            d_l=args.d_l, d_u=args.d_u, team_delay=args.team_delay,
            storage=args.storage,
            engine=args.engine,
            passes=args.passes,
            radius=args.radius,
            inplace_step=args.inplace_step,
        )
        reports = [analyze_schedule(spec, args.shape, args.topology,
                                    halo=args.halo)]
    bad = 0
    for report in reports:
        print(report.describe(verbose=args.verbose))
        print()
        if not report.ok:
            bad += 1
    n = len(reports)
    print(f"{n - bad}/{n} schedule(s) certified")
    return 0 if bad == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
