"""Project-aware AST lint: the repo's own hazard classes, machine-checked.

Generic hygiene rules (dead imports, mutable default arguments, bare
``except:``) ride along, but the point of this pass is the three rules
that encode *this* project's invariants — the ones a generic linter
cannot know:

* **spawn-pickle** — anything handed to a procmpi rank entry
  (``run_procs``/``run_job``) crosses a ``spawn`` process boundary by
  pickling, and pickle resolves functions *by module path*: only
  module-level callables survive.  Lambdas and nested functions raise
  only at runtime, inside the child — this rule catches them at lint
  time (the PR-4 behaviour note turned into a machine check).
* **shm-lifecycle** — every shared-memory segment must be created
  through :class:`repro.dist.shm.ShmPool`, whose owner-only unlink
  discipline guarantees exactly-once cleanup; and any code that
  *constructs* a pool must visibly close it (``cleanup()`` or a
  ``with`` block), or segments leak past process exit.
* **engine-contract** — execution engines may touch destinations only
  through ``storage.write``/``write_view``+``commit_write`` (private
  storage internals are how silent bit-corruption starts), a
  ``write_view`` without a matching ``commit_write`` leaves the level
  bookkeeping stale, and every :class:`~repro.engine.base.Engine`
  subclass must declare ``name`` and ``semantics`` — the serve cache
  key depends on the semantics class, so an engine without one would
  poison content addressing.
* **span-pairing** — observability spans (``tracer.span(...)``) must be
  the context expression of a ``with`` statement (or sit inside a
  ``try``/``finally``): a span entered any other way stays open when an
  exception unwinds, corrupting every containing timeline.
* **cond-wait-loop** — ``Condition.wait()`` must sit inside a ``while``
  loop that re-checks the predicate.  An ``if``-guarded wait is the
  missed-/spurious-wakeup bug class the threaded rail's
  :class:`~repro.core.sync.CounterBoard` exists to fix (a stage can
  become ready because its predecessor *finished* — no further counter
  update will ever arrive), so the pattern is banned mechanically.
* **no-naked-perf-counter** — serving/observability code must not call
  ``time.perf_counter()`` directly: timings there either belong to a
  tracer span or to the monitor's injectable clock, and a naked reading
  is invisible to both (it can't be replayed deterministically and
  never shows up in a histogram).  Only the two clock primitives —
  ``obs/tracer.py`` and ``obs/monitor/sampling.py`` — may touch the
  raw counter.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from .findings import Finding, Report

__all__ = ["lint_paths", "lint_source", "CHECKERS"]

#: (checker-name, line, message, witness)
Issue = Tuple[str, int, str, str]
Checker = Callable[[str, ast.Module, Sequence[str]], Iterator[Issue]]


def _walk_defs(tree: ast.Module):
    """(node, depth) for every function/class def; depth 0 = module level."""
    def rec(node, depth):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                yield child, depth
                yield from rec(child, depth + 1)
            else:
                yield from rec(child, depth)
    yield from rec(tree, 0)


def _dunder_all(tree: ast.Module) -> Tuple[bool, List[str]]:
    """Whether the module defines ``__all__`` and the literal names in it."""
    names: List[str] = []
    found = False
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__all__":
                found = True
                for elt in ast.walk(node):
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        names.append(elt.value)
    return found, names


# -- generic hygiene ----------------------------------------------------------


def check_dead_imports(path: str, tree: ast.Module,
                       lines: Sequence[str]) -> Iterator[Issue]:
    """Imported names never referenced in the module (ruff F401).

    ``__init__.py`` modules re-export: names listed in ``__all__`` count
    as used, and an ``__init__.py`` without ``__all__`` is skipped
    entirely (every import there is plausibly a re-export).
    """
    is_init = Path(path).name == "__init__.py"
    has_all, all_names = _dunder_all(tree)
    if is_init and not has_all:
        return
    imported = {}  # binding -> (line, shown-name)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = alias.asname or alias.name.split(".")[0]
                imported[binding] = (node.lineno, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                binding = alias.asname or alias.name
                imported[binding] = (node.lineno, alias.name)
    if not imported:
        return
    used = set(all_names)
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # getattr-style dynamic use is rare; Name covers the base.
            pass
    for binding, (line, shown) in sorted(imported.items(),
                                         key=lambda kv: kv[1][0]):
        if binding not in used:
            yield ("dead-import", line,
                   f"{shown!r} is imported but never used",
                   lines[line - 1].strip() if line <= len(lines) else "")


def check_mutable_defaults(path: str, tree: ast.Module,
                           lines: Sequence[str]) -> Iterator[Issue]:
    """Mutable default argument values (ruff B006)."""
    mutable_calls = {"list", "dict", "set"}
    for node, _depth in _walk_defs(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for d in defaults:
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set,
                                 ast.ListComp, ast.DictComp, ast.SetComp))
            if (isinstance(d, ast.Call) and isinstance(d.func, ast.Name)
                    and d.func.id in mutable_calls):
                bad = True
            if bad:
                yield ("mutable-default", d.lineno,
                       f"function {node.name!r} has a mutable default "
                       "argument (shared across calls)",
                       lines[d.lineno - 1].strip()
                       if d.lineno <= len(lines) else "")


def check_bare_except(path: str, tree: ast.Module,
                      lines: Sequence[str]) -> Iterator[Issue]:
    """``except:`` with no exception type (ruff E722)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ("bare-except", node.lineno,
                   "bare 'except:' swallows SystemExit/KeyboardInterrupt",
                   lines[node.lineno - 1].strip()
                   if node.lineno <= len(lines) else "")


# -- project rules ------------------------------------------------------------

_RANK_ENTRIES = {"run_procs": 1, "run_job": 0}


def check_spawn_pickle(path: str, tree: ast.Module,
                       lines: Sequence[str]) -> Iterator[Issue]:
    """Rank entry points must be module-level callables (spawn pickling)."""
    module_level = set()
    nested = set()
    for node, depth in _walk_defs(tree):
        if depth == 0:
            module_level.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.add(node.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        if fname not in _RANK_ENTRIES:
            continue
        idx = _RANK_ENTRIES[fname]
        arg = None
        if len(node.args) > idx:
            arg = node.args[idx]
        else:
            for kw in node.keywords:
                if kw.arg == "fn":
                    arg = kw.value
        if arg is None:
            continue
        src = lines[node.lineno - 1].strip() if node.lineno <= len(lines) else ""
        if isinstance(arg, ast.Lambda):
            yield ("spawn-pickle", arg.lineno,
                   f"lambda passed to {fname}(): spawn start methods "
                   "pickle the entry by module path; lambdas fail inside "
                   "the child process", src)
        elif (isinstance(arg, ast.Name) and arg.id in nested
                and arg.id not in module_level):
            yield ("spawn-pickle", node.lineno,
                   f"{arg.id!r} passed to {fname}() is a nested function: "
                   "spawn pickling resolves entries by module path, so "
                   "rank entries must be module-level callables", src)


def check_shm_lifecycle(path: str, tree: ast.Module,
                        lines: Sequence[str]) -> Iterator[Issue]:
    """Segment creation and unlinking stay inside ``dist/shm.py``."""
    p = Path(path)
    if p.name == "shm.py" and p.parent.name == "dist":
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fname = None
            if isinstance(node.func, ast.Name):
                fname = node.func.id
            elif isinstance(node.func, ast.Attribute):
                fname = node.func.attr
            src = (lines[node.lineno - 1].strip()
                   if node.lineno <= len(lines) else "")
            if fname == "SharedMemory":
                creates = any(kw.arg == "create"
                              and isinstance(kw.value, ast.Constant)
                              and kw.value.value is True
                              for kw in node.keywords)
                if creates:
                    yield ("shm-lifecycle", node.lineno,
                           "raw SharedMemory(create=True) outside "
                           "dist/shm.py: segments must come from ShmPool "
                           "so the owner-unlink path dominates every "
                           "create", src)
            elif (fname == "unlink" and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("shm", "seg", "segment")):
                yield ("shm-lifecycle", node.lineno,
                       "direct segment unlink outside dist/shm.py: only "
                       "the owning ShmPool may unlink (double-unlink "
                       "races)", src)
    # A file that constructs pools must visibly release them.
    makes_pool = any(
        isinstance(n, ast.Call) and (
            (isinstance(n.func, ast.Name) and n.func.id == "ShmPool")
            or (isinstance(n.func, ast.Attribute) and n.func.attr == "ShmPool"))
        for n in ast.walk(tree))
    if makes_pool:
        releases = any(
            isinstance(n, ast.Attribute) and n.attr in ("cleanup", "close")
            for n in ast.walk(tree))
        if not releases:
            yield ("shm-lifecycle", 1,
                   "this module constructs ShmPool but never calls "
                   "cleanup()/close(): segments would outlive the process",
                   "")


_ENGINE_EXEMPT = {"base.py", "registry.py", "__init__.py"}


def check_engine_contract(path: str, tree: ast.Module,
                          lines: Sequence[str]) -> Iterator[Issue]:
    """Engine modules: declared semantics, storage API discipline."""
    p = Path(path)
    if p.parent.name != "engine" or p.name in _ENGINE_EXEMPT:
        return
    for node, _depth in _walk_defs(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = set()
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.add(b.id)
            elif isinstance(b, ast.Attribute):
                bases.add(b.attr)
        if "Engine" not in bases:
            continue
        assigned = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        assigned.add(t.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name) and stmt.value is not None:
                assigned.add(stmt.target.id)
        for required in ("name", "semantics"):
            if required not in assigned:
                yield ("engine-contract", node.lineno,
                       f"engine class {node.name!r} does not declare "
                       f"{required!r}; the serve cache keys on the "
                       "semantics class, so every engine must state its "
                       "bit-semantics", f"class {node.name}(...):")
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "storage"
                and node.attr.startswith("_")):
            yield ("engine-contract", node.lineno,
                   f"engine code reaches into storage.{node.attr}: "
                   "destinations may only be touched through write/"
                   "write_view/commit_write",
                   lines[node.lineno - 1].strip()
                   if node.lineno <= len(lines) else "")
    for node, _depth in _walk_defs(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls = {n.func.attr for n in ast.walk(node)
                 if isinstance(n, ast.Call)
                 and isinstance(n.func, ast.Attribute)}
        if "write_view" in calls and "commit_write" not in calls:
            yield ("engine-contract", node.lineno,
                   f"{node.name!r} obtains a write_view but never calls "
                   "commit_write: level bookkeeping (and compressed-grid "
                   "position tracking) would go stale",
                   f"def {node.name}(...)")


def check_span_pairing(path: str, tree: ast.Module,
                       lines: Sequence[str]) -> Iterator[Issue]:
    """Tracer spans must enter/exit in lockstep: ``with`` or try/finally.

    A ``.span(...)`` call whose context manager is never exited (e.g.
    assigned and entered manually) leaves the span open across an
    exception, so every instrumented module must scope spans with a
    ``with`` statement or inside a ``try`` body that has a ``finally``.
    The :mod:`repro.obs` package itself (which builds and replays span
    objects) is exempt.
    """
    p = Path(path)
    if p.parent.name == "obs":
        return
    protected = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                protected.add(id(item.context_expr))
        elif isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    protected.add(id(sub))
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in protected):
            yield ("span-pairing", node.lineno,
                   "span() call is not the context expression of a 'with' "
                   "statement (nor inside try/finally): an exception would "
                   "leave the span open",
                   lines[node.lineno - 1].strip()
                   if node.lineno <= len(lines) else "")


def check_cond_wait_loop(path: str, tree: ast.Module,
                         lines: Sequence[str]) -> Iterator[Issue]:
    """Condition-variable waits must re-check their predicate in a loop.

    Flags ``<receiver>.wait(...)`` where the receiver's name mentions
    ``cond`` (``cond``, ``self._cond``, ``ready_condition``, ...) and
    the call is not lexically inside a ``while`` statement.  Both
    failure modes of a straight-line or ``if``-guarded wait are real
    here: ``Condition.wait`` may return spuriously, and a wakeup for a
    *different* predicate (another stage's window opening, the drain
    waiver, an abort) must be re-evaluated, not trusted.  Events and
    futures (``ev.wait()``, ``fut.wait()``) are level-triggered and are
    not matched.
    """
    in_while = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.While):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    in_while.add(id(sub))
            for sub in ast.walk(node.test):
                in_while.add(id(sub))
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait"):
            continue
        recv = node.func.value
        recv_name = ""
        if isinstance(recv, ast.Name):
            recv_name = recv.id
        elif isinstance(recv, ast.Attribute):
            recv_name = recv.attr
        if "cond" not in recv_name.lower():
            continue
        if id(node) in in_while:
            continue
        yield ("cond-wait-loop", node.lineno,
               f"{recv_name}.wait() outside a 'while' loop: condition "
               "waits must re-check their predicate (spurious wakeups; "
               "wakeups for other predicates, e.g. the drain waiver)",
               lines[node.lineno - 1].strip()
               if node.lineno <= len(lines) else "")


#: The raw-clock primitives: the only serve/obs files allowed to read
#: time.perf_counter() directly (everything else goes through them).
_CLOCK_PRIMITIVES = {("obs", "tracer.py"), ("monitor", "sampling.py")}


def check_no_naked_perf_counter(path: str, tree: ast.Module,
                                lines: Sequence[str]) -> Iterator[Issue]:
    """Serve/obs timings must flow through spans or the monitor clock.

    Flags direct ``time.perf_counter()`` / ``perf_counter_ns()`` calls
    in :mod:`repro.serve` and :mod:`repro.obs` modules.  A naked
    reading there is a measurement neither the tracer nor the monitor
    can see: it bypasses the injectable clock (so determinism tests
    cannot replay it) and never lands in a histogram or trace.  The two
    clock primitives themselves are allowlisted.
    """
    p = Path(path)
    in_scope = (p.parent.name in ("serve", "obs")
                or (p.parent.name == "monitor"
                    and p.parent.parent.name == "obs"))
    if not in_scope or (p.parent.name, p.name) in _CLOCK_PRIMITIVES:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        if fname in ("perf_counter", "perf_counter_ns"):
            yield ("no-naked-perf-counter", node.lineno,
                   f"direct {fname}() in serving/observability code: time "
                   "through a tracer span or the monitor's injectable "
                   "clock (repro.obs.monitor.monotime) so the reading is "
                   "replayable and lands in the histograms",
                   lines[node.lineno - 1].strip()
                   if node.lineno <= len(lines) else "")


#: The rule set, in report order.
CHECKERS: Tuple[Checker, ...] = (
    check_dead_imports,
    check_mutable_defaults,
    check_bare_except,
    check_spawn_pickle,
    check_shm_lifecycle,
    check_engine_contract,
    check_span_pairing,
    check_cond_wait_loop,
    check_no_naked_perf_counter,
)


def lint_source(path: str, source: str,
                checkers: Sequence[Checker] = CHECKERS) -> List[Finding]:
    """Lint one file's source text; returns findings (possibly empty)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("syntax", "error", f"{path}:{exc.lineno or 0}",
                        f"cannot parse: {exc.msg}")]
    lines = source.splitlines()
    out: List[Finding] = []
    for checker in checkers:
        for name, line, message, witness in checker(path, tree, lines):
            out.append(Finding(name, "error", f"{path}:{line}",
                               message, witness))
    return out


def _iter_py(paths: Iterable[str]) -> Iterator[Path]:
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str],
               checkers: Sequence[Checker] = CHECKERS) -> Report:
    """Lint files/directories; the CLI's ``lint`` subcommand core."""
    report = Report(subject=", ".join(str(p) for p in paths))
    n_files = 0
    for path in _iter_py(paths):
        n_files += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.add("io", "error", str(path), f"cannot read: {exc}")
            continue
        report.findings.extend(lint_source(str(path), source, checkers))
    report.note(f"linted {n_files} file(s) with {len(checkers)} checkers")
    return report
