"""repro.analysis — static schedule-legality & race analysis, plus lint.

The analyzer certifies a pipelined temporal-blocking schedule *without
executing a single stencil update*: it builds the write/read geometry
of the one-cell-shift pipeline symbolically, derives the minimum
ordering lead every pair of stages must keep, and then explores the
counter automaton of the relaxed-synchronisation window to either
prove no permitted interleaving violates a lead (and no drain state
deadlocks) or produce a concrete witness interleaving.  A companion
AST lint pass machine-checks the project's process/shared-memory and
engine-contract invariants.

Typical use::

    from repro.analysis import analyze_schedule, assert_legal

    report = analyze_schedule(config, shape=(64, 64, 64))
    if not report.ok:
        print(report.describe())

    assert_legal(config, shape, topology=(2, 1, 1))  # raises on illegal

or from the command line::

    python -m repro.analysis check-schedule --threads 4 --d-l 1 --d-u 4
    python -m repro.analysis check-schedule --suite quick
    python -m repro.analysis lint src/
"""

from .checker import analyze_schedule, assert_legal, quick_check
from .findings import Finding, Report, StaticAnalysisError
from .lint import lint_paths, lint_source
from .model import ScheduleSpec

__all__ = [
    "Finding",
    "Report",
    "ScheduleSpec",
    "StaticAnalysisError",
    "analyze_schedule",
    "assert_legal",
    "quick_check",
    "lint_paths",
    "lint_source",
]
