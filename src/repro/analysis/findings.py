"""Finding and report types shared by both halves of the analyzer.

Every checker — the symbolic schedule analyzer and the AST lint pass —
reports through the same vocabulary: a :class:`Finding` names the
checker that fired, where (a schedule location or a ``file:line``), how
bad it is, and *why*, including a concrete witness whenever one exists
(a counter interleaving, an overlapping cell, a source line).  A
:class:`Report` aggregates findings plus analysis notes and decides
certification: no error-severity findings means the subject passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "Report",
    "StaticAnalysisError",
]

#: Ordered from worst to mildest.  ``error`` blocks certification;
#: ``warning`` flags legal-but-wasteful configurations; ``info`` is
#: commentary (e.g. a check that was skipped and why).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one checker.

    Parameters
    ----------
    checker:
        Stable kebab-case identifier of the rule that fired
        (``"raw-hazard"``, ``"deadlock"``, ``"dead-import"``, ...).
    severity:
        One of :data:`SEVERITIES`.
    location:
        Where: ``file:line`` for lint findings, a schedule coordinate
        (``"stage 2, block 5, update 3"``) for schedule findings.
    message:
        One-line statement of the defect.
    witness:
        Concrete evidence, human-readable, possibly multi-line: the
        counter interleaving that reaches the race, the exact cells two
        regions share, the offending source line.  Empty when the rule
        is self-evident from the message.
    """

    checker: str
    severity: str
    location: str
    message: str
    witness: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def describe(self) -> str:
        """Multi-line rendering used by the CLI and error messages."""
        head = f"[{self.severity}] {self.checker} @ {self.location}: {self.message}"
        if not self.witness:
            return head
        body = "\n".join("    " + line for line in self.witness.splitlines())
        return head + "\n" + body


@dataclass
class Report:
    """Aggregated outcome of one analysis run.

    ``subject`` says what was analyzed (a config description, a list of
    paths); ``notes`` records analysis-mode decisions that affect how to
    read the result (exhaustive vs. analytic exploration, skipped
    coverage check, ...).
    """

    subject: str
    findings: List[Finding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        """Only the certification-blocking findings."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when nothing blocks certification (warnings allowed)."""
        return not self.errors

    def add(self, checker: str, severity: str, location: str,
            message: str, witness: str = "") -> Finding:
        """Record one finding and return it."""
        f = Finding(checker, severity, location, message, witness)
        self.findings.append(f)
        return f

    def note(self, text: str) -> None:
        """Record an analysis-mode note."""
        self.notes.append(text)

    def extend(self, other: "Report") -> None:
        """Absorb another report's findings and notes."""
        self.findings.extend(other.findings)
        self.notes.extend(other.notes)

    def describe(self, verbose: bool = False) -> str:
        """Full human-readable rendering (the CLI output)."""
        lines = [f"analysis of {self.subject}:"]
        if not self.findings:
            lines.append("  no findings")
        for f in sorted(self.findings,
                        key=lambda f: SEVERITIES.index(f.severity)):
            lines.extend("  " + line for line in f.describe().splitlines())
        if verbose:
            for n in self.notes:
                lines.append(f"  note: {n}")
        verdict = "CERTIFIED" if self.ok else "REJECTED"
        errs = len(self.errors)
        warns = sum(1 for f in self.findings if f.severity == "warning")
        lines.append(f"  => {verdict} ({errs} error(s), {warns} warning(s))")
        return "\n".join(lines)


class StaticAnalysisError(ValueError):
    """Raised by ``assert_legal``/``solve(validate='static')`` on rejection.

    Carries the full :class:`Report` so callers can inspect the witness
    programmatically instead of parsing the message.
    """

    def __init__(self, report: Report) -> None:
        self.report = report
        super().__init__(report.describe())


def worst_severity(findings: Sequence[Finding]) -> Optional[str]:
    """The most severe level present, or ``None`` for an empty sequence."""
    present: Tuple[str, ...] = tuple(f.severity for f in findings)
    for sev in SEVERITIES:
        if sev in present:
            return sev
    return None
