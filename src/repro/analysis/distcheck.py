"""Distributed legality: halo depth, trapezoids, exchange-plan geometry.

The hybrid scheme (Sect. 2) is correct only under three geometric
invariants, all checkable without running a rank:

* **Halo depth** — a rank runs the full ``h = n·t·T``-update pass
  between exchanges, and update ``u`` covers the core grown by
  ``h - u`` layers; its stencil reads reach one ``radius`` further, so
  the stored box (core grown by the exchanged halo) must contain
  ``core.grow(h - 1 + radius)``: the halo must be at least ``h``.
* **Trapezoid consistency** — every update's active region and its
  reads must stay inside the stored box, matching the shrinking
  trapezoid the solver drives (``active(u) = core.grow(h - u)``).
* **Exchange-plan soundness** — the 3-phase ghost-cell-expansion plan
  of :func:`repro.dist.exchange.exchange_plan` must be symmetric (a
  rank's recv box is exactly its peer's send box) and *causal*: every
  cell a rank sends must be one it owns (core) or one it received in
  an **earlier** phase — the "data received in the previous step is
  included in the messages of the following exchange steps" rule that
  makes edge/corner data ride along in six messages.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..grid.region import Box
from .findings import Report
from .model import ScheduleSpec

__all__ = ["check_distributed", "uncovered_cells"]

Coord = Tuple[int, int, int]


def uncovered_cells(target: Box, covers: List[Box]) -> int:
    """Cells of ``target`` not covered by any box in ``covers``.

    Coordinate compression: the cover boxes cut ``target`` into at most
    ``(2n+1)^3`` sub-boxes, each either fully covered by some box or
    fully uncovered — exact and cheap for the handfuls of boxes an
    exchange plan produces.
    """
    if target.is_empty:
        return 0
    cuts = []
    for d in range(3):
        pts = {target.lo[d], target.hi[d]}
        for b in covers:
            pts.add(min(max(b.lo[d], target.lo[d]), target.hi[d]))
            pts.add(min(max(b.hi[d], target.lo[d]), target.hi[d]))
        cuts.append(sorted(pts))
    missing = 0
    for z0, z1 in zip(cuts[0], cuts[0][1:]):
        for y0, y1 in zip(cuts[1], cuts[1][1:]):
            for x0, x1 in zip(cuts[2], cuts[2][1:]):
                sub = Box((z0, y0, x0), (z1, y1, x1))
                if sub.is_empty:
                    continue
                if not any(b.contains_box(sub) for b in covers):
                    missing += sub.ncells
    return missing


def check_distributed(spec: ScheduleSpec, shape: Coord, topology: Coord,
                      halo: int, report: Report) -> None:
    """Run every distributed invariant; findings go to ``report``."""
    from ..dist.decomp import CartesianDecomposition
    from ..dist.exchange import exchange_plan

    h = spec.updates_per_pass
    if spec.storage != "twogrid":
        report.add(
            "dist-storage", "error", f"storage {spec.storage!r}",
            "the distributed rail requires the two-grid layout: ghost "
            "injections jump cells forward in time, which the compressed "
            "grid's position tracking cannot represent",
        )
    if halo < h:
        report.add(
            "halo-depth", "error", f"halo {halo} < n*t*T = {h}",
            f"a superstep advances every core cell by {h} levels but "
            f"only {halo} ghost layers are exchanged",
            f"update 1 covers core.grow({h - 1}) and reads "
            f"core.grow({h - 1 + spec.radius}); the stored box only "
            f"spans core.grow({halo}) — the trapezoid base is starved",
        )
    elif halo > h:
        report.add(
            "halo-depth", "warning", f"halo {halo} > n*t*T = {h}",
            f"{halo - h} exchanged layer(s) per superstep are never "
            "consumed by the trapezoid updates (wasted bandwidth)",
        )
    try:
        decomp = CartesianDecomposition(shape, topology, max(1, halo))
    except ValueError as exc:
        report.add("dist-geometry", "error",
                   f"{shape} / topology {topology}", str(exc))
        return

    plans: Dict[int, List] = {}
    for rank in range(decomp.n_ranks):
        geo = decomp.geometry(rank)
        try:
            plans[rank] = exchange_plan(decomp, geo)
        except ValueError as exc:
            report.add("exchange-plan", "error", f"rank {rank}", str(exc))
            return

    domain = decomp.domain
    worst = min(halo, h)
    for rank in range(decomp.n_ranks):
        geo = decomp.geometry(rank)
        # Trapezoid bounds: active regions and their reads fit the
        # stored box for every update of the pass.
        for u in range(1, h + 1):
            active = geo.core.grow(h - u).intersect(domain)
            reads = active.grow(spec.radius).intersect(domain)
            if not geo.stored.contains_box(reads):
                corner = tuple(
                    min(max(reads.lo[d], geo.stored.lo[d] - 1),
                        reads.hi[d] - 1) if reads.lo[d] < geo.stored.lo[d]
                    else reads.hi[d] - 1
                    for d in range(3))
                report.add(
                    "trapezoid", "error", f"rank {rank}, update {u}",
                    f"active region {active} reads {reads}, which "
                    f"escapes the stored box {geo.stored}",
                    f"e.g. cell {corner} is read but never stored on "
                    f"this rank (halo {halo}, needs {h - u + spec.radius} "
                    f"layers at this update)",
                )
                break
        # Exchange symmetry and causality.
        received: List[Box] = []
        for (dim, side, peer, send, recv) in plans[rank]:
            mirrored = [e for e in plans[peer]
                        if e[0] == dim and e[1] == -side and e[2] == rank]
            if not mirrored or mirrored[0][3] != recv:
                got = mirrored[0][3] if mirrored else None
                report.add(
                    "exchange-plan", "error",
                    f"rank {rank} <- rank {peer}, dim {dim}",
                    "recv box does not match the peer's send box",
                    f"recv {recv} vs peer send {got}",
                )
            if not geo.stored.contains_box(recv):
                report.add(
                    "exchange-plan", "error",
                    f"rank {rank}, dim {dim}, side {side:+d}",
                    f"recv box {recv} is not inside the stored box "
                    f"{geo.stored}",
                )
            missing = uncovered_cells(send, [geo.core] + received)
            if missing:
                report.add(
                    "exchange-plan", "error",
                    f"rank {rank} -> rank {peer}, dim {dim}, "
                    f"side {side:+d}",
                    f"send box {send} contains {missing} cell(s) this "
                    "rank neither owns nor has received in an earlier "
                    "phase (ghost-cell-expansion causality broken)",
                )
            received.append(recv)
    report.note(
        f"distributed geometry verified on {decomp.n_ranks} rank(s): "
        f"halo {halo} vs pass depth {h}, trapezoids for updates 1..{worst}, "
        f"{sum(len(p) for p in plans.values())} exchange messages "
        "symmetric and causal")
