"""Happens-before checking over every permitted counter assignment.

:mod:`repro.analysis.hazards` reduces the schedule to lead constraints
"stage ``s`` may start block ``i`` only if stage ``s'`` has completed
block ``i + Δ``".  This module checks those constraints against the
*synchronisation semantics* — the volatile-counter protocol of Eq. 3
(or the global barrier) — by exhaustively exploring the counter
automaton: states are per-stage progress counters, transitions are
"a ready stage completes its next block", readiness is exactly the
predicate of :class:`repro.core.sync.RelaxedPolicy` /
:class:`~repro.core.sync.BarrierPolicy` (reimplemented over the
unvalidated :class:`~repro.analysis.model.ScheduleSpec`, so illegal
windows are explorable instead of unconstructible).

Every reachable state where a *permitted* move violates a lead
constraint is a data race, reported with the concrete interleaving
that reaches it; every reachable state with unfinished stages and no
ready stage is a deadlock, likewise with its path.  The exploration is
exact: the automaton is finite because the window bounds every
adjacent-stage gap, and a traversal horizon of a few windows beyond
the pipeline depth exhibits every gap pattern longer traversals can
reach (the policy is translation-invariant in the interior; the drain
waiver only *loosens* constraints near the end).

When the window product makes exhaustive exploration too large (deep
pipelines with loose windows), the checker falls back to the analytic
bound — the minimum reachable gap between two stages under the policy
— and says so in the report notes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Report, StaticAnalysisError
from .hazards import (
    ConstraintTable,
    build_constraints,
    check_coverage_static,
    check_inplace_order,
    decomposition_for,
)
from .model import ScheduleSpec

__all__ = ["analyze_schedule", "assert_legal", "quick_check"]

State = Tuple[int, ...]


# -- synchronisation semantics over raw specs --------------------------------


class _Readiness:
    """Policy predicate mirroring :mod:`repro.core.sync`, unvalidated."""

    def __init__(self, spec: ScheduleSpec) -> None:
        self.spec = spec
        self.n = spec.n_stages
        self.barrier = spec.sync_kind == "barrier"
        self.d_l_eff, self.d_u_eff = spec.effective_windows()

    def ready(self, stage: int, c: Sequence[int],
              finished: Sequence[bool]) -> bool:
        if self.barrier:
            rounds = [c[s] + s for s in range(self.n) if not finished[s]]
            return c[stage] + stage == min(rounds)
        if stage > 0 and not finished[stage - 1]:
            if c[stage - 1] - c[stage] < self.d_l_eff[stage]:
                return False
        if stage < self.n - 1:
            if c[stage] - c[stage + 1] > self.d_u_eff[stage]:
                return False
        return True

    def why_blocked(self, stage: int, c: Sequence[int],
                    finished: Sequence[bool]) -> str:
        """Human-readable blocking reason for deadlock witnesses."""
        if self.barrier:
            return (f"stage {stage} at round {c[stage] + stage} waits for "
                    "the minimum outstanding round")
        parts = []
        if stage > 0 and not finished[stage - 1]:
            gap = c[stage - 1] - c[stage]
            if gap < self.d_l_eff[stage]:
                parts.append(f"needs c_{stage - 1} - c_{stage} >= "
                             f"{self.d_l_eff[stage]}, has {gap}")
        if stage < self.n - 1:
            gap = c[stage] - c[stage + 1]
            if gap > self.d_u_eff[stage]:
                parts.append(f"needs c_{stage} - c_{stage + 1} <= "
                             f"{self.d_u_eff[stage]}, has {gap}")
        return f"stage {stage}: " + ("; ".join(parts) or "ready")


def _format_path(path: List[Tuple[int, int]], limit: int = 28) -> str:
    """Compact ``stage:block`` interleaving rendering."""
    steps = [f"t{s}:b{b}" for s, b in path]
    if len(steps) > limit:
        head, tail = steps[: limit // 2], steps[-limit // 2:]
        steps = head + [f"... ({len(path) - limit} steps) ..."] + tail
    return " ".join(steps) if steps else "(initial state)"


def _reconstruct(parent: Dict[State, Optional[Tuple[State, int]]],
                 state: State) -> List[Tuple[int, int]]:
    """Path of ``(stage, block)`` moves from the initial state."""
    path: List[Tuple[int, int]] = []
    cur: Optional[State] = state
    while cur is not None:
        link = parent[cur]
        if link is None:
            break
        prev, stage = link
        path.append((stage, prev[stage]))
        cur = prev
    path.reverse()
    return path


def explore_counters(spec: ScheduleSpec, table: ConstraintTable,
                     n_blocks: int, report: Report,
                     max_states: int = 200_000) -> None:
    """Exhaustive (or analytic-fallback) check of the counter automaton."""
    policy = _Readiness(spec)
    P = spec.n_stages
    if P == 1:
        report.note("single pipeline stage: program order is total, no "
                    "counter races possible")
        return
    max_lead = max((c.lead for c in table.lead.values()), default=1)
    horizon = min(n_blocks,
                  max(8, max_lead + max(policy.d_u_eff, default=1) + P + 2))
    if horizon < n_blocks:
        report.note(
            f"traversal horizon capped at {horizon} of {n_blocks} blocks "
            "(gap patterns are translation-invariant in the interior)")
    # Descending-lead constraint lists per stage pair: the first
    # constraint whose conflicting block exists is the binding one.
    per_pair: Dict[Tuple[int, int], List] = {}
    for c in table.constraints:
        per_pair.setdefault((c.stage, c.other), []).append(c)
    for lst in per_pair.values():
        lst.sort(key=lambda c: -c.lead)
        # One entry per distinct lead is enough.
        seen, uniq = set(), []
        for c in lst:
            if c.lead not in seen:
                seen.add(c.lead)
                uniq.append(c)
        lst[:] = uniq

    est = horizon
    for s in range(1, P):
        width = (policy.d_u_eff[s - 1] - policy.d_l_eff[s] + 3
                 if not policy.barrier else 2)
        est *= max(2, width)
        if est > max_states:
            break
    if est > max_states:
        report.note(
            f"state space estimate {est} exceeds {max_states}; using the "
            "analytic minimum-gap bound instead of exhaustive exploration")
        _analytic_check(spec, policy, table, report)
        return

    init: State = (0,) * P
    parent: Dict[State, Optional[Tuple[State, int]]] = {init: None}
    frontier: List[State] = [init]
    reported: set = set()
    deadlocked = False
    n_seen = 1
    while frontier:
        state = frontier.pop()
        finished = [state[s] >= horizon for s in range(P)]
        if all(finished):
            continue
        ready = [s for s in range(P)
                 if not finished[s] and policy.ready(s, state, finished)]
        if not ready:
            if not deadlocked:
                deadlocked = True
                path = _reconstruct(parent, state)
                why = "\n".join(policy.why_blocked(s, state, finished)
                                for s in range(P) if not finished[s])
                report.add(
                    "deadlock", "error", f"counters {state}",
                    "the pipeline reaches a state where no unfinished "
                    "stage is ready and no counter can ever change",
                    f"interleaving: {_format_path(path)}\n{why}",
                )
            continue
        for s in ready:
            i = state[s]
            for other in range(P):
                if (s, other) not in per_pair:
                    continue
                for cons in per_pair[(s, other)]:
                    j = i + cons.delta
                    if j >= horizon or j >= n_blocks:
                        continue  # conflicting block beyond the traversal
                    if state[other] > j:
                        break  # binding lead satisfied; weaker ones too
                    key = (s, other, cons.kind)
                    if key not in reported:
                        reported.add(key)
                        path = _reconstruct(parent, state)
                        report.add(
                            f"{cons.kind}-hazard", "error",
                            f"stage {s}, block {i}, update {cons.u}",
                            f"the window permits stage {s} to start block "
                            f"{i} while stage {other} has completed only "
                            f"{state[other]} blocks: its op (block {j}, "
                            f"update {cons.w}) is pending and conflicts "
                            f"({cons.kind.upper()})",
                            f"witness interleaving: {_format_path(path)}\n"
                            f"then stage {s} starts block {i}; "
                            f"required lead c_{other} - c_{s} >= "
                            f"{cons.lead}, permitted gap "
                            f"{state[other] - i}; {cons.cells}",
                        )
                    break  # deeper constraints share the binding lead
            nxt = list(state)
            nxt[s] += 1
            nstate: State = tuple(nxt)
            if nstate not in parent:
                parent[nstate] = (state, s)
                frontier.append(nstate)
                n_seen += 1
                if n_seen > max_states:
                    report.note(
                        f"exploration truncated at {max_states} states; "
                        "falling back to the analytic minimum-gap bound")
                    _analytic_check(spec, policy, table, report)
                    return
    mode = "barrier rounds" if policy.barrier else "relaxed counters"
    report.note(
        f"exhaustively explored {n_seen} counter states over a "
        f"{horizon}-block horizon ({mode}); every permitted interleaving "
        "checked")


def _analytic_check(spec: ScheduleSpec, policy: _Readiness,
                    table: ConstraintTable, report: Report) -> None:
    """Closed-form check: minimum reachable gap vs. required lead.

    Under the relaxed policy the gap to the immediate predecessor is at
    least ``d_l_eff`` at the moment a stage starts a block, and each
    further link of the chain can be mid-block, one below its own
    bound; the barrier keeps every adjacent gap at exactly one block.
    """
    for (s, other), cons in sorted(table.lead.items()):
        if policy.barrier:
            min_gap = s - other
        else:
            chain = [policy.d_l_eff[k] for k in range(other + 1, s + 1)]
            min_gap = sum(chain) - (len(chain) - 1)
        if min_gap < cons.lead:
            report.add(
                f"{cons.kind}-hazard", "error",
                f"stage {s} vs stage {other}",
                f"the permitted minimum counter gap c_{other} - c_{s} = "
                f"{min_gap} is below the required lead {cons.lead} "
                f"(update {cons.u} vs pending update {cons.w})",
                f"{cons.cells}; any interleaving holding the chain of "
                "adjacent gaps at its lower bound exhibits the race",
            )
    if not policy.barrier:
        for s in range(spec.n_stages - 1):
            if policy.d_u_eff[s] + 1 < policy.d_l_eff[s + 1]:
                report.add(
                    "deadlock", "error", f"stages {s} and {s + 1}",
                    f"the window is empty: stage {s} stalls once its lead "
                    f"reaches d_u+1 = {policy.d_u_eff[s] + 1}, below the "
                    f"d_l = {policy.d_l_eff[s + 1]} stage {s + 1} needs "
                    "to ever start",
                    "both counters freeze before either stage finishes; "
                    "the drain waiver never engages",
                )
    report.note("analytic minimum-gap analysis (no interleaving witness "
                "paths in this mode)")


# -- top-level entry points --------------------------------------------------


def _local_shape(shape: Tuple[int, int, int],
                 topology: Tuple[int, int, int],
                 halo: int) -> Tuple[int, int, int]:
    """The largest per-rank stored-box shape, or the global shape."""
    if tuple(topology) == (1, 1, 1):
        return shape
    from ..dist.decomp import CartesianDecomposition

    try:
        decomp = CartesianDecomposition(shape, topology, max(1, halo))
    except ValueError:
        return shape
    best = shape
    best_n = -1
    for rank in range(decomp.n_ranks):
        stored = decomp.geometry(rank).stored
        if stored.ncells > best_n:
            best_n = stored.ncells
            best = stored.shape
    return best


def analyze_schedule(config, shape: Sequence[int] = (32, 32, 32),
                     topology: Sequence[int] = (1, 1, 1), *,
                     radius: int = 1,
                     inplace_step: Optional[int] = None,
                     halo: Optional[int] = None,
                     max_states: int = 200_000,
                     coverage_blocks: int = 512) -> Report:
    """Statically verify a schedule on a domain; never executes anything.

    Parameters
    ----------
    config:
        A :class:`~repro.core.parameters.PipelineConfig` or a raw
        :class:`~repro.analysis.model.ScheduleSpec` (which may encode
        schedules the config constructor would reject).
    shape:
        Global interior extents the schedule would run on.
    topology:
        Process grid; anything but ``(1, 1, 1)`` adds the distributed
        legality checks and analyzes the per-rank trapezoid geometry.
    radius:
        Stencil radius to analyze for (configs only; a ``ScheduleSpec``
        carries its own).  The shipped kernels are radius 1.
    inplace_step:
        Force the fused-engine plane direction (configs only).
    halo:
        Ghost-layer width for the distributed checks; defaults to the
        schedule's ``n*t*T`` (the paper's choice).
    max_states:
        Budget for exhaustive counter exploration before the analytic
        fallback engages.
    coverage_blocks:
        Budget for the quadratic partition check.

    Returns
    -------
    Report
        ``report.ok`` is the certification verdict; error findings
        carry concrete witnesses (interleavings, cells, ranks).
    """
    if isinstance(config, ScheduleSpec):
        spec = config
    else:
        spec = ScheduleSpec.from_config(config, radius=radius,
                                        inplace_step=inplace_step)
    shape_t: Tuple[int, int, int] = tuple(int(s) for s in shape)  # type: ignore[assignment]
    topo: Tuple[int, int, int] = tuple(int(p) for p in topology)  # type: ignore[assignment]
    where = f"{spec.describe()} on {shape_t}"
    if topo != (1, 1, 1):
        where += f" x topology {topo}"
    report = Report(subject=where)

    problems = spec.structural_problems()
    if problems:
        for p in problems:
            report.add("config-error", "error", "schedule parameters", p)
        return report

    h = spec.updates_per_pass
    eff_halo = h if halo is None else int(halo)
    if topo != (1, 1, 1):
        from .distcheck import check_distributed

        check_distributed(spec, shape_t, topo, eff_halo, report)
    local = _local_shape(shape_t, topo, eff_halo)

    decomp = decomposition_for(spec, local)
    if decomp is None:
        report.add("config-error", "error", "block geometry",
                   f"cannot build a block decomposition of {local} with "
                   f"blocks {spec.block_size} and max shift {spec.max_shift}")
        return report

    table = build_constraints(spec, decomp, report)
    check_coverage_static(spec, decomp, report,
                          max_blocks=coverage_blocks)
    check_inplace_order(spec, decomp, report)
    explore_counters(spec, table, decomp.n_traversal_blocks, report,
                     max_states=max_states)
    need = table.required_d_l()
    report.note(f"binding adjacent-stage lead: {need} block(s) "
                f"(the paper's d_l >= 1 bound{'' if need <= 1 else ' is insufficient here'})")
    return report


def assert_legal(config, shape: Sequence[int],
                 topology: Sequence[int] = (1, 1, 1), *,
                 radius: int = 1,
                 halo: Optional[int] = None) -> Report:
    """``analyze_schedule`` that raises :class:`StaticAnalysisError`.

    This is what ``repro.solve(..., validate="static")`` calls before
    handing the schedule to any executor.
    """
    report = analyze_schedule(config, shape, topology,
                              radius=radius, halo=halo)
    if not report.ok:
        raise StaticAnalysisError(report)
    return report


def quick_check(config, shape: Sequence[int] = (32, 32, 32),
                topology: Sequence[int] = (1, 1, 1)) -> bool:
    """Cheap certification used as a sweep pre-filter (autotune, serve).

    Skips the quadratic coverage check and caps the automaton low so a
    few hundred candidate configs stay cheap; a config rejected here
    would also be rejected by the full analyzer.
    """
    report = analyze_schedule(config, shape, topology,
                              max_states=5_000, coverage_blocks=0)
    return report.ok
