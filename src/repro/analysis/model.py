"""The analyzer's schedule model: an *unvalidated* configuration.

:class:`~repro.core.parameters.PipelineConfig` and
:class:`~repro.core.parameters.RelaxedSpec` refuse to construct illegal
values (``d_l < 1``, empty windows) — which is exactly right for the
execution path and exactly wrong for an analyzer whose job is to
*demonstrate* why those schedules are illegal, witness included.
:class:`ScheduleSpec` is the permissive mirror image: every field is a
plain value, nothing is rejected, and the checkers derive the same
quantities (``n_stages``, ``updates_per_pass``, effective per-stage
windows) that the runtime derives from a validated config.

It also carries two knobs the runtime fixes by construction, so the
analyzer can explore the neighbourhood of the design space:

* ``radius`` — the stencil radius.  The shipped kernels are radius-1
  star stencils (``repro.kernels.stencils`` enforces it); the analyzer
  *proves* that choice necessary: with the one-cell shift, radius 2
  makes the minimum legal lead exceed ``d_l = 1`` on the two-grid
  layout and breaks the compressed grid outright.
* ``inplace_step`` — the plane-traversal direction a fused in-place
  engine would use (``+1`` ascending, ``-1`` descending) on the first
  tiled axis, or ``None`` for "whatever the engine derives".  The
  shipped :class:`~repro.engine.inplace.InplaceEngine` derives the safe
  direction; forcing the other one reproduces the classic compressed-
  grid aliasing bug as a concrete finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["ScheduleSpec"]


@dataclass(frozen=True)
class ScheduleSpec:
    """A pipelined-blocking schedule as raw numbers, legal or not.

    Field meanings match :class:`~repro.core.parameters.PipelineConfig`;
    ``sync`` is flattened into ``sync_kind`` + window integers so an
    empty or negative window is representable.
    """

    teams: int = 1
    threads_per_team: int = 4
    updates_per_thread: int = 1
    block_size: Tuple[int, int, int] = (8, 1_000_000, 1_000_000)
    sync_kind: str = "barrier"          # "barrier" | "relaxed"
    d_l: int = 1
    d_u: int = 4
    team_delay: int = 0
    storage: str = "twogrid"            # "twogrid" | "compressed"
    engine: str = "numpy"
    passes: int = 1
    radius: int = 1
    inplace_step: Optional[int] = None  # +1 / -1 / None (= engine-derived)

    @staticmethod
    def from_config(config, radius: int = 1,
                    inplace_step: Optional[int] = None) -> "ScheduleSpec":
        """Mirror a validated :class:`PipelineConfig` into the loose model."""
        from ..core.parameters import BarrierSpec, RelaxedSpec

        sync = config.sync
        if isinstance(sync, BarrierSpec):
            kind, d_l, d_u, d_t = "barrier", 1, 1, 0
        elif isinstance(sync, RelaxedSpec):
            kind, d_l, d_u, d_t = "relaxed", sync.d_l, sync.d_u, sync.team_delay
        else:
            raise TypeError(f"unknown sync spec {sync!r}")
        return ScheduleSpec(
            teams=config.teams,
            threads_per_team=config.threads_per_team,
            updates_per_thread=config.updates_per_thread,
            block_size=tuple(config.block_size),
            sync_kind=kind,
            d_l=d_l, d_u=d_u, team_delay=d_t,
            storage=config.storage,
            engine=config.engine,
            passes=config.passes,
            radius=radius,
            inplace_step=inplace_step,
        )

    # -- derived quantities (same formulas as PipelineConfig) -----------------

    @property
    def n_stages(self) -> int:
        """Pipeline depth ``P = n * t``."""
        return self.teams * self.threads_per_team

    @property
    def updates_per_pass(self) -> int:
        """Time levels per pass ``h = n * t * T``."""
        return self.n_stages * self.updates_per_thread

    @property
    def max_shift(self) -> int:
        """Largest region shift within a pass."""
        return self.updates_per_pass - 1

    def stage_of_update(self, u: int) -> int:
        """Pipeline stage owning pass-local update ``u`` (1-based)."""
        return (u - 1) // self.updates_per_thread

    def stage_updates(self, stage: int) -> range:
        """Pass-local update numbers performed by ``stage``."""
        T = self.updates_per_thread
        return range(stage * T + 1, (stage + 1) * T + 1)

    def is_team_front(self, stage: int) -> bool:
        """True on the first thread of a team (mirrors PipelineConfig)."""
        return stage % self.threads_per_team == 0

    def is_team_rear(self, stage: int) -> bool:
        """True on the last thread of a team (mirrors PipelineConfig)."""
        return stage % self.threads_per_team == self.threads_per_team - 1

    def effective_windows(self) -> Tuple[List[int], List[int]]:
        """Per-stage ``(d_l_eff, d_u_eff)`` with the team delay folded in.

        Same arithmetic as :class:`repro.core.sync.RelaxedPolicy`, but
        computed from the raw integers so illegal windows pass through
        unchanged for the automaton to condemn.
        """
        d_l_eff: List[int] = []
        d_u_eff: List[int] = []
        for s in range(self.n_stages):
            dl, du = self.d_l, self.d_u
            if self.is_team_front(s) and s > 0:
                dl += self.team_delay
            if self.is_team_rear(s) and s < self.n_stages - 1:
                du += self.team_delay
            d_l_eff.append(dl)
            d_u_eff.append(du)
        return d_l_eff, d_u_eff

    def structural_problems(self) -> List[str]:
        """Violations that prevent even *building* the geometry.

        These mirror the constructor guards of ``PipelineConfig`` that
        are not schedule semantics but plain type/domain errors; the
        analyzer reports them as ``config-error`` findings instead of
        raising, so a sweep over candidate schedules never crashes.
        """
        probs: List[str] = []
        if self.teams < 1:
            probs.append(f"teams={self.teams} (need >= 1)")
        if self.threads_per_team < 1:
            probs.append(f"threads_per_team={self.threads_per_team} (need >= 1)")
        if self.updates_per_thread < 1:
            probs.append(f"updates_per_thread={self.updates_per_thread} (need >= 1)")
        if self.passes < 1:
            probs.append(f"passes={self.passes} (need >= 1)")
        if len(self.block_size) != 3 or any(int(b) < 1 for b in self.block_size):
            probs.append(f"block_size={self.block_size!r} (three extents >= 1)")
        if self.storage not in ("twogrid", "compressed"):
            probs.append(f"storage={self.storage!r} (twogrid|compressed)")
        if self.sync_kind not in ("barrier", "relaxed"):
            probs.append(f"sync_kind={self.sync_kind!r} (barrier|relaxed)")
        if self.radius < 1:
            probs.append(f"radius={self.radius} (need >= 1)")
        if self.inplace_step not in (None, 1, -1):
            probs.append(f"inplace_step={self.inplace_step!r} (None|+1|-1)")
        if self.team_delay < 0:
            probs.append(f"team_delay={self.team_delay} (need >= 0)")
        return probs

    def describe(self) -> str:
        """One-line label used as the report subject."""
        sync = ("barrier" if self.sync_kind == "barrier"
                else f"relaxed(d_l={self.d_l},d_u={self.d_u}"
                     + (f",d_t={self.team_delay})" if self.team_delay else ")"))
        extra = ""
        if self.radius != 1:
            extra += f",radius={self.radius}"
        if self.inplace_step is not None:
            extra += f",inplace_step={self.inplace_step:+d}"
        return (f"schedule(n={self.teams},t={self.threads_per_team},"
                f"T={self.updates_per_thread},b={self.block_size},{sync},"
                f"{self.storage},{self.engine}{extra})")
