"""Jacobi stencils and the vectorised single-sweep kernel.

Eq. 1 of the paper::

    B[i,j,k] = 1/6 * (A[i-1,j,k] + A[i+1,j,k] + A[i,j-1,k]
                      + A[i,j+1,k] + A[i,j,k-1] + A[i,j,k+1])

This module provides ready-made :class:`~repro.kernels.stencils.StarStencil`
instances plus the plain vectorised sweep used by the reference solver and
the host micro-benchmarks.  The sweep includes the optional spatial blocking
of the baseline code (Sect. 1.1) — pure traversal reordering that never
changes results, which the tests assert.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..grid.region import Box
from .stencils import StarStencil

__all__ = [
    "jacobi7",
    "jacobi5_2d",
    "anisotropic_jacobi",
    "jacobi_sweep_padded",
    "jacobi_sweep_blocked",
]


def jacobi7() -> StarStencil:
    """The paper's 7-point Jacobi stencil (Eq. 1): mean of the 6 neighbors."""
    w = 1.0 / 6.0
    return StarStencil(
        weights={
            (-1, 0, 0): w, (1, 0, 0): w,
            (0, -1, 0): w, (0, 1, 0): w,
            (0, 0, -1): w, (0, 0, 1): w,
        },
        center_weight=0.0,
        name="jacobi7",
    )


def jacobi5_2d() -> StarStencil:
    """A 2-D 5-point Jacobi embedded in 3-D (no z coupling).

    Useful for cheap tests and for the 2-D illustration of Fig. 1.
    """
    w = 0.25
    return StarStencil(
        weights={
            (0, -1, 0): w, (0, 1, 0): w,
            (0, 0, -1): w, (0, 0, 1): w,
        },
        center_weight=0.0,
        name="jacobi5-2d",
    )


def anisotropic_jacobi(wz: float, wy: float, wx: float) -> StarStencil:
    """Axis-weighted Jacobi; weights normalised to sum to one.

    Models anisotropic grids (different mesh spacing per direction) while
    keeping the convergence property ``sum(w) = 1``.
    """
    s = 2.0 * (wz + wy + wx)
    if s <= 0:
        raise ValueError("weights must have a positive sum")
    return StarStencil(
        weights={
            (-1, 0, 0): wz / s, (1, 0, 0): wz / s,
            (0, -1, 0): wy / s, (0, 1, 0): wy / s,
            (0, 0, -1): wx / s, (0, 0, 1): wx / s,
        },
        center_weight=0.0,
        name=f"jacobi7-aniso({wz:g},{wy:g},{wx:g})",
    )


def jacobi_sweep_padded(src: np.ndarray, dst: Optional[np.ndarray] = None,
                        stencil: Optional[StarStencil] = None) -> np.ndarray:
    """One full sweep over the interior of a *padded* array.

    ``src`` has ghost cells (shape ``interior + 2`` per dim); the interior
    of ``dst`` receives the updated values while ghost cells are copied
    through unchanged.  This is the memory-bandwidth-shaped kernel that the
    host micro-benchmark (experiment E10) times.
    """
    st = stencil or jacobi7()
    if dst is None:
        dst = src.copy()
    else:
        np.copyto(dst, src)
    c = src[1:-1, 1:-1, 1:-1]
    acc = np.zeros_like(c)
    for (dz, dy, dx) in st.offsets:
        w = st.weights[(dz, dy, dx)]
        sl = (slice(1 + dz, src.shape[0] - 1 + dz),
              slice(1 + dy, src.shape[1] - 1 + dy),
              slice(1 + dx, src.shape[2] - 1 + dx))
        acc += w * src[sl]
    if st.center_weight != 0.0:
        acc += st.center_weight * c
    dst[1:-1, 1:-1, 1:-1] = acc
    return dst


def jacobi_sweep_blocked(src: np.ndarray, dst: np.ndarray,
                         block: Tuple[int, int, int],
                         stencil: Optional[StarStencil] = None) -> np.ndarray:
    """Spatially blocked sweep over a padded array (baseline, Sect. 1.1).

    Traverses the interior in blocks of ``block`` cells (the paper's
    standard code used ≈ 600×20×20 with a long inner loop).  Spatial
    blocking only reorders the traversal; the result is identical to
    :func:`jacobi_sweep_padded`, which the test-suite verifies.
    """
    st = stencil or jacobi7()
    nz, ny, nx = (s - 2 for s in src.shape)
    np.copyto(dst, src)
    bz, by, bx = (max(1, int(b)) for b in block)
    for z0 in range(0, nz, bz):
        for y0 in range(0, ny, by):
            for x0 in range(0, nx, bx):
                z1, y1, x1 = min(z0 + bz, nz), min(y0 + by, ny), min(x0 + bx, nx)
                c = src[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1]
                acc = np.zeros_like(c)
                for (dz, dy, dx) in st.offsets:
                    w = st.weights[(dz, dy, dx)]
                    acc += w * src[1 + z0 + dz:1 + z1 + dz,
                                   1 + y0 + dy:1 + y1 + dy,
                                   1 + x0 + dx:1 + x1 + dx]
                if st.center_weight != 0.0:
                    acc += st.center_weight * c
                dst[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1] = acc
    return dst
