"""Jacobi stencils and the vectorised single-sweep kernel.

Eq. 1 of the paper::

    B[i,j,k] = 1/6 * (A[i-1,j,k] + A[i+1,j,k] + A[i,j-1,k]
                      + A[i,j+1,k] + A[i,j,k-1] + A[i,j,k+1])

This module provides ready-made :class:`~repro.kernels.stencils.StarStencil`
instances plus the full-array sweeps used by the reference solver and the
host micro-benchmarks.  Since PR 5 the sweeps *dispatch through the
engine registry* (:mod:`repro.engine`): ``jacobi_sweep_padded`` runs any
registered engine over the padded pair (default ``"numpy"``, the
historical vectorised gather) and ``jacobi_sweep_blocked`` is the blocked
engine with an explicit tile — pure traversal reordering that never
changes results, which the tests assert bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..engine import BlockedEngine, get_engine
from .stencils import StarStencil

__all__ = [
    "jacobi7",
    "jacobi5_2d",
    "anisotropic_jacobi",
    "jacobi_sweep_padded",
    "jacobi_sweep_blocked",
]


def jacobi7() -> StarStencil:
    """The paper's 7-point Jacobi stencil (Eq. 1): mean of the 6 neighbors."""
    w = 1.0 / 6.0
    return StarStencil(
        weights={
            (-1, 0, 0): w, (1, 0, 0): w,
            (0, -1, 0): w, (0, 1, 0): w,
            (0, 0, -1): w, (0, 0, 1): w,
        },
        center_weight=0.0,
        name="jacobi7",
    )


def jacobi5_2d() -> StarStencil:
    """A 2-D 5-point Jacobi embedded in 3-D (no z coupling).

    Useful for cheap tests and for the 2-D illustration of Fig. 1.
    """
    w = 0.25
    return StarStencil(
        weights={
            (0, -1, 0): w, (0, 1, 0): w,
            (0, 0, -1): w, (0, 0, 1): w,
        },
        center_weight=0.0,
        name="jacobi5-2d",
    )


def anisotropic_jacobi(wz: float, wy: float, wx: float) -> StarStencil:
    """Axis-weighted Jacobi; weights normalised to sum to one.

    Models anisotropic grids (different mesh spacing per direction) while
    keeping the convergence property ``sum(w) = 1``.
    """
    s = 2.0 * (wz + wy + wx)
    if s <= 0:
        raise ValueError("weights must have a positive sum")
    return StarStencil(
        weights={
            (-1, 0, 0): wz / s, (1, 0, 0): wz / s,
            (0, -1, 0): wy / s, (0, 1, 0): wy / s,
            (0, 0, -1): wx / s, (0, 0, 1): wx / s,
        },
        center_weight=0.0,
        name=f"jacobi7-aniso({wz:g},{wy:g},{wx:g})",
    )


def jacobi_sweep_padded(src: np.ndarray, dst: Optional[np.ndarray] = None,
                        stencil: Optional[StarStencil] = None,
                        engine: str = "numpy") -> np.ndarray:
    """One full sweep over the interior of a *padded* array.

    ``src`` has ghost cells (shape ``interior + 2`` per dim); the interior
    of ``dst`` receives the updated values while ghost cells are copied
    through unchanged.  This is the memory-bandwidth-shaped kernel that the
    host micro-benchmark (experiment E10) times.  ``engine`` picks the
    execution engine from the :mod:`repro.engine` registry; every engine
    produces bit-identical results.
    """
    st = stencil or jacobi7()
    if dst is None:
        dst = src.copy()
    else:
        np.copyto(dst, src)
    interior = tuple(s - 2 for s in src.shape)
    get_engine(engine).apply_padded(st, src, dst, (0, 0, 0), interior)
    return dst


def jacobi_sweep_blocked(src: np.ndarray, dst: np.ndarray,
                         block: Tuple[int, int, int],
                         stencil: Optional[StarStencil] = None) -> np.ndarray:
    """Spatially blocked sweep over a padded array (baseline, Sect. 1.1).

    Traverses the interior in blocks of ``block`` cells (the paper's
    standard code used ≈ 600×20×20 with a long inner loop) — i.e. the
    ``blocked`` engine with an explicit tile.  Spatial blocking only
    reorders the traversal; the result is identical to
    :func:`jacobi_sweep_padded`, which the test-suite verifies.
    """
    st = stencil or jacobi7()
    np.copyto(dst, src)
    interior = tuple(s - 2 for s in src.shape)
    tile = tuple(max(1, int(b)) for b in block)
    BlockedEngine(tile).apply_padded(st, src, dst, (0, 0, 0), interior)
    return dst
