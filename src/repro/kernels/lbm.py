"""D2Q9 lattice-Boltzmann kernel — the paper's motivating follow-on.

Sect. 1.1: the Jacobi solver "serves here as a prototype for more
advanced stencil-based methods like the lattice-Boltzmann algorithm
(LBM)", and the outlook announces "a hybrid, temporally blocked lattice
Boltzmann flow solver based on the principles presented in this work".
This module provides the flow kernel that solver would block: a BGK
D2Q9 stream–collide step on two lattices (the same A/B structure the
Jacobi code uses), with periodic/bounce-back boundaries and a body
force — enough to run channel (Poiseuille) flow and validate against
the analytic profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["D2Q9", "LBMState", "poiseuille_profile"]

# Velocity set (c_x, c_y) and weights of D2Q9, rest particle first.
_EX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1])
_EY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1])
_W = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4)
_OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6])


@dataclass
class LBMState:
    """Macroscopic observables of a lattice snapshot."""

    density: np.ndarray
    ux: np.ndarray
    uy: np.ndarray

    @property
    def total_mass(self) -> float:
        """Total mass (conserved by the collision operator)."""
        return float(self.density.sum())


class D2Q9:
    """BGK D2Q9 solver on a ``(ny, nx)`` lattice.

    Parameters
    ----------
    shape:
        Lattice extents ``(ny, nx)``.
    tau:
        BGK relaxation time (> 0.5 for stability); kinematic viscosity is
        ``(tau - 0.5) / 3`` in lattice units.
    body_force:
        Constant acceleration ``(fx, fy)`` applied via the Guo-less
        simple velocity-shift forcing (adequate for the small forces of
        channel flow).
    walls:
        Boolean mask of solid nodes (full-way bounce-back); defaults to
        top/bottom walls (a channel).  Flow is periodic in x.
    """

    def __init__(self, shape: Tuple[int, int], tau: float = 0.8,
                 body_force: Tuple[float, float] = (0.0, 0.0),
                 walls: Optional[np.ndarray] = None) -> None:
        if tau <= 0.5:
            raise ValueError("tau must exceed 0.5 for stability")
        self.ny, self.nx = int(shape[0]), int(shape[1])
        if self.ny < 3 or self.nx < 1:
            raise ValueError("lattice too small")
        self.tau = float(tau)
        self.fx, self.fy = (float(f) for f in body_force)
        if walls is None:
            walls = np.zeros((self.ny, self.nx), dtype=bool)
            walls[0, :] = True
            walls[-1, :] = True
        if walls.shape != (self.ny, self.nx):
            raise ValueError("walls mask shape mismatch")
        self.walls = walls
        rho0 = np.ones((self.ny, self.nx))
        self.f = self.equilibrium(rho0, np.zeros_like(rho0), np.zeros_like(rho0))
        self.steps_done = 0

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity in lattice units: ``(tau - 1/2)/3``."""
        return (self.tau - 0.5) / 3.0

    @staticmethod
    def equilibrium(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
        """The BGK equilibrium distribution for all 9 directions."""
        feq = np.empty((9,) + rho.shape)
        usq = 1.5 * (ux * ux + uy * uy)
        for i in range(9):
            cu = 3.0 * (_EX[i] * ux + _EY[i] * uy)
            feq[i] = _W[i] * rho * (1.0 + cu + 0.5 * cu * cu - usq)
        return feq

    def macroscopic(self) -> LBMState:
        """Density and velocity fields from the current populations."""
        rho = self.f.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            ux = np.where(rho > 0, (self.f * _EX[:, None, None]).sum(0) / rho, 0.0)
            uy = np.where(rho > 0, (self.f * _EY[:, None, None]).sum(0) / rho, 0.0)
        ux = np.where(self.walls, 0.0, ux)
        uy = np.where(self.walls, 0.0, uy)
        return LBMState(density=rho, ux=ux, uy=uy)

    def step(self, n: int = 1) -> None:
        """Advance ``n`` stream–collide steps (two-lattice structure)."""
        for _ in range(n):
            state = self.macroscopic()
            ux = state.ux + self.tau * self.fx          # forcing shift
            uy = state.uy + self.tau * self.fy
            feq = self.equilibrium(state.density, ux, uy)
            post = self.f - (self.f - feq) / self.tau
            # Bounce-back at solid nodes: reflect pre-streaming populations.
            for i in range(9):
                post[i][self.walls] = self.f[_OPPOSITE[i]][self.walls]
            # Streaming: periodic rolls (the "B grid" of the two-grid pair).
            new = np.empty_like(post)
            for i in range(9):
                new[i] = np.roll(np.roll(post[i], _EY[i], axis=0),
                                 _EX[i], axis=1)
            self.f = new
            self.steps_done += 1

    def run_to_steady(self, max_steps: int = 20000, check_every: int = 200,
                      tol: float = 1e-9) -> LBMState:
        """Iterate until the velocity field stops changing."""
        prev = self.macroscopic().ux
        for _ in range(0, max_steps, check_every):
            self.step(check_every)
            cur = self.macroscopic().ux
            if float(np.abs(cur - prev).max()) < tol:
                break
            prev = cur
        return self.macroscopic()


def poiseuille_profile(ny: int, fx: float, nu: float) -> np.ndarray:
    """Analytic steady channel profile ``u(y)`` for walls at y=0, ny-1.

    Plane Poiseuille flow: ``u(y) = fx/(2 nu) * y' * (H - y')`` with
    ``y'`` measured from the lower wall surface (half-way bounce-back
    places the wall half a cell outside the first fluid node).
    """
    H = ny - 2  # fluid layers
    y = np.arange(1, ny - 1) - 0.5  # wall at -0.5 relative to first fluid row
    return fx / (2.0 * nu) * y * (H - y)
