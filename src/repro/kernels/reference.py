"""Reference (naive) sweeps — the ground truth for every blocking scheme.

Temporal blocking reorders *when* each cell update happens but must never
change *what* is computed: after ``n·t·T`` pipeline updates the grid has to
equal ``n·t·T`` plain Jacobi sweeps.  These reference sweeps are the
equality target of the whole functional test rail, so they are written in
the most transparent way possible (pad, sweep, repeat).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine import get_engine
from ..grid.grid3d import Grid3D
from .jacobi import jacobi7, jacobi_sweep_padded
from .stencils import StarStencil

__all__ = ["reference_sweeps", "reference_sweep_region"]


def reference_sweeps(grid: Grid3D, field: np.ndarray, sweeps: int,
                     stencil: Optional[StarStencil] = None,
                     engine: str = "numpy") -> np.ndarray:
    """Apply ``sweeps`` full Jacobi sweeps to an interior field.

    Each sweep reads the previous time level everywhere (classic two-array
    Jacobi); the Dirichlet ring of ``grid`` supplies out-of-domain values.
    Returns a new interior array; the input is left untouched.  The
    default ``engine="numpy"`` keeps the ground truth on the most
    transparent execution path; other engines are accepted so the
    differential tests can cross-check the engines against each other.
    """
    st = stencil or jacobi7()
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    cur = grid.padded(field)
    nxt = cur.copy()
    for _ in range(sweeps):
        jacobi_sweep_padded(cur, nxt, st, engine=engine)
        cur, nxt = nxt, cur
    return cur[1:-1, 1:-1, 1:-1].copy()


def reference_sweep_region(padded_src: np.ndarray, padded_dst: np.ndarray,
                           lo, hi, stencil: Optional[StarStencil] = None,
                           engine: str = "numpy") -> None:
    """One sweep restricted to interior cells ``[lo, hi)`` of a padded pair.

    Cells outside the region keep their previous-level values in
    ``padded_dst``.  This is the building block of the *distributed*
    reference: in the multi-halo scheme update ``s`` covers a region that
    is ``h - s`` layers larger than the subdomain core (Sect. 2.1), i.e. a
    shrinking sequence of such regional sweeps.  Dispatches through the
    :mod:`repro.engine` registry, so the distributed sweeps inherit the
    engine choice.
    """
    st = stencil or jacobi7()
    get_engine(engine).apply_padded(st, padded_src, padded_dst, lo, hi)
