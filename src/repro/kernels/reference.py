"""Reference (naive) sweeps — the ground truth for every blocking scheme.

Temporal blocking reorders *when* each cell update happens but must never
change *what* is computed: after ``n·t·T`` pipeline updates the grid has to
equal ``n·t·T`` plain Jacobi sweeps.  These reference sweeps are the
equality target of the whole functional test rail, so they are written in
the most transparent way possible (pad, sweep, repeat).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid.grid3d import Grid3D
from .jacobi import jacobi7, jacobi_sweep_padded
from .stencils import StarStencil

__all__ = ["reference_sweeps", "reference_sweep_region"]


def reference_sweeps(grid: Grid3D, field: np.ndarray, sweeps: int,
                     stencil: Optional[StarStencil] = None) -> np.ndarray:
    """Apply ``sweeps`` full Jacobi sweeps to an interior field.

    Each sweep reads the previous time level everywhere (classic two-array
    Jacobi); the Dirichlet ring of ``grid`` supplies out-of-domain values.
    Returns a new interior array; the input is left untouched.
    """
    st = stencil or jacobi7()
    if sweeps < 0:
        raise ValueError("sweeps must be >= 0")
    cur = grid.padded(field)
    nxt = cur.copy()
    for _ in range(sweeps):
        jacobi_sweep_padded(cur, nxt, st)
        cur, nxt = nxt, cur
    return cur[1:-1, 1:-1, 1:-1].copy()


def reference_sweep_region(padded_src: np.ndarray, padded_dst: np.ndarray,
                           lo, hi, stencil: Optional[StarStencil] = None) -> None:
    """One sweep restricted to interior cells ``[lo, hi)`` of a padded pair.

    Cells outside the region keep their previous-level values in
    ``padded_dst``.  This is the building block of the *distributed*
    reference: in the multi-halo scheme update ``s`` covers a region that
    is ``h - s`` layers larger than the subdomain core (Sect. 2.1), i.e. a
    shrinking sequence of such regional sweeps.
    """
    st = stencil or jacobi7()
    z0, y0, x0 = lo
    z1, y1, x1 = hi
    if z1 <= z0 or y1 <= y0 or x1 <= x0:
        return
    c = padded_src[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1]
    acc = np.zeros_like(c)
    for (dz, dy, dx) in st.offsets:
        w = st.weights[(dz, dy, dx)]
        acc += w * padded_src[1 + z0 + dz:1 + z1 + dz,
                              1 + y0 + dy:1 + y1 + dy,
                              1 + x0 + dx:1 + x1 + dx]
    if st.center_weight != 0.0:
        acc += st.center_weight * c
    padded_dst[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1] = acc
