"""Stencil kernels: Jacobi (Eq. 1), generic star stencils, diagnostics, LBM.

The Jacobi algorithm "serves here as a prototype for more advanced
stencil-based methods like the lattice-Boltzmann algorithm" (Sect. 1.1);
accordingly this package provides both the prototype and a small D2Q9
lattice-Boltzmann kernel (:mod:`.lbm`) exercising the same blocking
machinery, as the paper's outlook announces.
"""

from .stencils import StarStencil, AXIS_OFFSETS
from .jacobi import (
    jacobi7,
    jacobi5_2d,
    anisotropic_jacobi,
    jacobi_sweep_padded,
    jacobi_sweep_blocked,
)
from .reference import reference_sweeps, reference_sweep_region
from .convergence import (
    change_norm,
    jacobi_residual,
    ConvergenceHistory,
    solve_to_tolerance,
)
from .lbm import D2Q9, LBMState, poiseuille_profile

__all__ = [
    "StarStencil",
    "AXIS_OFFSETS",
    "jacobi7",
    "jacobi5_2d",
    "anisotropic_jacobi",
    "jacobi_sweep_padded",
    "jacobi_sweep_blocked",
    "reference_sweeps",
    "reference_sweep_region",
    "change_norm",
    "jacobi_residual",
    "ConvergenceHistory",
    "solve_to_tolerance",
    "D2Q9",
    "LBMState",
    "poiseuille_profile",
]
