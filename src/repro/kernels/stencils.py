"""Star-stencil kernel abstraction.

The execution engines are generic over radius-1 *star* stencils (offsets
along coordinate axes only), which covers the paper's 7-point Jacobi
(Eq. 1) and common variants (weighted/damped Jacobi, anisotropic heat
kernels).  Radius 1 is a hard requirement of the one-cell-shift pipelined
schedule — the shift provides exactly one layer of history, so a radius-2
stencil would read values the scheme has already released.  The kernel
constructor enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["StarStencil", "AXIS_OFFSETS"]

Offset = Tuple[int, int, int]

#: The six axis-aligned unit offsets, in a fixed canonical order
#: (-z, +z, -y, +y, -x, +x).  Engines gather neighbor planes in this order.
AXIS_OFFSETS: Tuple[Offset, ...] = (
    (-1, 0, 0), (1, 0, 0),
    (0, -1, 0), (0, 1, 0),
    (0, 0, -1), (0, 0, 1),
)


@dataclass(frozen=True)
class StarStencil:
    """A linear radius-1 star stencil ``new = cw*c + sum_k w_k * n_k``.

    Parameters
    ----------
    weights:
        Mapping from axis offset to weight.  Offsets absent from the map
        contribute nothing (weight zero) and are *not gathered* by the
        engines, so e.g. a 2-D 5-point stencil embedded in 3-D costs no
        z-plane traffic.
    center_weight:
        Weight of the cell's own previous value (0 for plain Jacobi).
    name:
        Human-readable identifier used in reports.
    """

    weights: Dict[Offset, float]
    center_weight: float = 0.0
    name: str = "star"

    def __post_init__(self) -> None:
        for off in self.weights:
            nz = [o for o in off if o != 0]
            if len(off) != 3 or len(nz) != 1 or abs(nz[0]) != 1:
                raise ValueError(
                    f"{self.name}: offset {off} is not a radius-1 axis offset; "
                    "the pipelined one-cell-shift schedule requires star "
                    "stencils of radius 1"
                )
        object.__setattr__(self, "weights", dict(self.weights))

    @property
    def offsets(self) -> List[Offset]:
        """Gathered offsets in canonical order (subset of AXIS_OFFSETS)."""
        return [o for o in AXIS_OFFSETS if o in self.weights]

    @property
    def n_neighbors(self) -> int:
        """Number of gathered neighbor values per cell."""
        return len(self.weights)

    @property
    def flops_per_cell(self) -> int:
        """Nominal floating-point operations per cell update.

        One multiply-add per gathered neighbor plus one multiply-add for a
        nonzero center term; the paper counts Eq. 1 as 6 flops (5 adds + 1
        multiply) which this reproduces for plain Jacobi.
        """
        n = 2 * self.n_neighbors - 1
        if self.center_weight != 0.0:
            n += 2
        return max(n, 1)

    def apply(self, center: np.ndarray, neighbors: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate the stencil on gathered arrays.

        ``neighbors`` must follow :attr:`offsets` order and broadcast
        against ``center``.  Returns a new array (never aliases inputs),
        which is what permits in-place compressed-grid writes.
        """
        offs = self.offsets
        if len(neighbors) != len(offs):
            raise ValueError(
                f"{self.name}: expected {len(offs)} neighbor arrays, "
                f"got {len(neighbors)}"
            )
        out = np.zeros_like(center)
        for off, arr in zip(offs, neighbors):
            w = self.weights[off]
            if w == 1.0:
                out += arr
            elif w != 0.0:
                out += w * arr
        if self.center_weight != 0.0:
            out += self.center_weight * center
        return out

    def scaled(self, factor: float, name: str | None = None) -> "StarStencil":
        """A stencil with all weights (incl. center) multiplied by ``factor``."""
        return StarStencil(
            weights={o: w * factor for o, w in self.weights.items()},
            center_weight=self.center_weight * factor,
            name=name or f"{self.name}*{factor:g}",
        )

    def damped(self, omega: float) -> "StarStencil":
        """Damped/weighted variant ``new = (1-omega)*old + omega*stencil``.

        With ``omega=1`` this is the stencil itself.  Used by the heat
        equation example (under-relaxed Jacobi) — the engines treat it as
        just another star stencil.
        """
        return StarStencil(
            weights={o: w * omega for o, w in self.weights.items()},
            center_weight=(1.0 - omega) + omega * self.center_weight,
            name=f"{self.name}-damped({omega:g})",
        )
