"""Convergence diagnostics for Jacobi-type iterations.

The paper treats Jacobi as a performance prototype, but a usable library
must also answer "has my boundary-value problem converged?".  These helpers
compute residuals and change norms on interior fields and provide a simple
iterate-until-converged driver used by the heat-equation example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..grid.grid3d import Grid3D
from .jacobi import jacobi7, jacobi_sweep_padded
from .stencils import StarStencil

__all__ = ["change_norm", "jacobi_residual", "ConvergenceHistory", "solve_to_tolerance"]


def change_norm(a: np.ndarray, b: np.ndarray, ord: float = np.inf) -> float:
    """Norm of the difference between two interior fields (default max-norm)."""
    if a.shape != b.shape:
        raise ValueError("field shapes differ")
    return float(np.linalg.norm((a - b).ravel(), ord=ord))


def jacobi_residual(grid: Grid3D, field: np.ndarray,
                    stencil: Optional[StarStencil] = None,
                    ord: float = np.inf) -> float:
    """Residual ``||S(u) - u||`` of the fixed-point iteration.

    For the plain Jacobi stencil this is the max-norm defect of the
    discrete Laplace equation up to a constant factor; zero iff the field
    is a fixed point of the sweep.
    """
    st = stencil or jacobi7()
    padded = grid.padded(field)
    out = jacobi_sweep_padded(padded, None, st)
    return change_norm(out[1:-1, 1:-1, 1:-1], field, ord=ord)


@dataclass
class ConvergenceHistory:
    """Record of a convergence run: per-sweep change norms and the result."""

    sweeps: int
    norms: List[float]
    field: np.ndarray
    converged: bool

    @property
    def final_norm(self) -> float:
        """The last recorded change norm (inf if no sweep ran)."""
        return self.norms[-1] if self.norms else float("inf")

    def contraction_rate(self) -> float:
        """Geometric-mean contraction factor over the recorded sweeps.

        For Jacobi on a Dirichlet box this approaches the spectral radius
        of the iteration matrix; the tests use it as a sanity invariant
        (must be < 1).
        """
        usable = [n for n in self.norms if n > 0]
        if len(usable) < 2:
            return 0.0
        return float((usable[-1] / usable[0]) ** (1.0 / (len(usable) - 1)))


def solve_to_tolerance(
    grid: Grid3D,
    field: np.ndarray,
    tol: float = 1e-8,
    max_sweeps: int = 10_000,
    stencil: Optional[StarStencil] = None,
    sweep_batch: int = 1,
    callback: Optional[Callable[[int, float], None]] = None,
) -> ConvergenceHistory:
    """Iterate plain Jacobi sweeps until the change norm drops below ``tol``.

    ``sweep_batch`` sweeps are applied between norm evaluations (checking
    every sweep is wasteful for large grids).  The returned history carries
    the final field; the input array is not modified.
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    if sweep_batch < 1:
        raise ValueError("sweep_batch must be >= 1")
    st = stencil or jacobi7()
    cur = grid.padded(field)
    nxt = cur.copy()
    norms: List[float] = []
    done = 0
    while done < max_sweeps:
        prev = cur[1:-1, 1:-1, 1:-1].copy()
        for _ in range(min(sweep_batch, max_sweeps - done)):
            jacobi_sweep_padded(cur, nxt, st)
            cur, nxt = nxt, cur
            done += 1
        norm = change_norm(cur[1:-1, 1:-1, 1:-1], prev)
        norms.append(norm)
        if callback is not None:
            callback(done, norm)
        if norm < tol:
            return ConvergenceHistory(done, norms, cur[1:-1, 1:-1, 1:-1].copy(), True)
    return ConvergenceHistory(done, norms, cur[1:-1, 1:-1, 1:-1].copy(), False)
