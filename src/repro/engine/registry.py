"""Engine registry: names -> :class:`~repro.engine.base.Engine` instances.

The registry is the dispatch point every layer shares: the pipelined
executor, the distributed rank bodies, the reference sweeps, the
serving layer's content keys and the perf/autotune axes all resolve
engine *names* here.  Built-in engines register at import; optional
engines (numba) register only when their dependency imports, so a
clean environment never sees them — but still gets a helpful error
naming the missing dependency instead of a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .base import Engine

__all__ = [
    "DEFAULT_ENGINE",
    "KNOWN_ENGINES",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "engine_semantics",
    "check_engine",
]

#: The engine used when nothing is requested (today's vectorised gather).
DEFAULT_ENGINE = "numpy"

#: Every engine name this release knows about, available or not.  Names
#: outside this set are rejected with the list of valid choices; names
#: inside it that are *not* registered are optional engines whose
#: dependency is missing (see :data:`_OPTIONAL`).
KNOWN_ENGINES: Tuple[str, ...] = ("numpy", "blocked", "inplace", "numba",
                                  "numba-deep")

#: Optional engines and the dependency that gates each.
_OPTIONAL: Dict[str, str] = {"numba": "numba", "numba-deep": "numba"}

_REGISTRY: Dict[str, Engine] = {}


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Add ``engine`` under its :attr:`~Engine.name`; names are unique.

    Registration is per *process*.  The ``procmpi`` backend resolves
    engine names inside its rank processes, so a custom engine used on
    that backend must be registered at import time from a module the
    ranks also import (exactly like the spawn-pickling rule for rank
    functions, see the README) — a parent-only registration validates
    in :class:`PipelineConfig` but fails inside the spawned rank.
    Built-in engines register on ``import repro`` in every process.
    """
    if not engine.name or engine.name == "abstract":
        raise ValueError("engine must set a concrete name")
    if engine.name in _REGISTRY and not replace:
        raise ValueError(f"engine {engine.name!r} already registered")
    _REGISTRY[engine.name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine (mainly for tests registering stubs)."""
    _REGISTRY.pop(name, None)


def check_engine(name: str) -> str:
    """Validate an engine *name* without resolving the instance.

    Used by :class:`~repro.core.parameters.PipelineConfig` for
    fail-fast construction: unknown names and known-but-unavailable
    optional engines both raise with an actionable message.
    """
    get_engine(name)
    return name


def get_engine(name: str) -> Engine:
    """Resolve a registered engine by name, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if name in _OPTIONAL and name in KNOWN_ENGINES:
        raise ValueError(
            f"engine {name!r} is not available: the optional dependency "
            f"{_OPTIONAL[name]!r} is not installed (engines available "
            f"here: {available_engines()})")
    raise ValueError(
        f"unknown engine {name!r}; choose from {available_engines()}")


def available_engines() -> Tuple[str, ...]:
    """Names of the engines registered in this process.

    Built-ins first in their canonical order, then custom registrations
    in registration order — a deterministic sequence, which the
    differential tests and the perf axes iterate.
    """
    builtin = [n for n in KNOWN_ENGINES if n in _REGISTRY]
    custom = [n for n in _REGISTRY if n not in KNOWN_ENGINES]
    return tuple(builtin + custom)


def engine_semantics(name: str) -> str:
    """The bit-semantics class of ``name`` (see :mod:`repro.serve.job`)."""
    return get_engine(name).semantics
