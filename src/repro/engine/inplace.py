"""Fused in-place updates: write straight into the destination storage.

The compressed grid (Sect. 1.3) makes in-place updates possible in the
first place: every update writes shifted by one cell along the tiled
dimensions, so a cell's new value lands on a position whose old value
has already been consumed — *provided the traversal runs in the right
direction* ("reverse loops, running from large to small indices, on all
even sweeps").  The numpy engine sidesteps the ordering question by
materialising the whole region before committing it; this engine
honours it instead, sweeping the region plane by plane along the first
shifted dimension in the direction the storage offsets move, and
filling the destination view directly through
``storage.write_view``/``commit_write`` — no full-region temporary, no
copy in ``write``.  Per plane only two reusable scratch rows exist, and
the accumulation replays the numpy engine's exact per-cell operation
sequence (zero-init, one multiply-add per nonzero offset in canonical
order, centre term last), so the result stays bit-identical.

On the two-grid layout there is no aliasing at all (the destination is
the other array) and the plane sweep simply saves the temporaries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..grid.region import Box
from .base import Engine, nonzero_terms

__all__ = ["InplaceEngine"]


def _plane_axis_and_step(storage, level: int):
    """The traversal axis and direction that make in-place writes legal.

    For a compressed grid: the first shifted dimension, walked in the
    direction the storage offset of ``level`` moves relative to
    ``level-1`` (descending offsets — even passes — need ascending
    planes, and vice versa), so a committed plane only ever overwrites
    positions no later plane still reads.  For the two-grid layout any
    order is legal; ascending axis 0 keeps the walk cache-friendly.
    """
    shift_vec = getattr(storage, "shift_vec", None)
    if shift_vec and any(shift_vec):
        axis = next(d for d in range(3) if shift_vec[d])
        descending = (storage.offset_scalar(level)
                      < storage.offset_scalar(level - 1))
        return axis, (1 if descending else -1)
    return 0, 1


class InplaceEngine(Engine):
    """Plane-wise fused update writing destination views directly."""

    name = "inplace"
    semantics = "vector-v1"
    fused_inplace = True

    def apply(self, stencil, storage, region, level: int) -> None:
        if region.is_empty:
            return
        axis, step = _plane_axis_and_step(storage, level)
        planes = range(region.lo[axis], region.hi[axis])
        if step < 0:
            planes = reversed(planes)
        terms = nonzero_terms(stencil)
        cw = stencil.center_weight
        acc = scratch = None
        for p in planes:
            lo = list(region.lo)
            hi = list(region.hi)
            lo[axis], hi[axis] = p, p + 1
            plane = Box(tuple(lo), tuple(hi))
            if acc is None:
                acc = np.empty(plane.shape, dtype=storage.grid.dtype)
                scratch = np.empty_like(acc)
            center = storage.read(plane, level - 1) if cw != 0.0 else None
            acc.fill(0.0)
            for off, w in terms:
                np.multiply(storage.gather(plane, off, level - 1), w,
                            out=scratch)
                np.add(acc, scratch, out=acc)
            if cw != 0.0:
                np.multiply(center, cw, out=scratch)
                np.add(acc, scratch, out=acc)
            dst = storage.write_view(plane, level)
            dst[...] = acc
            storage.commit_write(plane, level)

    def apply_padded(self, stencil, src: np.ndarray, dst: np.ndarray,
                     lo: Sequence[int], hi: Sequence[int]) -> None:
        z0, y0, x0 = lo
        z1, y1, x1 = hi
        if z1 <= z0 or y1 <= y0 or x1 <= x0:
            return
        terms = nonzero_terms(stencil)
        cw = stencil.center_weight
        shape = (1, y1 - y0, x1 - x0)
        acc = np.empty(shape, dtype=dst.dtype)
        scratch = np.empty_like(acc)
        # dst is a separate array; the plane sweep exists to bound the
        # temporaries at one plane instead of the whole region.
        for z in range(z0, z1):
            acc.fill(0.0)
            for (dz, dy, dx), w in terms:
                np.multiply(src[1 + z + dz:2 + z + dz,
                                1 + y0 + dy:1 + y1 + dy,
                                1 + x0 + dx:1 + x1 + dx], w, out=scratch)
                np.add(acc, scratch, out=acc)
            if cw != 0.0:
                np.multiply(src[1 + z:2 + z, 1 + y0:1 + y1, 1 + x0:1 + x1],
                            cw, out=scratch)
                np.add(acc, scratch, out=acc)
            dst[1 + z:2 + z, 1 + y0:1 + y1, 1 + x0:1 + x1] = acc
