"""The :class:`Engine` contract: how one stencil update is *executed*.

The paper's central claim (Sect. 1.1/1.4) is that a temporal-blocking
*schedule* — which cells advance to which time level when — is
independent of how the innermost update is executed: plain vectorised
sweeps, spatially blocked traversal, in-place compressed-grid updates
and SIMD/JIT-compiled loops all drive the very same schedule, and only
move the achieved bandwidth closer to the hardware limit.  This module
makes that separation first-class: an :class:`Engine` executes the
update ``level-1 -> level`` on a region, and *everything else* (the
executor, the distributed rank bodies, the reference sweeps) dispatches
through it.

The invariant every engine must uphold is the repo's signature move:
**bit-identical results**.  Two engines of the same :attr:`semantics`
class must produce byte-for-byte equal fields for every stencil,
storage scheme and backend — which is what lets the serving layer share
cache entries across engines, exactly as it shares them across
transports (see :mod:`repro.serve.job`).  The differential battery in
``tests/test_engine_equivalence.py`` pins this for every registered
engine.

Two entry points cover the two ways the repo stores fields:

* :meth:`Engine.apply` — storage-mediated, used by the pipelined
  executor.  ``src``/``dst`` are implicit in the storage scheme (for
  the two-grid layout they are separate arrays; for the compressed
  grid they are shifted positions of *one* array), so the engine reads
  through ``storage.read``/``storage.gather`` (which patch Dirichlet
  values) and writes through ``storage.write`` /
  ``storage.write_view``.
* :meth:`Engine.apply_padded` — a padded two-array pair, used by the
  reference sweeps, the host micro-benchmarks and the multi-halo
  distributed sweeps.

Engines must skip offsets whose weight is exactly ``0.0`` (matching
:meth:`repro.kernels.stencils.StarStencil.apply`): a zero weight
contributes nothing and must not turn an Inf/NaN neighbour into NaN.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Engine", "nonzero_terms"]

Coord = Tuple[int, int, int]


def nonzero_terms(stencil) -> List[Tuple[Coord, float]]:
    """The gathered ``(offset, weight)`` pairs with nonzero weight.

    Canonical offset order (see ``AXIS_OFFSETS``); zero-weight offsets
    are dropped here, once, so every engine accumulates the exact same
    floating-point term sequence per cell.
    """
    return [(off, stencil.weights[off]) for off in stencil.offsets
            if stencil.weights[off] != 0.0]


class Engine:
    """One way of executing the innermost stencil update.

    Subclasses set the class attributes and implement both ``apply``
    methods.  Engines are stateless between calls (scratch buffers may
    be allocated per call); one registered instance serves every
    thread, rank and backend.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"numpy"``.
    semantics:
        The *bit-semantics class*.  Engines sharing this string promise
        byte-identical results on identical inputs; it — not the
        engine name — enters the service's content keys, so caches are
        shared within a class and never across classes.
    tiled:
        Capability flag: traverses the region in cache-sized tiles.
    fused_inplace:
        Capability flag: writes straight into the destination storage
        positions (no full-region temporary).
    jit:
        Capability flag: compiles the update loop (optional deps).
    requires:
        Name of the optional dependency gating this engine, or ``None``.
    """

    name: str = "abstract"
    semantics: str = "vector-v1"
    tiled: bool = False
    fused_inplace: bool = False
    jit: bool = False
    requires = None

    # -- the two execution entry points ---------------------------------------

    def apply(self, stencil, storage, region, level: int) -> None:
        """Execute the update ``level-1 -> level`` on ``region``.

        ``region`` is a :class:`~repro.grid.region.Box` inside the
        storage's domain (empty boxes are a no-op); ``storage`` is a
        scheme from :mod:`repro.core.storage`, whose validation hooks
        (two-buffer window, compressed-position tracking) stay active —
        an engine that reads or writes illegally raises deterministically
        instead of corrupting the schedule.
        """
        raise NotImplementedError

    def apply_padded(self, stencil, src: np.ndarray, dst: np.ndarray,
                     lo: Sequence[int], hi: Sequence[int]) -> None:
        """One sweep over interior cells ``[lo, hi)`` of a padded pair.

        ``src`` has a one-cell ghost ring (shape ``interior + 2`` per
        dim) supplying out-of-region values; ``dst`` receives the
        updated region while every other cell keeps its current value.
        ``src`` and ``dst`` must not alias.
        """
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------------

    @property
    def obs_label(self) -> str:
        """Stable observability key: the engine keyed by semantics class.

        Span args and metric names use this instead of bare ``name`` so
        traces group engines the same way the cache does — by the
        bit-semantics class that actually determines the numbers.
        """
        return f"{self.semantics}/{self.name}"

    def describe(self) -> str:
        """One-line summary for tables and reports."""
        caps = [flag for flag, on in (("tiled", self.tiled),
                                      ("fused-inplace", self.fused_inplace),
                                      ("jit", self.jit)) if on]
        extra = f" [{', '.join(caps)}]" if caps else ""
        return f"{self.name}({self.semantics}){extra}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Engine {self.describe()}>"
