"""The default engine: one vectorised NumPy gather per region.

This is the execution strategy the repo grew up with, extracted from
``core.executor._apply_update`` and ``kernels.reference``: gather the
centre and every (nonzero-weight) neighbour plane for the whole region,
evaluate the stencil as a sequence of vectorised multiply-adds in
canonical offset order, commit the result in one write.  It is the
reference point of the engine layer — every other engine must be
bit-identical to it — and the default of :class:`PipelineConfig`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Engine, nonzero_terms

__all__ = ["NumpyEngine", "accumulate_padded"]


def accumulate_padded(stencil, src: np.ndarray, lo: Sequence[int],
                      hi: Sequence[int]) -> np.ndarray:
    """Stencil values for interior cells ``[lo, hi)`` of a padded array.

    The shared building block of the padded-pair engines: one vectorised
    multiply-add per nonzero-weight offset, accumulated in canonical
    order — the exact per-cell operation sequence of
    :meth:`StarStencil.apply`, so any traversal built from this helper
    is bit-identical to the plain gather.
    """
    z0, y0, x0 = lo
    z1, y1, x1 = hi
    c = src[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1]
    acc = np.zeros_like(c)
    for (dz, dy, dx), w in nonzero_terms(stencil):
        acc += w * src[1 + z0 + dz:1 + z1 + dz,
                       1 + y0 + dy:1 + y1 + dy,
                       1 + x0 + dx:1 + x1 + dx]
    if stencil.center_weight != 0.0:
        acc += stencil.center_weight * c
    return acc


class NumpyEngine(Engine):
    """Whole-region vectorised gather (the extracted historical default)."""

    name = "numpy"
    semantics = "vector-v1"

    def apply(self, stencil, storage, region, level: int) -> None:
        if region.is_empty:
            return
        center = storage.read(region, level - 1)
        neighbors = [storage.gather(region, off, level - 1)
                     for off in stencil.offsets]
        storage.write(region, level, stencil.apply(center, neighbors))

    def apply_padded(self, stencil, src: np.ndarray, dst: np.ndarray,
                     lo: Sequence[int], hi: Sequence[int]) -> None:
        z0, y0, x0 = lo
        z1, y1, x1 = hi
        if z1 <= z0 or y1 <= y0 or x1 <= x0:
            return
        dst[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1] = \
            accumulate_padded(stencil, src, lo, hi)
