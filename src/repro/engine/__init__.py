"""repro.engine — the pluggable kernel-execution layer.

The temporal-blocking *schedule* (which cell advances when, validated
by :mod:`repro.core`) is independent of how the innermost stencil
update is *executed*; this package makes the execution strategy a
first-class, registry-dispatched choice — Sect. 1.1/1.4's point that
the same schedule can be driven arbitrarily close to the hardware
limit by changing only the inner kernel.

Built-in engines (all bit-identical, semantics class ``vector-v1``):

=============== =============================================================
``numpy``       Whole-region vectorised gather (the historical default).
``blocked``     Cache-aware tiled traversal reusing the block machinery.
``inplace``     Fused plane-wise update writing destination storage
                directly (the compressed grid's in-place trick, Sect. 1.3).
``numba``       Optional ``njit(parallel=True)`` fused multiply-add loops;
                registers only when :mod:`numba` is installed.
``numba-deep``  Optional whole-block-traversal JIT: gather, Dirichlet
                patch and destination write in one compiled region, for
                both storage schemes (also numba-gated).
=============== =============================================================

Select an engine per solve (``repro.solve(..., engine="blocked")``) or
per configuration (``PipelineConfig(engine="inplace")``); every rail —
shared, ``simmpi``, ``procmpi``, the serving layer and the perf
harness — dispatches through the same registry, so the choice follows
the configuration everywhere.
"""

from .base import Engine, nonzero_terms
from .blocked import BlockedEngine, DEFAULT_TILE
from .inplace import InplaceEngine
from .numba_deep import NumbaDeepEngine
from .numba_engine import HAVE_NUMBA, NumbaEngine, jit_cache_stats
from .numpy_engine import NumpyEngine
from .registry import (
    DEFAULT_ENGINE,
    KNOWN_ENGINES,
    available_engines,
    check_engine,
    engine_semantics,
    get_engine,
    register_engine,
    unregister_engine,
)

__all__ = [
    "Engine",
    "NumpyEngine",
    "BlockedEngine",
    "InplaceEngine",
    "NumbaEngine",
    "NumbaDeepEngine",
    "HAVE_NUMBA",
    "jit_cache_stats",
    "DEFAULT_ENGINE",
    "DEFAULT_TILE",
    "KNOWN_ENGINES",
    "nonzero_terms",
    "available_engines",
    "check_engine",
    "engine_semantics",
    "get_engine",
    "register_engine",
    "unregister_engine",
]

register_engine(NumpyEngine())
register_engine(BlockedEngine())
register_engine(InplaceEngine())
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    register_engine(NumbaEngine())
    register_engine(NumbaDeepEngine())
