"""Optional parallel-JIT engine (registers only when numba imports).

The paper's C kernels reach the bandwidth limit with compiled,
OpenMP-parallel loops; this engine is the Python-world equivalent — a
``numba.njit(parallel=True)`` fused multiply-add loop over the update
region.  It is strictly optional: when :mod:`numba` is absent the
module still imports, :data:`HAVE_NUMBA` is ``False``, nothing
registers, and ``get_engine("numba")`` raises an error naming the
missing dependency.  CI runs the suite both ways so the clean
environment can never break (the numba test leg is skip-marked).

Bit-identity with the numpy engine holds because the compiled loop
replays the same per-cell term sequence — one multiply-add per nonzero
offset in canonical order, centre term last — in the field dtype, with
``fastmath`` left off so no reassociation or FMA contraction is
allowed.  The region gathers (with their Dirichlet patching and
storage validation) stay on the storage scheme; only the arithmetic is
compiled.

Each fused loop exists in two compiled flavours with the identical
per-cell operation sequence (so they are bit-identical to each other
and to numpy):

* ``parallel=True`` — numba's OpenMP-style ``prange``, used when the
  call comes from the **main** thread (the classic single-driver case);
* serial ``nogil=True`` — used when the call comes from any **other**
  thread, i.e. a ``backend="threads"`` stage.  Numba's default
  workqueue threading layer must not be entered concurrently from
  multiple Python threads, and nested parallelism would oversubscribe
  anyway — one pipeline stage per core is the paper's own placement.
  ``nogil`` releases the GIL for the whole compiled sweep, which is
  what lets the threaded rail overlap stages on stock CPython.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from .base import Engine, nonzero_terms

__all__ = ["HAVE_NUMBA", "NumbaEngine", "jit_cache_stats"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # the supported default environment
    numba = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    def _fused_terms_impl(out, stacked, weights, center, cw, has_center):
        """out[c] = sum_k w[k]*stacked[k, c] (+ cw*center[c]), per cell.

        ``weights``/``cw`` are pre-cast to the field dtype so every
        operation rounds exactly like the numpy engine's vectorised
        multiply-adds.
        """
        nz, ny, nx = out.shape
        K = stacked.shape[0]
        for i in numba.prange(nz):
            for j in range(ny):
                for k in range(nx):
                    acc = out[i, j, k]  # pre-zeroed: typed accumulator
                    for m in range(K):
                        acc = acc + weights[m] * stacked[m, i, j, k]
                    if has_center:
                        acc = acc + cw * center[i, j, k]
                    out[i, j, k] = acc

    def _fused_padded_impl(src, dst, offsets, weights, cw, has_center,
                           z0, z1, y0, y1, x0, x1):
        """Padded-pair sweep: direct offset reads, no gather arrays."""
        K = offsets.shape[0]
        for i in numba.prange(z1 - z0):
            z = z0 + i
            for y in range(y0, y1):
                for x in range(x0, x1):
                    acc = dst[1 + z, 1 + y, 1 + x]  # pre-zeroed: typed
                    for m in range(K):
                        acc = acc + weights[m] * src[
                            1 + z + offsets[m, 0],
                            1 + y + offsets[m, 1],
                            1 + x + offsets[m, 2]]
                    if has_center:
                        acc = acc + cw * src[1 + z, 1 + y, 1 + x]
                    dst[1 + z, 1 + y, 1 + x] = acc

    # One source, two compilations: with parallel=False numba lowers
    # ``prange`` to a plain ``range``, so both flavours execute the
    # same per-cell operation sequence and remain bit-identical.
    # ``cache=True`` persists the compiled machine code next to this
    # module, so warm procmpi/spawn workers (which re-import the engine
    # package per process) load it from disk instead of re-JITting on
    # their first job — tests/test_engine_equivalence.py pins this with
    # a fresh-subprocess probe over :func:`jit_cache_stats`.
    _fused_terms = numba.njit(parallel=True, fastmath=False, cache=True)(
        _fused_terms_impl)
    _fused_terms_nogil = numba.njit(nogil=True, fastmath=False, cache=True)(
        _fused_terms_impl)
    _fused_padded = numba.njit(parallel=True, fastmath=False, cache=True)(
        _fused_padded_impl)
    _fused_padded_nogil = numba.njit(nogil=True, fastmath=False, cache=True)(
        _fused_padded_impl)


#: Every cached dispatcher this package compiled, for
#: :func:`jit_cache_stats`.  The deep engine appends its own.
_JIT_DISPATCHERS: list = []
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _JIT_DISPATCHERS.extend([_fused_terms, _fused_terms_nogil,
                             _fused_padded, _fused_padded_nogil])


def jit_cache_stats() -> dict:
    """Aggregate on-disk JIT-cache counters across every compiled flavour.

    ``hits`` counts compilations satisfied from the persisted cache
    (``cache=True``) instead of a fresh JIT; ``misses`` counts real
    compilations.  A warm worker process that re-imports this package
    must show only hits — that is the no-re-JIT-per-job pin.  Returns
    zeros when numba is absent (nothing ever compiles).
    """
    hits = misses = 0
    for disp in _JIT_DISPATCHERS:
        stats = getattr(disp, "stats", None)
        if stats is None:
            continue
        hits += sum(getattr(stats, "cache_hits", {}).values())
        misses += sum(getattr(stats, "cache_misses", {}).values())
    return {"hits": hits, "misses": misses}


def _on_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


class NumbaEngine(Engine):
    """Compiled parallel fused-multiply-add loops (optional dependency)."""

    name = "numba"
    semantics = "vector-v1"
    jit = True
    requires = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:  # defensive: registration is already gated
            raise RuntimeError("numba is not installed")

    def apply(self, stencil, storage, region, level: int) -> None:
        if region.is_empty:
            return
        dtype = storage.grid.dtype
        terms = nonzero_terms(stencil)
        cw = stencil.center_weight
        center = storage.read(region, level - 1)
        if not terms and cw == 0.0:
            storage.write(region, level,
                          np.zeros(region.shape, dtype=dtype))
            return
        if terms:
            stacked = np.stack([np.asarray(
                storage.gather(region, off, level - 1)) for off, _ in terms])
        else:
            stacked = np.zeros((0,) + region.shape, dtype=dtype)
        weights = np.asarray([w for _, w in terms], dtype=dtype)
        out = np.zeros(region.shape, dtype=dtype)
        # Off the main thread (a backend="threads" stage) take the
        # serial nogil flavour: numba's workqueue threading layer is
        # not safe for concurrent entry, and the GIL-free sweep is
        # what overlaps the stages.
        fused = _fused_terms if _on_main_thread() else _fused_terms_nogil
        fused(out, stacked, weights,
              np.ascontiguousarray(center), dtype.type(cw),
              cw != 0.0)
        storage.write(region, level, out)

    def apply_padded(self, stencil, src: np.ndarray, dst: np.ndarray,
                     lo: Sequence[int], hi: Sequence[int]) -> None:
        z0, y0, x0 = lo
        z1, y1, x1 = hi
        if z1 <= z0 or y1 <= y0 or x1 <= x0:
            return
        dtype = dst.dtype
        terms = nonzero_terms(stencil)
        cw = stencil.center_weight
        if not terms and cw == 0.0:
            dst[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1] = 0
            return
        offsets = np.asarray([off for off, _ in terms] or
                             np.zeros((0, 3)), dtype=np.int64).reshape(-1, 3)
        weights = np.asarray([w for _, w in terms], dtype=dtype)
        # Zero the target region first: the typed accumulator reads it.
        dst[1 + z0:1 + z1, 1 + y0:1 + y1, 1 + x0:1 + x1] = 0
        fused = _fused_padded if _on_main_thread() else _fused_padded_nogil
        fused(src, dst, offsets, weights, dtype.type(cw),
              cw != 0.0, z0, z1, y0, y1, x0, x1)
