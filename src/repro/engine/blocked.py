"""Cache-aware tiled traversal (the paper's spatial blocking, Sect. 1.1).

The baseline code of the paper walks the domain in blocks "of about
600x20x20" so three read planes plus the write plane fit in cache;
spatial blocking is *pure traversal reordering* and never changes
results.  This engine brings that traversal to every layer: the region
is tiled with :class:`~repro.grid.blocks.BlockDecomposition` (the same
machinery the temporal schedule uses for its block walk), each tile is
gathered and evaluated with the exact per-cell operation sequence of
the numpy engine, and the region commits in one fused write — which
keeps the update atomic with respect to the storage scheme, so the
compressed grid's shifted positions stay legal under any tiling.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..grid.blocks import BlockDecomposition
from .base import Engine
from .numpy_engine import accumulate_padded

__all__ = ["BlockedEngine", "DEFAULT_TILE"]

#: Default tile extents ``(tz, ty, tx)`` — a long contiguous x run with
#: thin z/y slabs, the shape the paper found decisive for cache reuse.
DEFAULT_TILE: Tuple[int, int, int] = (8, 32, 256)


class BlockedEngine(Engine):
    """Tiled reads, one fused write per region; bit-identical by design."""

    name = "blocked"
    semantics = "vector-v1"
    tiled = True

    def __init__(self, tile: Sequence[int] = DEFAULT_TILE) -> None:
        t = tuple(int(b) for b in tile)
        if len(t) != 3 or any(b < 1 for b in t):
            raise ValueError(f"bad tile {tile!r}")
        self.tile: Tuple[int, int, int] = t  # type: ignore[assignment]

    def _tiles(self, region):
        """Non-empty tile boxes covering ``region`` in traversal order."""
        decomp = BlockDecomposition(region, self.tile)
        for idx in decomp.iter_traversal():
            box = decomp.region(idx, 0)
            if not box.is_empty:
                yield box

    def apply(self, stencil, storage, region, level: int) -> None:
        if region.is_empty:
            return
        values = np.empty(region.shape, dtype=storage.grid.dtype)
        for tile in self._tiles(region):
            center = storage.read(tile, level - 1)
            neighbors = [storage.gather(tile, off, level - 1)
                         for off in stencil.offsets]
            rel = tuple(slice(tile.lo[d] - region.lo[d],
                              tile.hi[d] - region.lo[d]) for d in range(3))
            values[rel] = stencil.apply(center, neighbors)
        storage.write(region, level, values)

    def apply_padded(self, stencil, src: np.ndarray, dst: np.ndarray,
                     lo: Sequence[int], hi: Sequence[int]) -> None:
        z0, y0, x0 = lo
        z1, y1, x1 = hi
        if z1 <= z0 or y1 <= y0 or x1 <= x0:
            return
        tz, ty, tx = self.tile
        # dst is a separate array, so per-tile writes need no buffering.
        for zt in range(z0, z1, tz):
            for yt in range(y0, y1, ty):
                for xt in range(x0, x1, tx):
                    tlo = (zt, yt, xt)
                    thi = (min(zt + tz, z1), min(yt + ty, y1),
                           min(xt + tx, x1))
                    dst[1 + tlo[0]:1 + thi[0], 1 + tlo[1]:1 + thi[1],
                        1 + tlo[2]:1 + thi[2]] = \
                        accumulate_padded(stencil, src, tlo, thi)
