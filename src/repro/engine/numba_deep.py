"""Deep-JIT engine: one ``njit`` region per block traversal.

The plain :class:`~repro.engine.numba_engine.NumbaEngine` compiles only
the fused multiply-add — the neighbour gathers, the Dirichlet boundary
patch and the destination write still round-trip through Python/numpy
between JIT calls, materialising one full-region temporary per stencil
offset.  This engine compiles the *entire block traversal* instead: a
single compiled loop nest walks the region plane by plane, reads every
neighbour straight out of the backing array (patching out-of-domain
reads from precomputed boundary-face tables), and writes each finished
plane directly into the destination view.  No gather temporaries, no
``np.stack``, no per-offset Python dispatch — the paper's compiled-C
inner kernel, for both storage schemes.

Bit-identity with the numpy engine holds for the usual reason: per
cell the compiled loop replays the exact same floating-point term
sequence (zero-initialised accumulator, one multiply-add per nonzero
offset in canonical order, centre term last) in the field dtype with
``fastmath`` off, so no reassociation or contraction is possible.  The
engine therefore stays in the ``vector-v1`` semantics class and shares
serve-cache entries with every other built-in.

Correctness on the *compressed* grid needs one more ingredient: the
destination view aliases source positions shifted by one cell, so the
traversal must run plane-wise along the first shifted dimension in the
direction the storage offsets move (the same rule
:func:`~repro.engine.inplace._plane_axis_and_step` gives the in-place
engine, Sect. 1.3's "reverse loops ... on all even sweeps").  The
kernel computes a whole plane into a scratch buffer before storing it,
so every read of a plane precedes its write and later planes never see
clobbered positions.  Rather than compiling three axis variants, the
Python wrapper *permutes* the views so the plane axis is always axis 0
of the compiled loop — transposed numpy views carry their strides, the
per-cell arithmetic is unchanged, and one compiled body serves twogrid
(any order is legal there) and compressed storage alike.

Both flavours are compiled with ``cache=True`` (no re-JIT in warm
spawned workers) and exist in ``parallel=True`` (main-thread) and
serial ``nogil=True`` (threads-rail stage) variants, dispatched exactly
like the base numba engine.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from .base import nonzero_terms
from .inplace import _plane_axis_and_step
from .numba_engine import (
    HAVE_NUMBA,
    NumbaEngine,
    _JIT_DISPATCHERS,
    _on_main_thread,
)

__all__ = ["NumbaDeepEngine"]

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
else:
    # The loop body below stays a plain-Python function either way:
    # numba compiles it when present; without numba the interpreted
    # body (with ``prange`` as ``range``) executes the identical
    # per-cell float64 operation sequence, which is how the
    # differential battery certifies the traversal logic even in
    # numba-free environments (the engine itself stays unregistered
    # there — interpreted per-cell loops are not a production engine).
    prange = range


def _deep_block_impl(src, dst, offs, weights, cw, has_center,
                     r0a, r0b, r0c, s0a, s0b, s0c,
                     dma, dmb, dmc, step,
                     falo, fahi, fblo, fbhi, fclo, fchi):
    """One whole block traversal, fused: gather + patch + write.

    Everything arrives in *permuted* coordinates with the legal
    plane axis first: ``dst`` is the (transposed) destination view
    with the region's shape, ``src`` the (transposed) backing array
    read at ``global coord + s0``, ``r0`` the region origin, ``dm``
    the domain extents and ``f*`` the six boundary-face tables.
    ``step`` directs the plane walk; within a cell the term order
    is canonical, so the result is bit-identical to numpy.
    """
    n0, n1, n2 = dst.shape
    K = offs.shape[0]
    buf = np.zeros((n1, n2), dtype=dst.dtype)
    for ii in range(n0):
        i = ii if step > 0 else n0 - 1 - ii
        ga = r0a + i
        for j in prange(n1):
            gb = r0b + j
            for k in range(n2):
                gc = r0c + k
                buf[j, k] = 0
                acc = buf[j, k]  # pre-zeroed: typed accumulator
                for m in range(K):
                    za = ga + offs[m, 0]
                    zb = gb + offs[m, 1]
                    zc = gc + offs[m, 2]
                    if za < 0:
                        v = falo[zb, zc]
                    elif za >= dma:
                        v = fahi[zb, zc]
                    elif zb < 0:
                        v = fblo[za, zc]
                    elif zb >= dmb:
                        v = fbhi[za, zc]
                    elif zc < 0:
                        v = fclo[za, zb]
                    elif zc >= dmc:
                        v = fchi[za, zb]
                    else:
                        v = src[za + s0a, zb + s0b, zc + s0c]
                    acc = acc + weights[m] * v
                if has_center:
                    acc = acc + cw * src[ga + s0a, gb + s0b, gc + s0c]
                buf[j, k] = acc
        for j in range(n1):
            for k in range(n2):
                dst[i, j, k] = buf[j, k]


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    import numba

    _deep_block = numba.njit(parallel=True, fastmath=False, cache=True)(
        _deep_block_impl)
    _deep_block_nogil = numba.njit(nogil=True, fastmath=False, cache=True)(
        _deep_block_impl)
    _JIT_DISPATCHERS.extend([_deep_block, _deep_block_nogil])
else:
    _deep_block = _deep_block_nogil = _deep_block_impl


#: Per-storage boundary-face tables (six squeezed 2-D arrays), built
#: once per solve and freed with the storage.  One registered engine
#: instance serves every thread, so the cache is lock-guarded.
_FACE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_FACE_LOCK = threading.Lock()


def _boundary_faces(storage):
    """The six domain-face value tables, in original dimension order.

    ``faces[dim][0 if side < 0 else 1]`` is a 2-D array over the two
    remaining dimensions (ascending order) holding the Dirichlet values
    a gather would patch in for reads straying past that face — the
    same :meth:`values_for_face` data, materialised once per storage so
    the compiled kernel can index it per cell.
    """
    with _FACE_LOCK:
        cached = _FACE_CACHE.get(storage)
    if cached is not None:
        return cached
    grid = storage.grid
    faces = []
    for dim in range(3):
        rest = [grid.shape[d] for d in range(3) if d != dim]
        pair = []
        for side in (-1, 1):
            box = grid.domain.outer_face(dim, side, 1)
            vals = grid.boundary.values_for_face(dim, side, box,
                                                 dtype=grid.dtype)
            pair.append(np.ascontiguousarray(vals).reshape(rest))
        faces.append(tuple(pair))
    result = tuple(faces)
    with _FACE_LOCK:
        _FACE_CACHE[storage] = result
    return result


def _permuted_faces(faces, perm):
    """Face tables reindexed for a ``perm``-transposed coordinate frame.

    The kernel indexes the face of permuted dim ``i`` by the other two
    *permuted* coordinates in order; when that order inverts the
    original ascending-axes layout the table is transposed (a view).
    """
    out = []
    for i in range(3):
        lo, hi = faces[perm[i]]
        rem = tuple(perm[j] for j in range(3) if j != i)
        if rem[0] > rem[1]:
            lo, hi = lo.T, hi.T
        out.append((lo, hi))
    return out


class NumbaDeepEngine(NumbaEngine):
    """Whole-block-traversal JIT: gather, patch and write in one region."""

    name = "numba-deep"
    semantics = "vector-v1"
    fused_inplace = True
    jit = True
    requires = "numba"

    def apply(self, stencil, storage, region, level: int) -> None:
        if region.is_empty:
            return
        dtype = storage.grid.dtype
        terms = nonzero_terms(stencil)
        cw = stencil.center_weight
        # All validation a per-offset gather sequence would run happens
        # up front (reads), then via write_view (destination); the
        # compiled traversal itself touches raw arrays.
        storage.check_traversal(region, [off for off, _ in terms],
                                level - 1)
        dst = storage.write_view(region, level)
        src, origin = storage.raw_read_array(level - 1)
        axis, step = _plane_axis_and_step(storage, level)
        perm = (axis,) + tuple(d for d in range(3) if d != axis)
        faces = _permuted_faces(_boundary_faces(storage), perm)
        offs = np.asarray([[off[p] for p in perm] for off, _ in terms],
                          dtype=np.int64).reshape(-1, 3)
        weights = np.asarray([w for _, w in terms], dtype=dtype)
        r0 = tuple(region.lo[p] for p in perm)
        s0 = tuple(origin[p] for p in perm)
        dom = tuple(storage.grid.shape[p] for p in perm)
        kern = _deep_block if _on_main_thread() else _deep_block_nogil
        kern(src.transpose(perm), dst.transpose(perm), offs, weights,
             dtype.type(cw), cw != 0.0,
             r0[0], r0[1], r0[2], s0[0], s0[1], s0[2],
             dom[0], dom[1], dom[2], step,
             faces[0][0], faces[0][1], faces[1][0], faces[1][1],
             faces[2][0], faces[2][1])
        storage.commit_write(region, level)

    # apply_padded is inherited from NumbaEngine: a padded pair has no
    # storage indirection and no boundary patch to fuse — the base
    # engine's direct-offset compiled sweep already is the deep kernel
    # for that layout (and is bit-identical by the same argument).
