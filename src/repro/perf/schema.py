"""Versioned result schema for the perf harness.

Every artifact the harness writes — ``BENCH_<suite>.json`` documents,
per-run archives under ``benchmarks/results/`` and the per-figure JSON
the bench wrappers emit — is built from these three records.  The
on-disk layout is::

    {
      "schema": "repro.perf/1",
      "suite": "quick",
      "environment": {"python": ..., "numpy": ..., "git_sha": ...},
      "run_config": {"repeats": 3, "warmup": 1},
      "records": [
        {
          "scenario": "fig3_left@quick",
          "kind": "figure",
          "params": {"shape": [120, 120, 120], ...},
          "wall": {"repeats": 3, "warmup": 1, "min": ..., "median": ...,
                   "mean": ..., "stddev": ...},
          "metrics": {
            "socket/standard Jacobi": {"value": ..., "unit": "MLUP/s",
                                       "higher_is_better": true,
                                       "gate": true},
            ...
          }
        },
        ...
      ]
    }

``gate`` marks a metric as participating in the regression gate.  The
simulated throughputs from the calibrated DES are deterministic across
hosts, so they gate reliably; host-clock-derived metrics (real kernel
MLUP/s, STREAM GB/s) carry ``gate: false`` and are reported but never
fail CI.  Wall-clock statistics are likewise informational unless the
comparison explicitly opts in (``repro.perf compare --wall``).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

__all__ = ["SCHEMA", "Metric", "WallStats", "RunRecord", "SchemaError"]

#: Identifier + version of the on-disk document layout.  Bump the suffix
#: whenever a field changes meaning; readers refuse unknown versions.
SCHEMA = "repro.perf/1"


class SchemaError(ValueError):
    """A document (or record) does not match the expected schema."""


@dataclass(frozen=True)
class Metric:
    """One scalar measurement with its gating semantics."""

    value: float
    unit: str = ""
    #: Comparison direction: throughputs are better when higher,
    #: traffic/time volumes when lower.
    higher_is_better: bool = True
    #: Whether the regression gate may fail a run on this metric.
    gate: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            # Strict JSON has no NaN/Infinity token; round-trip them as
            # null so the CI artifact stays parseable by any consumer.
            "value": self.value if math.isfinite(self.value) else None,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "gate": self.gate,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "Metric":
        try:
            raw = d["value"]
            return cls(value=float("nan") if raw is None else float(raw),  # type: ignore[arg-type]
                       unit=str(d.get("unit", "")),
                       higher_is_better=bool(d.get("higher_is_better", True)),
                       gate=bool(d.get("gate", True)))
        except (KeyError, TypeError) as exc:
            raise SchemaError(f"malformed metric {d!r}") from exc


@dataclass(frozen=True)
class WallStats:
    """Wall-clock statistics over the measured repeats (warmups excluded)."""

    repeats: int
    warmup: int
    min: float
    median: float
    mean: float
    stddev: float

    @classmethod
    def from_samples(cls, samples: Sequence[float],
                     warmup: int = 0) -> "WallStats":
        if not samples:
            raise ValueError("need at least one timed repeat")
        return cls(
            repeats=len(samples),
            warmup=warmup,
            min=min(samples),
            median=statistics.median(samples),
            mean=statistics.fmean(samples),
            # Population stddev: well-defined for a single repeat (0.0).
            stddev=statistics.pstdev(samples),
        )

    def to_dict(self) -> Dict[str, object]:
        return {"repeats": self.repeats, "warmup": self.warmup,
                "min": self.min, "median": self.median,
                "mean": self.mean, "stddev": self.stddev}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "WallStats":
        try:
            return cls(repeats=int(d["repeats"]), warmup=int(d["warmup"]),
                       min=float(d["min"]), median=float(d["median"]),
                       mean=float(d["mean"]), stddev=float(d["stddev"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed wall stats {d!r}") from exc


def _jsonable(value: object) -> object:
    """Coerce scenario params to JSON-stable types (tuples -> lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


@dataclass(frozen=True)
class RunRecord:
    """One scenario's outcome: timing statistics plus extracted metrics."""

    scenario: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    wall: WallStats = field(default_factory=lambda: WallStats.from_samples([0.0]))
    metrics: Mapping[str, Metric] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "kind": self.kind,
            "params": _jsonable(dict(self.params)),
            "wall": self.wall.to_dict(),
            "metrics": {k: m.to_dict() for k, m in self.metrics.items()},
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RunRecord":
        try:
            name = str(d["scenario"])
        except KeyError as exc:
            raise SchemaError(f"record without scenario name: {d!r}") from exc
        metrics = d.get("metrics", {})
        if not isinstance(metrics, Mapping):
            raise SchemaError(f"record {name!r}: metrics must be a mapping")
        return cls(
            scenario=name,
            kind=str(d.get("kind", "")),
            params=dict(d.get("params", {})),  # type: ignore[arg-type]
            wall=WallStats.from_dict(d.get("wall", {})),  # type: ignore[arg-type]
            metrics={str(k): Metric.from_dict(m) for k, m in metrics.items()},
        )

    def gated_metrics(self) -> Dict[str, Metric]:
        """The metrics that may fail a regression gate."""
        return {k: m for k, m in self.metrics.items() if m.gate}
