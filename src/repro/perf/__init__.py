"""repro.perf — scenario-sweep performance harness.

The measurement subsystem behind ``python -m repro.perf`` (and the
``repro-perf`` console script):

* :mod:`repro.perf.scenarios` — declarative registry of kernel × grid
  size × backend × pipeline-config scenarios in ``quick`` / ``paper`` /
  ``stress`` suites;
* :mod:`repro.perf.runner` — warmup/repeat timing with
  min/median/mean/stddev statistics and environment capture;
* :mod:`repro.perf.store` — versioned ``BENCH_<suite>.json`` documents
  plus timestamped per-run archives under ``benchmarks/results/perf/``;
* :mod:`repro.perf.compare` — the regression gate: diff two result
  files (or one against the :mod:`repro.models` predictions) and fail
  on a >threshold slowdown of any gated metric;
* :mod:`repro.perf.db` — the measured-performance database (MLUP/s per
  host × engine × kernel × storage × size class) behind
  ``engine="auto"``, fed by :func:`~repro.perf.db.calibrate` and by
  ingesting normal suite documents;
* :mod:`repro.perf.cli` — the ``run | list | compare | report |
  calibrate`` front-end.

See EXPERIMENTS.md for the mapping from paper figures to suites and
commands.
"""

from .schema import SCHEMA, Metric, RunRecord, SchemaError, WallStats
from .scenarios import (
    SUITES,
    Scenario,
    all_scenarios,
    find_scenario,
    get_scenario,
    register,
    select_scenarios,
    unregister,
)
from .runner import (
    capture_environment,
    record_from_payload,
    run_scenario,
    run_suite,
)
from .store import (
    StoreError,
    archive_document,
    default_path,
    load_document,
    make_document,
    records_of,
    save_document,
)
from .compare import (
    DEFAULT_MODEL_THRESHOLD,
    DEFAULT_THRESHOLD,
    Delta,
    compare_documents,
    compare_to_model,
    regressions,
    render_deltas,
)
from .db import (
    DB_SCHEMA,
    PerfDB,
    PerfDBError,
    calibrate,
    default_db,
    host_fingerprint,
    perfdb_generation,
    resolve_auto_engine,
    size_class,
)
from .cli import main

__all__ = [
    "SCHEMA",
    "Metric",
    "WallStats",
    "RunRecord",
    "SchemaError",
    "SUITES",
    "Scenario",
    "register",
    "unregister",
    "get_scenario",
    "find_scenario",
    "all_scenarios",
    "select_scenarios",
    "capture_environment",
    "run_scenario",
    "run_suite",
    "record_from_payload",
    "StoreError",
    "make_document",
    "save_document",
    "load_document",
    "records_of",
    "default_path",
    "archive_document",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MODEL_THRESHOLD",
    "Delta",
    "compare_documents",
    "compare_to_model",
    "regressions",
    "render_deltas",
    "DB_SCHEMA",
    "PerfDB",
    "PerfDBError",
    "calibrate",
    "default_db",
    "host_fingerprint",
    "perfdb_generation",
    "resolve_auto_engine",
    "size_class",
    "main",
]
