"""Measured-performance database: pick engines from data, not defaults.

The engines in :mod:`repro.engine` are bit-identical, so choosing
between them is purely a throughput question — and the answer is
host-specific (the paper's own point: the same schedule lands at very
different fractions of peak depending on how the inner kernel maps to
the machine).  This module keeps the answer *measured*: a small
persistent database of MLUP/s per ``host x engine x kernel x storage x
size-class``, fed by :func:`calibrate` microbenchmarks and by normal
``repro.perf`` runs (:meth:`PerfDB.ingest_document`), and consumed by

* ``repro.autotune(..., perf_db=...)`` — measured engine factors break
  the simulated-MLUP/s tie between engine points;
* ``engine="auto"`` in :func:`repro.api.solve` / the serving layer —
  resolved per job via :func:`resolve_auto_engine`;
* :func:`repro.sim.costmodel.engine_factor` — the analytic model's
  engine-aware throughput term.

Determinism and safety:

* ``rank`` is a *stable* sort on recorded throughput — unmeasured
  engines keep their given order after every measured one, and with an
  empty database (or an unknown host) ``best`` falls back to the static
  :data:`~repro.engine.registry.DEFAULT_ENGINE`.  Auto-selection can
  therefore never be worse-informed than the default it replaces.
* Candidates are always filtered to the default engine's semantics
  class, so an auto decision can never change result bits or split the
  serve cache.
* The database carries a monotonically increasing **generation**
  (bumped on every record/load/clear), which the serve layer folds into
  its memo keys — fresh calibration data invalidates stale ``auto``
  resolutions instead of being ignored.

The on-disk form is a schema-versioned JSON document
(``repro.perfdb/1``), refused on version mismatch like every other
artifact in this package.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .schema import SchemaError

__all__ = [
    "DB_SCHEMA",
    "PerfDB",
    "PerfDBError",
    "host_fingerprint",
    "size_class",
    "default_db",
    "perfdb_generation",
    "resolve_auto_engine",
    "calibrate",
]

#: Identifier + version of the on-disk database layout.
DB_SCHEMA = "repro.perfdb/1"

#: Size-class boundaries in cells: below 32^3 the run is sync-bound,
#: above 128^3 it is memory-bound; in between both terms matter.  The
#: classes keep measurements from one regime from steering another.
_SMALL_CELLS = 32 ** 3
_LARGE_CELLS = 128 ** 3

SIZE_CLASSES = ("small", "medium", "large")


class PerfDBError(SchemaError):
    """A perf database document could not be read or fails validation.

    A :class:`~repro.perf.schema.SchemaError` subtype, so the CLI
    treats an unreadable database like any other incompatible artifact
    (usage error, exit 2) instead of a crash.
    """


def host_fingerprint() -> str:
    """A stable identifier for "this machine class" measurements.

    Coarse on purpose — OS / ISA / core count — so a container rebuild
    or kernel upgrade keeps its calibration, while a different machine
    shape (where the measured ranking may genuinely differ) gets a
    fresh slate.
    """
    return "{}-{}-{}c".format(platform.system().lower(),
                              platform.machine().lower(),
                              os.cpu_count() or 1)


def size_class(shape: Sequence[int]) -> str:
    """Bucket a grid shape into ``small`` / ``medium`` / ``large``."""
    cells = 1
    for s in shape:
        cells *= int(s)
    if cells < _SMALL_CELLS:
        return "small"
    if cells < _LARGE_CELLS:
        return "medium"
    return "large"


def _key(host: str, engine: str, kernel: str, storage: str,
         size_cls: str) -> Tuple[str, str, str, str, str]:
    return (host, engine, kernel, storage, size_cls)


class PerfDB:
    """Measured throughputs keyed host x engine x kernel x storage x size.

    Each key keeps the **best** (maximum) observed MLUP/s and a sample
    count; re-recording can only raise the stored rate, so transient
    slow samples never demote an engine that has proven itself.  All
    mutation happens under a lock (the serve scheduler reads this from
    worker threads) and bumps :attr:`generation`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[Tuple[str, str, str, str, str],
                         Dict[str, float]] = {}
        self._generation = 0

    # -- mutation ---------------------------------------------------------

    def record(self, engine: str, kernel: str, storage: str,
               size_cls: str, mlups: float,
               host: Optional[str] = None) -> None:
        """Fold one measurement in (keeps the max, counts the sample)."""
        if size_cls not in SIZE_CLASSES:
            raise PerfDBError(f"unknown size class {size_cls!r}; "
                              f"choose from {SIZE_CLASSES}")
        if not (mlups > 0.0):
            raise PerfDBError(f"non-positive throughput {mlups!r}")
        k = _key(host or host_fingerprint(), engine, kernel, storage,
                 size_cls)
        with self._lock:
            ent = self._data.setdefault(k, {"mlups": 0.0, "samples": 0})
            ent["mlups"] = max(ent["mlups"], float(mlups))
            ent["samples"] = int(ent["samples"]) + 1
            self._generation += 1

    def clear(self) -> None:
        """Drop every measurement (tests; forced recalibration)."""
        with self._lock:
            self._data.clear()
            self._generation += 1

    # -- queries ----------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotone counter bumped on record/load/clear.

        Consumers that memoise decisions derived from this database
        (:mod:`repro.serve.autoconf`) key their memos on it, so new
        measurements change future decisions instead of being shadowed
        by stale cache entries.
        """
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def lookup(self, engine: str, kernel: str, storage: str,
               size_cls: str, host: Optional[str] = None
               ) -> Optional[float]:
        """Best recorded MLUP/s for the key, or ``None`` if unmeasured."""
        k = _key(host or host_fingerprint(), engine, kernel, storage,
                 size_cls)
        with self._lock:
            ent = self._data.get(k)
            return float(ent["mlups"]) if ent else None

    def rank(self, engines: Sequence[str], kernel: str, storage: str,
             size_cls: str, host: Optional[str] = None) -> List[str]:
        """``engines`` reordered best-measured-first (stable).

        Unmeasured engines keep their given relative order *after* all
        measured ones — so with no data at all the input order (whose
        head is the caller's static preference) comes back unchanged.
        """
        measured = {e: self.lookup(e, kernel, storage, size_cls, host)
                    for e in engines}

        def sort_key(e: str) -> float:
            m = measured[e]
            return -m if m is not None else float("inf")

        return sorted(engines, key=sort_key)

    def best(self, engines: Sequence[str], kernel: str, storage: str,
             size_cls: str, host: Optional[str] = None,
             default: Optional[str] = None) -> str:
        """The measured-fastest engine, or the static default.

        ``default`` (or the registry's ``DEFAULT_ENGINE``) is returned
        whenever *no* candidate has a measurement — an empty database
        or an unknown host never changes behaviour.
        """
        if default is None:
            from ..engine import DEFAULT_ENGINE  # late: import cycle
            default = DEFAULT_ENGINE
        measured = [(self.lookup(e, kernel, storage, size_cls, host), e)
                    for e in engines]
        with_data = [(m, e) for m, e in measured if m is not None]
        if not with_data:
            return default
        top = max(with_data, key=lambda p: p[0])
        return top[1]

    def factor(self, engine: str, kernel: str, storage: str,
               size_cls: str, baseline: Optional[str] = None,
               host: Optional[str] = None) -> float:
        """Measured throughput ratio ``engine / baseline`` (1.0 unknown).

        The neutral 1.0 whenever either side is unmeasured keeps the
        consumers (autotune ranking, the cost model) exactly where they
        were before any calibration ran.
        """
        if baseline is None:
            from ..engine import DEFAULT_ENGINE  # late: import cycle
            baseline = DEFAULT_ENGINE
        num = self.lookup(engine, kernel, storage, size_cls, host)
        den = self.lookup(baseline, kernel, storage, size_cls, host)
        if num is None or den is None or den <= 0.0:
            return 1.0
        return num / den

    # -- (de)serialisation ------------------------------------------------

    def to_document(self) -> Dict[str, object]:
        """JSON-stable document (sorted rows, schema-stamped)."""
        with self._lock:
            rows = [
                {"host": k[0], "engine": k[1], "kernel": k[2],
                 "storage": k[3], "size_class": k[4],
                 "mlups": ent["mlups"], "samples": int(ent["samples"])}
                for k, ent in sorted(self._data.items())
            ]
        return {"schema": DB_SCHEMA, "measurements": rows}

    def load_document(self, doc: Mapping[str, object]) -> int:
        """Merge a document's measurements in; returns rows absorbed."""
        if doc.get("schema") != DB_SCHEMA:
            raise PerfDBError(
                f"perf database schema {doc.get('schema')!r} does not "
                f"match {DB_SCHEMA!r} (written by an incompatible "
                "version?)")
        rows = doc.get("measurements")
        if not isinstance(rows, list):
            raise PerfDBError("perf database document has no "
                              "measurements list")
        n = 0
        for row in rows:
            try:
                self.record(str(row["engine"]), str(row["kernel"]),
                            str(row["storage"]), str(row["size_class"]),
                            float(row["mlups"]), host=str(row["host"]))
                n += 1
            except (KeyError, TypeError, ValueError) as exc:
                raise PerfDBError(f"malformed measurement {row!r}") from exc
        return n

    def save(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_document(), indent=2) + "\n")
        return path

    def load(self, path: Path) -> int:
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except OSError as exc:
            raise PerfDBError(f"cannot read {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise PerfDBError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise PerfDBError(f"{path}: expected a JSON object")
        return self.load_document(raw)

    # -- ingest from normal perf runs -------------------------------------

    def ingest_document(self, doc: Mapping[str, object],
                        host: Optional[str] = None) -> int:
        """Absorb engine throughputs from a ``BENCH_<suite>.json`` doc.

        Every solver record that names an ``engine`` and ``storage`` in
        its params and reports the host-clock ``mcups`` metric becomes a
        measurement, so routine perf runs keep the database current
        without a separate calibration pass.  Returns rows absorbed.
        """
        n = 0
        for rec in doc.get("records", ()):  # type: ignore[union-attr]
            params = rec.get("params", {})
            engine = params.get("engine")
            storage = params.get("storage")
            shape = params.get("shape")
            metric = rec.get("metrics", {}).get("mcups")
            if not engine or not storage or not shape or not metric:
                continue
            mlups = float(metric.get("value") or 0.0)
            if mlups <= 0.0:
                continue
            self.record(str(engine), str(params.get("kernel", "jacobi")),
                        str(storage), size_class(shape), mlups, host=host)
            n += 1
        return n


#: The process-wide database every ``engine="auto"`` decision consults.
_DEFAULT_DB = PerfDB()


def default_db() -> PerfDB:
    """The process-wide :class:`PerfDB` instance."""
    return _DEFAULT_DB


def perfdb_generation() -> int:
    """Generation of the default database (for memo keys)."""
    return _DEFAULT_DB.generation


def resolve_auto_engine(storage: str,
                        shape: Sequence[int],
                        kernel: str = "jacobi",
                        engines: Optional[Sequence[str]] = None,
                        db: Optional[PerfDB] = None) -> str:
    """The concrete engine an ``engine="auto"`` job runs with.

    Candidates are the engines *registered in this process* that share
    the default engine's semantics class (bit-identical, same serve
    cache entries — auto-selection must never change result bits), with
    the static default first.  The measured-best candidate for this
    host / kernel / storage / size class wins; with no applicable
    measurements the static default is returned unchanged.
    """
    from ..engine import (DEFAULT_ENGINE, available_engines,
                          engine_semantics)  # late: import cycle

    base_sem = engine_semantics(DEFAULT_ENGINE)
    registered = available_engines()
    if engines is None:
        engines = registered
    # An explicit candidate list may name optional engines that are not
    # installed here — they are silently skipped, never an error: auto
    # must resolve on every host.
    candidates = [DEFAULT_ENGINE] + [
        e for e in engines
        if e != DEFAULT_ENGINE and e in registered
        and engine_semantics(e) == base_sem]
    # ``is not None``, not truthiness: an empty PerfDB has len() 0.
    d = db if db is not None else _DEFAULT_DB
    return d.best(candidates, kernel, storage, size_class(shape),
                  default=DEFAULT_ENGINE)


def calibrate(engines: Optional[Sequence[str]] = None,
              storages: Sequence[str] = ("twogrid", "compressed"),
              shape: Sequence[int] = (24, 24, 24),
              repeats: int = 2,
              db: Optional[PerfDB] = None,
              quick: bool = False,
              timer: Optional[Callable[[], float]] = None,
              size_classes: Optional[Sequence[str]] = None,
              ) -> Dict[Tuple[str, str], float]:
    """Microbenchmark every engine x storage point and record the rates.

    A small real pipelined solve per point (``validate=False`` — the
    schedule is a stock legal one; we are timing kernels, not
    re-proving legality), best-of-``repeats`` MLUP/s, recorded under
    this host for the ``jacobi`` kernel.  By default the measurement
    seeds **all** size classes (a microbenchmark is the only data a
    fresh host has; routine perf-run ingest later refines each class
    with same-sized measurements).  Returns ``{(engine, storage):
    mlups}`` for reporting.

    ``quick=True`` halves the work for smoke tests/CI;  ``timer`` is
    injectable so tests can drive deterministic fake clocks.
    """
    from dataclasses import replace

    import numpy as np

    from ..core.parameters import PipelineConfig, RelaxedSpec
    from ..core.pipeline import run_pipelined
    from ..engine import available_engines
    from ..grid import Grid3D, random_field

    if engines is None:
        engines = available_engines()
    if quick:
        shape = tuple(min(int(s), 16) for s in shape)
        repeats = 1
    clock = timer or time.perf_counter
    d = db if db is not None else _DEFAULT_DB  # empty PerfDB is falsy
    classes = tuple(size_classes) if size_classes else SIZE_CLASSES
    grid = Grid3D(tuple(int(s) for s in shape))
    field = random_field(grid.shape, np.random.default_rng(0))
    results: Dict[Tuple[str, str], float] = {}
    for storage in storages:
        cfg = PipelineConfig(teams=1, threads_per_team=2,
                             updates_per_thread=2, block_size=(4, 64, 64),
                             sync=RelaxedSpec(1, 2), storage=storage)
        for engine in engines:
            ecfg = replace(cfg, engine=engine)
            best = 0.0
            for _ in range(max(1, repeats)):
                t0 = clock()
                res = run_pipelined(grid, field, ecfg, validate=False)
                t1 = clock()
                cells = res.stats.cells_updated if res.stats else 0
                dt = t1 - t0
                if dt > 0.0 and cells > 0:
                    best = max(best, cells / dt / 1e6)
            if best > 0.0:
                results[(engine, storage)] = best
                for cls in classes:
                    d.record(engine, "jacobi", storage, cls, best)
    return results
