"""``python -m repro.perf`` — run, list, compare and report.

Subcommands::

    run        run a suite (or a glob of scenarios) and write BENCH_<suite>.json
    list       show the registered scenario matrix
    compare    diff two result files (or one file vs the analytic model)
               and exit non-zero on a gated regression
    report     render a result file as ASCII tables
    calibrate  microbenchmark every engine and record the measured
               throughputs into the perf database (engine="auto" data)

Examples::

    python -m repro.perf run --suite quick
    python -m repro.perf run --suite paper --filter 'fig3_*' --repeats 5
    python -m repro.perf list --suite quick
    python -m repro.perf compare benchmarks/baselines/BENCH_quick.json \\
        BENCH_quick.json
    python -m repro.perf compare --model BENCH_quick.json
    python -m repro.perf report BENCH_quick.json
    python -m repro.perf calibrate --quick --db perfdb.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..bench.reporting import banner, format_table
from . import compare as cmp
from . import runner, store
from .scenarios import SUITES, select_scenarios
from .schema import SchemaError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.perf",
        description="Scenario-sweep performance harness "
                    "(JSON results database + regression gate).")
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a suite and persist JSON results")
    run.add_argument("--suite", choices=SUITES, default="quick")
    run.add_argument("--filter", dest="pattern", default=None,
                     help="glob over scenario names, e.g. 'fig3_*'")
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument("--warmup", type=int, default=1)
    run.add_argument("--out", type=Path, default=None,
                     help="suite document path (default BENCH_<suite>.json)")
    run.add_argument("--archive-dir", type=Path,
                     default=store.DEFAULT_ARCHIVE_DIR,
                     help="per-run archive directory")
    run.add_argument("--no-archive", action="store_true",
                     help="skip the timestamped per-run archive copy")

    lst = sub.add_parser("list", help="show the registered scenarios")
    lst.add_argument("--suite", choices=SUITES, default=None)
    lst.add_argument("--filter", dest="pattern", default=None)

    comp = sub.add_parser(
        "compare",
        help="diff two result files; non-zero exit on a gated regression")
    comp.add_argument("base", type=Path,
                      help="baseline results file (or the file to check "
                           "with --model)")
    comp.add_argument("new", type=Path, nargs="?", default=None,
                      help="candidate results file (omit with --model)")
    comp.add_argument("--threshold", type=float, default=None,
                      help="relative slowdown that fails the gate "
                           f"(default {cmp.DEFAULT_THRESHOLD}, model "
                           f"mode {cmp.DEFAULT_MODEL_THRESHOLD})")
    comp.add_argument("--model", action="store_true",
                      help="compare one file against the analytic "
                           "repro.models predictions instead of a baseline")
    comp.add_argument("--strict", action="store_true",
                      help="with --model: exit non-zero on deviations")
    comp.add_argument("--all", dest="gate_only", action="store_false",
                      help="include non-gated (host-clock) metrics")
    comp.add_argument("--wall", dest="include_wall", action="store_true",
                      help="also compare median wall times (noisy)")

    rep = sub.add_parser("report", help="render a result file")
    rep.add_argument("result", type=Path)

    cal = sub.add_parser(
        "calibrate",
        help="microbenchmark the registered engines into the perf "
             "database that drives engine='auto'")
    cal.add_argument("--engines", default=None,
                     help="comma-separated engine names "
                          "(default: every registered engine)")
    cal.add_argument("--storages", default="twogrid,compressed",
                     help="comma-separated storage schemes")
    cal.add_argument("--repeats", type=int, default=2)
    cal.add_argument("--quick", action="store_true",
                     help="smallest problem, one repeat (CI smoke)")
    cal.add_argument("--db", type=Path, default=None,
                     help="load/merge/save the database at this path "
                          "(default: in-process only)")
    cal.add_argument("--ingest", type=Path, default=None,
                     help="also absorb engine throughputs from a "
                          "BENCH_<suite>.json document")
    return p


def _cmd_run(args: argparse.Namespace) -> int:
    def progress(name: str) -> None:
        print(f"[repro.perf] running {name} ...", flush=True)

    # Validate the selection up front so an empty match is a usage error
    # (exit 2), while a genuine fault inside a scenario body propagates
    # with its traceback instead of masquerading as one.
    if not select_scenarios(suite=args.suite, pattern=args.pattern):
        print(f"error: no scenarios match suite={args.suite!r} "
              f"pattern={args.pattern!r}", file=sys.stderr)
        return 2
    records = runner.run_suite(args.suite, repeats=args.repeats,
                               warmup=args.warmup, pattern=args.pattern,
                               progress=progress)
    doc = store.make_document(
        args.suite, records,
        environment=runner.capture_environment(),
        run_config={"repeats": args.repeats, "warmup": args.warmup,
                    "pattern": args.pattern})
    out = args.out or store.default_path(args.suite)
    store.save_document(doc, out)
    print(f"[repro.perf] wrote {out} ({len(records)} scenarios)")
    if not args.no_archive:
        archived = store.archive_document(doc, args.archive_dir)
        print(f"[repro.perf] archived {archived}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    scenarios = select_scenarios(suite=args.suite, pattern=args.pattern)
    rows = [[sc.name, sc.kind, ",".join(sc.suites),
             "yes" if sc.model else "-", sc.description]
            for sc in scenarios]
    print(format_table(["scenario", "kind", "suites", "model", "description"],
                       rows,
                       title=f"{len(rows)} registered scenario(s)"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    base_doc = store.load_document(args.base)
    if args.model:
        if args.new is not None:
            print("error: --model takes a single result file",
                  file=sys.stderr)
            return 2
        threshold = (args.threshold if args.threshold is not None
                     else cmp.DEFAULT_MODEL_THRESHOLD)
        deltas = cmp.compare_to_model(base_doc, threshold=threshold)
        print(banner(f"{args.base} vs analytic model "
                     f"(threshold {threshold:.0%})"))
        print(cmp.render_deltas(deltas, base_label="model",
                                new_label="measured"))
        deviations = [d for d in deltas if d.status == "deviates"]
        print(f"\n{len(deviations)} deviation(s) beyond {threshold:.0%} "
              "(expected where the paper's model fails, e.g. T >= 2)")
        return 1 if args.strict and deviations else 0

    if args.new is None:
        print("error: compare needs BASE and NEW files (or --model)",
              file=sys.stderr)
        return 2
    new_doc = store.load_document(args.new)
    threshold = (args.threshold if args.threshold is not None
                 else cmp.DEFAULT_THRESHOLD)
    deltas = cmp.compare_documents(base_doc, new_doc, threshold=threshold,
                                   gate_only=args.gate_only,
                                   include_wall=args.include_wall)
    print(banner(f"{args.base} -> {args.new} (threshold {threshold:.0%})"))
    print(cmp.render_deltas(deltas))
    bad = cmp.regressions(deltas)
    if bad:
        print(f"\nFAIL: {len(bad)} metric(s) regressed by more than "
              f"{threshold:.0%}:")
        for d in bad:
            print(f"  - {d.describe()}")
        return 1
    print(f"\nOK: no gated metric regressed by more than {threshold:.0%} "
          f"({len(deltas)} comparisons)")
    return 0


def _obs_derived(record) -> list:
    """Observability-derived summary columns, for records that carry them.

    Suites that record obs metrics (traced solves, serve scenarios) get
    a one-line digest under their table: halo-exchange wait share, span
    coverage, and the cache hit ratio ``hits / (hits + backend solves)``.
    """
    m = record.metrics
    notes = []
    if "obs_exchange_wait_frac" in m:
        notes.append(f"exchange wait {m['obs_exchange_wait_frac'].value:.1%}")
    if "obs_span_coverage" in m:
        notes.append(f"span coverage {m['obs_span_coverage'].value:.1%}")
    if "cache_hits" in m and "backend_solves" in m:
        hits = m["cache_hits"].value
        total = hits + m["backend_solves"].value
        if total > 0:
            notes.append(f"cache hit ratio {hits / total:.1%}")
    return notes


def _cmd_report(args: argparse.Namespace) -> int:
    doc = store.load_document(args.result)
    env = doc.get("environment", {})
    head = ", ".join(f"{k}={v}" for k, v in env.items() if v is not None)
    print(banner(f"repro.perf results — suite '{doc.get('suite')}'"))
    if head:
        print(head)
    for record in store.records_of(doc):
        w = record.wall
        print(f"\n{record.scenario}  [{record.kind}]  "
              f"wall median {w.median:.4f}s "
              f"(min {w.min:.4f}s, stddev {w.stddev:.4f}s, "
              f"{w.repeats} repeat(s), {w.warmup} warmup)")
        rows = [[name, m.value, m.unit,
                 "higher" if m.higher_is_better else "lower",
                 "yes" if m.gate else "-"]
                for name, m in record.metrics.items()]
        print(format_table(["metric", "value", "unit", "better", "gate"],
                           rows, floatfmt="12.3f"))
        derived = _obs_derived(record)
        if derived:
            print("obs: " + ", ".join(derived))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from . import db as perfdb

    target = perfdb.default_db()
    if args.db is not None and args.db.exists():
        absorbed = target.load(args.db)
        print(f"[repro.perf] loaded {absorbed} measurement(s) "
              f"from {args.db}")
    if args.ingest is not None:
        doc = store.load_document(args.ingest)
        absorbed = target.ingest_document(doc)
        print(f"[repro.perf] ingested {absorbed} measurement(s) "
              f"from {args.ingest}")
    engines = (tuple(e for e in args.engines.split(",") if e)
               if args.engines else None)
    storages = tuple(s for s in args.storages.split(",") if s)
    results = perfdb.calibrate(engines=engines, storages=storages,
                               repeats=args.repeats, db=target,
                               quick=args.quick)
    host = perfdb.host_fingerprint()
    rows = [[engine, storage_, f"{mlups:.1f}"]
            for (engine, storage_), mlups in sorted(results.items())]
    print(format_table(["engine", "storage", "MLUP/s"], rows,
                       title=f"calibrated on {host} "
                             f"({len(results)} point(s))"))
    best = perfdb.resolve_auto_engine("twogrid", (300, 300, 300))
    print(f"engine='auto' now resolves to {best!r} "
          f"on twogrid (db generation {target.generation})")
    if args.db is not None:
        target.save(args.db)
        print(f"[repro.perf] wrote {args.db}")
    return 0


_COMMANDS = {"run": _cmd_run, "list": _cmd_list, "compare": _cmd_compare,
             "report": _cmd_report, "calibrate": _cmd_calibrate}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SchemaError as exc:
        # Unreadable/incompatible result files are usage errors; any
        # other exception is a real fault and keeps its traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
