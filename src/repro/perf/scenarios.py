"""Declarative scenario registry: kernel × size × backend × engine × pipeline.

A :class:`Scenario` names one reproducible measurement — a figure
regeneration through the calibrated DES, a real-NumPy kernel timing, or
a functional ``solve()`` on one of the execution backends — together
with the parameters that define it and a ``summarize`` hook that turns
its payload into flat, gateable :class:`~repro.perf.schema.Metric`\\ s.

Scenarios are grouped into **suites**:

``quick``
    Small shapes, finishes in well under a minute; the CI smoke gate.
``paper``
    The paper's own problem sizes (300^3-class); regenerates every
    figure series exactly as the ``benchmarks/bench_*.py`` wrappers do.
``stress``
    Larger-than-paper shapes and wider topologies for soak runs.

Scale-dependent scenarios are registered once per suite under
``<name>@<suite>`` (e.g. ``fig3_left@quick``); scale-independent ones
(the pure analytic models) appear in every suite under their bare name.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from functools import partial
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..bench.reporting import ratio
from .schema import Metric

__all__ = [
    "SUITES",
    "Scenario",
    "register",
    "unregister",
    "get_scenario",
    "find_scenario",
    "all_scenarios",
    "select_scenarios",
]

#: The suites every scenario must declare membership of (a subset).
SUITES = ("quick", "paper", "stress")

#: Simulation shape per suite — quick trades the >=250^3 size-stability
#: of the DES rates (see ``repro.bench.figures``) for speed.
SUITE_SHAPES: Dict[str, Tuple[int, int, int]] = {
    "quick": (120, 120, 120),
    "paper": (300, 300, 300),
    "stress": (420, 420, 420),
}


@dataclass(frozen=True)
class Scenario:
    """One registered measurement.

    ``fn`` produces the payload (timed by the runner); ``summarize``
    maps ``(payload, wall_seconds)`` to named metrics.  ``setup`` (if
    given) allocates state once, outside the timed region, and its
    result is passed to ``fn``.  ``model``, when present, returns the
    analytical :mod:`repro.models` prediction for a subset of the metric
    names — the target of ``repro.perf compare --model``.
    """

    name: str
    kind: str  # "figure" | "kernel" | "solver"
    suites: Tuple[str, ...]
    fn: Callable[..., object]
    summarize: Callable[[object, float], Dict[str, Metric]]
    params: Mapping[str, object] = field(default_factory=dict)
    setup: Optional[Callable[[], object]] = None
    model: Optional[Callable[[], Dict[str, float]]] = None
    description: str = ""

    def run_once(self, state: object = None) -> object:
        """Execute the measured body once (state from :attr:`setup`)."""
        return self.fn(state) if self.setup is not None else self.fn()


_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry; names are unique."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    unknown = set(scenario.suites) - set(SUITES)
    if unknown:
        raise ValueError(
            f"scenario {scenario.name!r} declares unknown suites {sorted(unknown)}")
    if not scenario.suites:
        raise ValueError(f"scenario {scenario.name!r} belongs to no suite")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (mainly for tests registering stubs)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    """Exact-name lookup with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = [n for n in sorted(_REGISTRY)
                 if n.split("@")[0] == name.split("@")[0]]
        hint = f"; did you mean one of {close}?" if close else ""
        raise KeyError(f"unknown scenario {name!r}{hint}") from None


def find_scenario(base: str, suite: str) -> Scenario:
    """Resolve ``base`` at ``suite`` scale: ``base@suite`` if registered,
    else the scale-independent ``base``."""
    if f"{base}@{suite}" in _REGISTRY:
        return _REGISTRY[f"{base}@{suite}"]
    return get_scenario(base)


def all_scenarios() -> List[Scenario]:
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


def select_scenarios(suite: Optional[str] = None,
                     pattern: Optional[str] = None) -> List[Scenario]:
    """Scenarios of ``suite`` (all if None), filtered by a glob pattern."""
    if suite is not None and suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {SUITES}")
    out = []
    for sc in all_scenarios():
        if suite is not None and suite not in sc.suites:
            continue
        if pattern is not None and not fnmatch.fnmatch(sc.name, pattern):
            continue
        out.append(sc)
    return out


# --------------------------------------------------------------------------
# Summarizers: payload -> flat metrics.
# --------------------------------------------------------------------------

def _sum_nested_mlups(data: Mapping[str, Mapping[str, float]],
                      wall: float) -> Dict[str, Metric]:
    """fig3_left-style ``{group: {variant: mlups}}`` payloads."""
    return {f"{group}/{variant}": Metric(value, unit="MLUP/s")
            for group, variants in data.items()
            for variant, value in variants.items()}


def _sum_series_map(data: Mapping[str, Sequence[Tuple[object, float]]],
                    wall: float, xname: str, unit: str) -> Dict[str, Metric]:
    """``{label: [(x, y), ...]}`` payloads (fig3_right)."""
    return {f"{label}/{xname}={x}": Metric(y, unit=unit)
            for label, series in data.items()
            for x, y in series}


def _sum_fig5(data, wall: float) -> Dict[str, Metric]:
    out: Dict[str, Metric] = {}
    for h, series in data["advantage"].items():
        for L, v in series:
            out[f"advantage/h={h}/L={L}"] = Metric(v, unit="x")
    for h, series in data["efficiency"].items():
        for L, v in series:
            out[f"efficiency/h={h}/L={L}"] = Metric(v, unit="frac")
    return out


def _sum_fig6(data, wall: float) -> Dict[str, Metric]:
    out: Dict[str, Metric] = {}
    for scaling in ("strong", "weak"):
        for name, series in data[scaling].items():
            gate = not name.startswith("ideal")
            for nodes, glups in series:
                out[f"{scaling}/{name}/nodes={nodes}"] = Metric(
                    glups, unit="GLUP/s", gate=gate)
    return out


def _sum_model_validation(rows, wall: float) -> Dict[str, Metric]:
    out: Dict[str, Metric] = {}
    for r in rows:
        T = int(r["T"])
        out[f"T={T}/sim_mlups"] = Metric(r["sim_mlups"], unit="MLUP/s")
        out[f"T={T}/model_mlups"] = Metric(r["model_mlups"], unit="MLUP/s")
        out[f"T={T}/sim_speedup"] = Metric(r["sim_speedup"], unit="x",
                                           gate=False)
    return out


def _sum_team_delay(series, wall: float) -> Dict[str, Metric]:
    return {f"d_t={dt}": Metric(v, unit="MLUP/s") for dt, v in series}


def _sum_block_size(rows, wall: float) -> Dict[str, Metric]:
    out: Dict[str, Metric] = {}
    for bx, mlups, reloads in rows:
        out[f"b_x={bx}/mlups"] = Metric(mlups, unit="MLUP/s")
        out[f"b_x={bx}/reloads"] = Metric(float(reloads), unit="blocks",
                                          higher_is_better=False)
    return out


def _sum_nt_stores(vals, wall: float) -> Dict[str, Metric]:
    return {name: Metric(v, unit="MLUP/s") for name, v in vals.items()}


def _sum_stream(res, wall: float) -> Dict[str, Metric]:
    # Host-clock measurement: informational, never gates CI.
    return {"bandwidth": Metric(res.gbs(), unit="GB/s", gate=False)}


def _sum_host_kernel(cells: int):
    def summarize(payload, wall: float) -> Dict[str, Metric]:
        return {"mlups": Metric(ratio(cells, wall) / 1e6,
                                unit="MLUP/s", gate=False)}
    return summarize


def _sum_solve(payload, wall: float) -> Dict[str, Metric]:
    cells = payload.stats.cells_updated if payload.stats else 0
    out = {
        "mcups": Metric(ratio(cells, wall) / 1e6, unit="Mcell/s",
                        gate=False),
        "cells_updated": Metric(float(cells), unit="cells", gate=False),
        # Communication volume is deterministic for a fixed scenario —
        # a change is an algorithmic regression, not noise.
        "bytes_exchanged": Metric(float(payload.bytes_exchanged), unit="B",
                                  higher_is_better=False),
        "messages": Metric(float(payload.messages), unit="msgs",
                           higher_is_better=False),
    }
    obs = getattr(payload, "metrics", None)
    if obs:
        # Traced solve: the span count is an event counter (fixed
        # schedule => fixed spans), gated exactly like the
        # communication counters; durations/fractions are host-clock
        # and stay informational.
        out["obs_spans"] = Metric(float(obs.get("spans", 0.0)),
                                  unit="spans", higher_is_better=False)
        out["obs_span_coverage"] = Metric(obs.get("span_coverage", 0.0),
                                          unit="frac", gate=False)
        if "exchange_wait_frac" in obs:
            out["obs_exchange_wait_frac"] = Metric(
                obs["exchange_wait_frac"], unit="frac", gate=False)
    return out


def _sum_solve_auto(payload, wall: float) -> Dict[str, Metric]:
    # Every gated metric is derived from an *injected* deterministic
    # measurement table, so the gate is host-stable: auto must pick the
    # measured-best engine (rank 0) and may never pick one measured
    # slower than the static default.
    return {
        "auto_rank": Metric(float(payload["rank"]), unit="rank",
                            higher_is_better=False),
        "auto_not_worse_than_default": Metric(
            float(payload["not_worse"]), unit="bool"),
        "bit_identical_to_default": Metric(
            float(payload["bit_identical"]), unit="bool"),
        "cells_updated": Metric(float(payload["cells"]), unit="cells",
                                gate=False),
        "mcups": Metric(ratio(payload["cells"], wall) / 1e6,
                        unit="Mcell/s", gate=False),
    }


# --------------------------------------------------------------------------
# Analytical-model predictions (repro.models) for `compare --model`.
# --------------------------------------------------------------------------

def _fig3_left_model() -> Dict[str, float]:
    """Eq. 5 closed-form markers for the measured pipelined variants."""
    from ..machine.presets import nehalem_ep
    from ..models import nehalem_speedup_formula
    from ..sim.baseline_sim import standard_jacobi_mlups

    m = nehalem_ep()
    out: Dict[str, float] = {}
    for label, teams in (("socket", 1), ("node", 2)):
        std = standard_jacobi_mlups(m, threads=4 * teams).mlups
        out[f"{label}/pipeline relaxed T=1"] = \
            nehalem_speedup_formula(1) * std
        out[f"{label}/pipeline relaxed d_u=4"] = \
            nehalem_speedup_formula(2) * std
    return out


#: The T sweep shared by the model_validation run and its prediction.
MODEL_VALIDATION_T = (1, 2, 4)


def _model_validation_model() -> Dict[str, float]:
    """Eq. 5 prediction of the simulated MLUP/s per T."""
    from ..machine.presets import nehalem_ep
    from ..models import PipelineModel
    from ..sim.baseline_sim import standard_jacobi_mlups

    m = nehalem_ep()
    std = standard_jacobi_mlups(m, threads=4).mlups
    model = PipelineModel.from_machine(m)
    return {f"T={T}/sim_mlups": model.speedup(4, T) * std
            for T in MODEL_VALIDATION_T}


# --------------------------------------------------------------------------
# Built-in registrations.
# --------------------------------------------------------------------------

def _figure_fn(name: str, kwargs: Mapping[str, object]):
    """Late-bound figure generator so importing repro.perf stays cheap.

    ``kwargs`` is the SAME mapping stored as the scenario's call params,
    so the persisted JSON metadata cannot drift from what actually ran.
    """
    def call():
        from ..bench import figures
        return getattr(figures, name)(**kwargs)
    return call


def _register_figures() -> None:
    for suite in SUITES:
        shape = SUITE_SHAPES[suite]
        scale = {"suites": (suite,), "kind": "figure"}

        def figure(base: str, generator: str, call_kwargs, summarize,
                   description: str, model=None, extra_params=None,
                   _suite=suite, _scale=scale):
            """One scale-dependent figure scenario; ``call_kwargs`` is
            both the generator's argument list and (plus display-only
            ``extra_params``) the persisted metadata."""
            register(Scenario(
                name=f"{base}@{_suite}",
                fn=_figure_fn(generator, call_kwargs),
                summarize=summarize,
                params={**call_kwargs, **(extra_params or {})},
                model=model,
                description=description,
                **_scale))

        figure("fig3_left", "fig3_left", {"shape": shape},
               _sum_nested_mlups,
               "Fig. 3 (left): socket/node MLUP/s per variant",
               model=_fig3_left_model,
               extra_params={"threads_per_team": 4, "teams": [1, 2],
                             "storage": "compressed"})
        figure("fig3_right", "fig3_right",
               {"shape": shape, "loosenesses": (0, 1, 2, 3, 4, 5)},
               partial(_sum_series_map, xname="loose", unit="GLUP/s"),
               "Fig. 3 (right): GLUP/s vs pipeline looseness")
        figure("model_validation", "model_validation",
               {"shape": shape, "T_values": MODEL_VALIDATION_T},
               _sum_model_validation,
               "Eq. 5 model vs simulation per T",
               model=_model_validation_model)
        figure("ablation_team_delay", "ablation_team_delay",
               {"shape": shape, "delays": (0, 2, 4, 8, 16)},
               _sum_team_delay, "E7: team delay d_t sweep")
        figure("ablation_block_size", "ablation_block_size",
               {"shape": shape, "bx_values": (30, 60, 120, 300)},
               _sum_block_size, "E8: inner block length b_x sweep")
        figure("ablation_nt_stores", "ablation_nt_stores",
               {"shape": shape}, _sum_nt_stores,
               "E9: storage scheme and NT stores")

    # Pure analytic models — identical at every scale, in every suite.
    fig5_kwargs = {"h_values": (2, 4, 8, 16, 32)}
    register(Scenario(
        name="fig5",
        kind="figure",
        suites=SUITES,
        fn=_figure_fn("fig5_series", fig5_kwargs),
        summarize=_sum_fig5,
        params={**fig5_kwargs, "accounting": "paper"},
        description="Fig. 5: multi-layer halo advantage (halo model)",
    ))
    fig6_kwargs = {"node_counts": (1, 8, 27, 64)}
    register(Scenario(
        name="fig6",
        kind="figure",
        suites=SUITES,
        fn=_figure_fn("fig6_series", fig6_kwargs),
        summarize=_sum_fig6,
        params=fig6_kwargs,
        description="Fig. 6: strong/weak cluster scaling (cluster model)",
    ))


#: Host-kernel problem sizes per suite (cube edge; real NumPy arrays).
KERNEL_SIZES = {"quick": 64, "paper": 128, "stress": 192}
#: Host STREAM working-set MB per suite.
STREAM_MB = {"quick": 64, "paper": 128, "stress": 256}
#: Functional-solver problems per suite:
#: (grid edge, teams, threads/team, T, block, topology for simmpi).
SOLVER_SIZES = {
    "quick": (32, 2, 2, 2, (8, 64, 64), (2, 1, 1)),
    "paper": (48, 2, 2, 2, (8, 64, 64), (2, 1, 1)),
    "stress": (64, 2, 2, 2, (8, 64, 64), (2, 2, 1)),
}


def _kernel_setup(n: int):
    def setup():
        import numpy as np

        from ..grid import Grid3D, random_field
        from ..kernels.jacobi import jacobi_sweep_padded

        grid = Grid3D((n, n, n))
        src = grid.padded(random_field(grid.shape,
                                       np.random.default_rng(0)))
        return src, src.copy()
    return setup


def _solver_problem(suite: str):
    import numpy as np

    from ..core.parameters import PipelineConfig, RelaxedSpec
    from ..grid import Grid3D, random_field

    n, teams, tpt, T, block, topo = SOLVER_SIZES[suite]
    grid = Grid3D((n, n, n))
    field_ = random_field(grid.shape, np.random.default_rng(0))
    cfg = PipelineConfig(teams=teams, threads_per_team=tpt,
                         updates_per_thread=T, block_size=block,
                         sync=RelaxedSpec(1, 4))
    return grid, field_, cfg, topo


def solver_schedules(suite: str):
    """Every distinct schedule the ``suite``'s solver scenarios run.

    Yields ``(name, shape, config, topology)`` for the static analyzer
    (``python -m repro.analysis check-schedule --suite quick``): the
    shared/simmpi/procmpi base schedules, every engine-axis variant,
    and the serving-layer problem — so "the analyzer certifies every
    registered perf scenario" is a checkable statement, not a slogan.
    """
    from dataclasses import replace

    if suite not in SOLVER_SIZES:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {sorted(SOLVER_SIZES)}")
    n, teams, tpt, T, block, topo = SOLVER_SIZES[suite]
    shape = (n, n, n)
    _, _, cfg, _ = _solver_problem(suite)
    yield f"solve_shared@{suite}", shape, cfg, (1, 1, 1)
    yield f"solve_threads@{suite}", shape, cfg, (1, 1, 1)
    yield f"solve_simmpi@{suite}", shape, cfg, topo
    yield f"solve_procmpi@{suite}", shape, cfg, topo
    engine_points = [
        ("blocked", "shared", "twogrid"),
        ("inplace", "shared", "compressed"),
        ("blocked", "simmpi", "twogrid"),
        ("inplace", "procmpi", "twogrid"),
    ]
    import importlib.util
    if importlib.util.find_spec("numba") is not None:
        engine_points.append(("numba", "shared", "twogrid"))
        engine_points.append(("numba", "threads", "twogrid"))
        engine_points.append(("numba-deep", "shared", "twogrid"))
        engine_points.append(("numba-deep", "shared", "compressed"))
        engine_points.append(("numba-deep", "threads", "twogrid"))
    for engine_, backend_, storage_ in engine_points:
        ecfg = replace(cfg, engine=engine_, storage=storage_)
        etopo = (1, 1, 1) if backend_ in ("shared", "threads") else topo
        yield f"solve_{backend_}_{engine_}@{suite}", shape, ecfg, etopo
    # engine="auto" runs the same shared schedule; the engine choice is
    # a traversal variant the analyzer does not distinguish.
    yield f"solve_auto@{suite}", shape, cfg, (1, 1, 1)
    sn, stopo, _jobs = SERVE_SIZES[suite]
    sgrid, scfg = _serve_problem(sn)
    yield f"serve@{suite}", sgrid.shape, scfg, stopo


def _register_kernels() -> None:
    for suite in SUITES:
        n = KERNEL_SIZES[suite]

        def sweep(state, _n=n):
            from ..kernels.jacobi import jacobi_sweep_padded
            src, dst = state
            jacobi_sweep_padded(src, dst)
            return _n

        def sweep_blocked(state, _n=n):
            from ..kernels.jacobi import jacobi_sweep_blocked
            src, dst = state
            jacobi_sweep_blocked(src, dst, (_n, 20, 20))
            return _n

        register(Scenario(
            name=f"jacobi_sweep@{suite}",
            kind="kernel",
            suites=(suite,),
            setup=_kernel_setup(n),
            fn=sweep,
            summarize=_sum_host_kernel(n ** 3),
            params={"n": n, "variant": "padded"},
            description="Real vectorised Jacobi sweep on this host",
        ))
        register(Scenario(
            name=f"jacobi_sweep_blocked@{suite}",
            kind="kernel",
            suites=(suite,),
            setup=_kernel_setup(n),
            fn=sweep_blocked,
            summarize=_sum_host_kernel(n ** 3),
            params={"n": n, "variant": "blocked", "block": (n, 20, 20)},
            description="Spatially blocked Jacobi sweep on this host",
        ))

        def stream(_mb=STREAM_MB[suite]):
            from ..machine.stream import host_stream_copy
            return host_stream_copy(n_mb=_mb, repeats=3)

        register(Scenario(
            name=f"host_stream@{suite}",
            kind="kernel",
            suites=(suite,),
            fn=stream,
            summarize=_sum_stream,
            params={"n_mb": STREAM_MB[suite]},
            description="Host STREAM COPY bandwidth (numpy copyto)",
        ))


def _register_solvers() -> None:
    for suite in SUITES:
        n, teams, tpt, T, block, topo = SOLVER_SIZES[suite]
        base_params = {"n": n, "teams": teams, "threads_per_team": tpt,
                       "updates_per_thread": T, "block": block}

        def solve_shared(_suite=suite, validate=False):
            from ..core.pipeline import run_pipelined
            grid, field_, cfg, _ = _solver_problem(_suite)
            return run_pipelined(grid, field_, cfg, validate=validate)

        def solve_simmpi(_suite=suite):
            from ..api import solve
            grid, field_, cfg, topo_ = _solver_problem(_suite)
            return solve(grid, field_, cfg, topology=topo_,
                         backend="simmpi")

        def solve_procmpi(_suite=suite):
            from ..api import solve
            grid, field_, cfg, topo_ = _solver_problem(_suite)
            return solve(grid, field_, cfg, topology=topo_,
                         backend="procmpi")

        register(Scenario(
            name=f"solve_shared@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_shared,
            summarize=_sum_solve,
            params={**base_params, "backend": "shared", "validate": False},
            description="Functional pipelined executor (validation off)",
        ))
        register(Scenario(
            name=f"solve_shared_validated@{suite}",
            kind="solver",
            suites=(suite,),
            fn=partial(solve_shared, validate=True),
            summarize=_sum_solve,
            params={**base_params, "backend": "shared", "validate": True},
            description="Functional pipelined executor (validation on)",
        ))
        register(Scenario(
            name=f"solve_simmpi@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_simmpi,
            summarize=_sum_solve,
            params={**base_params, "backend": "simmpi", "topology": topo},
            description="Distributed hybrid solve on simulated-MPI ranks",
        ))
        register(Scenario(
            name=f"solve_procmpi@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_procmpi,
            summarize=_sum_solve,
            params={**base_params, "backend": "procmpi", "topology": topo},
            description="Distributed hybrid solve on real multiprocess "
                        "ranks (shared-memory halos)",
        ))

        def solve_threads(_suite=suite):
            from ..api import solve
            grid, field_, cfg, _ = _solver_problem(_suite)
            return solve(grid, field_, cfg, backend="threads",
                         validate=False)

        register(Scenario(
            name=f"solve_threads@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_threads,
            summarize=_sum_solve,
            params={**base_params, "backend": "threads",
                    "validate": False},
            description="Truly threaded pipelined executor: one OS "
                        "thread per stage on condition-variable sync "
                        "counters (assert_legal always runs first); "
                        "bit-identical to solve_shared, wall-clock "
                        "parallel wherever the engine releases the GIL",
        ))

        def solve_traced(_suite=suite):
            from ..api import solve
            grid, field_, cfg, topo_ = _solver_problem(_suite)
            return solve(grid, field_, cfg, topology=topo_,
                         backend="simmpi", trace=True)

        register(Scenario(
            name=f"solve_traced@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_traced,
            summarize=_sum_solve,
            params={**base_params, "backend": "simmpi", "topology": topo,
                    "trace": True},
            description="Traced simmpi solve: obs spans and counters "
                        "recorded, summarized into obs_* metrics (proves "
                        "the perf gate stays green with tracing on)",
        ))

        # The engine axis (E13): the same solver problems executed
        # through the non-default kernel-execution engines.  Results
        # are bit-identical to the numpy-engine scenarios above (the
        # engine differential battery pins that), so every gated
        # metric — the communication counters — must match its
        # numpy-engine sibling exactly; only the host-clock throughput
        # moves.  The optional numba engine registers its scenario
        # only where numba is installed, so a clean environment's
        # registry (and the checked-in baseline) never depends on it.
        engine_points = [
            ("blocked", "shared", "twogrid"),
            ("inplace", "shared", "compressed"),
            ("blocked", "simmpi", "twogrid"),
            ("inplace", "procmpi", "twogrid"),
        ]
        import importlib.util
        if importlib.util.find_spec("numba") is not None:
            engine_points.append(("numba", "shared", "twogrid"))
            # The headline pairing of this repo's threaded rail: real
            # stage threads and a compiled nogil kernel.  Its gated
            # counters must equal the shared numba scenario's exactly;
            # the wall-clock ratio to solve_shared is the paper-style
            # speedup (asserted >1x only on multicore hosts — see
            # tests/test_threads.py).
            engine_points.append(("numba", "threads", "twogrid"))
            # The deep-JIT engine: one compiled region per block
            # traversal (gather + boundary patch + write), on both
            # storage schemes and under the threads rail.
            engine_points.append(("numba-deep", "shared", "twogrid"))
            engine_points.append(("numba-deep", "shared", "compressed"))
            engine_points.append(("numba-deep", "threads", "twogrid"))
        for engine_, backend_, storage_ in engine_points:

            def solve_engine(_suite=suite, _engine=engine_,
                             _backend=backend_, _storage=storage_):
                from dataclasses import replace

                from ..api import solve
                from ..core.pipeline import run_pipelined
                grid, field_, cfg, topo_ = _solver_problem(_suite)
                cfg = replace(cfg, engine=_engine, storage=_storage)
                if _backend == "shared":
                    return run_pipelined(grid, field_, cfg, validate=False)
                if _backend == "threads":
                    return solve(grid, field_, cfg, backend="threads",
                                 validate=False)
                return solve(grid, field_, cfg, topology=topo_,
                             backend=_backend)

            register(Scenario(
                name=f"solve_{backend_}_{engine_}@{suite}",
                kind="solver",
                suites=(suite,),
                fn=solve_engine,
                summarize=_sum_solve,
                params={**base_params, "backend": backend_,
                        "engine": engine_, "storage": storage_,
                        **({"topology": topo}
                           if backend_ != "shared" else {})},
                description=f"Functional solve through the {engine_!r} "
                            f"execution engine on the {backend_} backend",
            ))

        # engine="auto" (E18): resolve the engine from an *injected*
        # deterministic perf database (a fixed measurement table over
        # the engines registered here), then prove — as gated counters —
        # that the choice is the measured-best (rank 0), never slower
        # than the static default, and bit-identical to it.
        def solve_auto(_suite=suite):
            from dataclasses import replace

            import numpy as np

            from ..core.pipeline import run_pipelined
            from ..engine import DEFAULT_ENGINE, available_engines
            from ..perf.db import PerfDB, resolve_auto_engine, size_class

            grid, field_, cfg, _ = _solver_problem(_suite)
            # A fixed table, restricted to the engines present in this
            # process — same decision on every host with the same
            # engine set (the checked-in baseline uses the clean,
            # numba-free set).
            table = {"numpy": 100.0, "blocked": 140.0, "inplace": 120.0,
                     "numba": 180.0, "numba-deep": 220.0}
            cls = size_class(grid.shape)
            db = PerfDB()
            measured = {}
            for eng in available_engines():
                if eng in table:
                    db.record(eng, "jacobi", cfg.storage, cls, table[eng])
                    measured[eng] = table[eng]
            chosen = resolve_auto_engine(cfg.storage, grid.shape, db=db)
            ranked = sorted(measured, key=lambda e: -measured[e])
            res_auto = run_pipelined(grid, field_,
                                     replace(cfg, engine=chosen),
                                     validate=False)
            res_def = run_pipelined(grid, field_, cfg, validate=False)
            return {
                "rank": ranked.index(chosen),
                "not_worse": measured[chosen] >= measured[DEFAULT_ENGINE],
                "bit_identical": bool(np.array_equal(res_auto.field,
                                                     res_def.field)),
                "cells": (res_auto.stats.cells_updated
                          if res_auto.stats else 0),
            }

        register(Scenario(
            name=f"solve_auto@{suite}",
            kind="solver",
            suites=(suite,),
            fn=solve_auto,
            summarize=_sum_solve_auto,
            params={**base_params, "backend": "shared",
                    "engine": "auto", "validate": False},
            description="engine='auto' resolved from an injected "
                        "deterministic perf database; gates that the "
                        "measured-best engine is chosen and stays "
                        "bit-identical to the static default",
        ))


# --------------------------------------------------------------------------
# Serving-layer scenarios: batched-vs-sequential and cache cold/warm.
# --------------------------------------------------------------------------

#: Serve throughput problems per suite: (grid edge, topology, jobs).
#: Grids stay small at every scale — these scenarios measure the
#: service's scheduling/pooling behaviour, not kernel throughput.
SERVE_SIZES = {
    "quick": (12, (1, 1, 2), 6),
    "paper": (16, (1, 1, 2), 10),
    "stress": (24, (1, 2, 2), 16),
}


def _serve_problem(n: int):
    from ..core.parameters import PipelineConfig, RelaxedSpec
    from ..grid import Grid3D

    grid = Grid3D((n, n, n))
    cfg = PipelineConfig(teams=1, threads_per_team=2, updates_per_thread=2,
                         block_size=(4, 64, 64), sync=RelaxedSpec(1, 2))
    return grid, cfg


def _sum_serve_throughput(payload, wall: float) -> Dict[str, Metric]:
    # Every gated metric is an event counter (or a ratio of counters):
    # deterministic for a fixed job sequence, hence host-stable.
    return {
        "spawn_amortization": Metric(payload["amortization"], unit="x"),
        "process_spawns": Metric(float(payload["spawns"]), unit="procs",
                                 higher_is_better=False),
        "batched_jobs": Metric(float(payload["batched_jobs"]), unit="jobs"),
        "backend_solves": Metric(float(payload["backend_solves"]),
                                 unit="solves", higher_is_better=False),
        "jobs_per_s": Metric(ratio(payload["jobs"], wall), unit="jobs/s",
                             gate=False),
    }


def _sum_serve_cache(payload, wall: float) -> Dict[str, Metric]:
    return {
        "cache_hits": Metric(float(payload["cache_hits"]), unit="hits"),
        "backend_solves": Metric(float(payload["backend_solves"]),
                                 unit="solves", higher_is_better=False),
        "bit_identical": Metric(float(payload["bit_identical"]), unit="bool"),
    }


def _register_serve() -> None:
    for suite in SUITES:
        n, topo, jobs = SERVE_SIZES[suite]

        def serve_throughput(_n=n, _topo=topo, _jobs=jobs):
            import numpy as np

            from ..dist.procmpi import process_spawns
            from ..grid import random_field
            from ..serve import Service

            grid, cfg = _serve_problem(_n)
            fields = [random_field(grid.shape, np.random.default_rng(i))
                      for i in range(_jobs)]
            spawns0 = process_spawns()
            # workers=0 + drain: every job is queued before any runs, so
            # batch formation (and with it every counter) is
            # deterministic — no submit-vs-worker race.
            with Service(workers=0, cache=False) as svc:
                futs = [svc.submit(grid, f, cfg, topology=_topo,
                                   backend="procmpi") for f in fields]
                svc.drain()
                for f in futs:
                    f.result(timeout=0)
                st = svc.stats
            spawns = process_spawns() - spawns0
            n_ranks = _topo[0] * _topo[1] * _topo[2]
            return {
                "jobs": _jobs,
                "spawns": spawns,
                "amortization": ratio(_jobs * n_ranks, max(spawns, 1)),
                "batched_jobs": st.batched_jobs,
                "backend_solves": st.backend_solves,
            }

        def serve_cache(_n=n):
            import numpy as np

            from ..grid import random_field
            from ..serve import Service

            grid, cfg = _serve_problem(_n)
            field_ = random_field(grid.shape, np.random.default_rng(0))
            with Service(workers=0) as svc:
                cold = svc.submit(grid, field_, cfg)
                svc.drain()
                warm = svc.submit(grid, field_, cfg)  # pure cache hit
                st = svc.stats
                identical = bool(np.array_equal(cold.result(timeout=0).field,
                                                warm.result(timeout=0).field))
            return {
                "cache_hits": st.cache_hits,
                "backend_solves": st.backend_solves,
                "bit_identical": int(identical and warm.cache_hit),
            }

        register(Scenario(
            name=f"solve_serve_throughput@{suite}",
            kind="solver",
            suites=(suite,),
            fn=serve_throughput,
            summarize=_sum_serve_throughput,
            params={"n": n, "topology": topo, "jobs": jobs,
                    "backend": "procmpi", "workers": 0, "cache": False},
            description="Warm-pool batched procmpi serving vs the "
                        "sequential-spawn equivalent (counter-based)",
        ))
        register(Scenario(
            name=f"solve_serve_cache@{suite}",
            kind="solver",
            suites=(suite,),
            fn=serve_cache,
            summarize=_sum_serve_cache,
            params={"n": n, "backend": "shared", "workers": 0},
            description="Content-addressed cache: cold solve then "
                        "bit-identical warm hit",
        ))


def _sum_serve_monitor(payload, wall: float) -> Dict[str, Metric]:
    # Gated metrics are all deterministic event counters: the monitor is
    # driven manually (explicit sample() calls) on a workers=0 drain, so
    # sample/observation/recording totals are exact for the job stream.
    return {
        "monitor_samples": Metric(float(payload["samples"]), unit="samples"),
        "monitor_observations": Metric(float(payload["observations"]),
                                       unit="obs"),
        "wall_observations": Metric(float(payload["wall_count"]), unit="obs"),
        "queue_observations": Metric(float(payload["queue_count"]),
                                     unit="obs"),
        "recorded_traces": Metric(float(payload["recorded"]), unit="traces"),
        "backend_solves": Metric(float(payload["backend_solves"]),
                                 unit="solves", higher_is_better=False),
        "openmetrics_valid": Metric(float(payload["om_valid"]), unit="bool"),
        # Host-clock monitoring overhead (monitored / plain - 1): noisy,
        # so never gated here — the perf-marked test in test_monitor.py
        # owns the <=5% assertion with min-of-N repetitions.
        "overhead_frac": Metric(payload["overhead_frac"], unit="frac",
                                gate=False, higher_is_better=False),
        "jobs_per_s": Metric(ratio(payload["jobs"], wall), unit="jobs/s",
                             gate=False),
    }


def _register_monitor() -> None:
    for suite in SUITES:
        n, _topo, jobs = SERVE_SIZES[suite]

        def serve_monitored(_n=n, _jobs=jobs):
            import time

            import numpy as np

            from ..grid import random_field
            from ..obs.monitor import validate_openmetrics
            from ..serve import Service

            grid, cfg = _serve_problem(_n)
            fields = [random_field(grid.shape, np.random.default_rng(i))
                      for i in range(_jobs)]

            def run(**kwargs):
                t0 = time.perf_counter()
                with Service(workers=0, cache=False, **kwargs) as svc:
                    futs = [svc.submit(grid, f, cfg) for f in fields]
                    svc.drain()
                    for fut in futs:
                        fut.result(timeout=0)
                return svc, time.perf_counter() - t0

            _, wall_plain = run()
            _, wall_mon = run(monitor=True)
            svc, _ = run(monitor=True, record_traces=4)
            mon = svc.monitor
            for _ in range(3):
                mon.sample()
            exposition = mon.openmetrics()
            wall_hist = mon.histogram("serve.solve_wall")
            queue_hist = mon.histogram("serve.queue_wait")
            return {
                "jobs": _jobs,
                "samples": mon.samples,
                "observations": mon.observations,
                "wall_count": wall_hist.count,
                "queue_count": queue_hist.count,
                "recorded": (mon.recorder.recorded
                             if mon.recorder is not None else 0),
                "backend_solves": svc.stats.backend_solves,
                "om_valid": int(not validate_openmetrics(exposition)),
                "overhead_frac": max(0.0, wall_mon / wall_plain - 1.0),
            }

        register(Scenario(
            name=f"solve_monitored@{suite}",
            kind="solver",
            suites=(suite,),
            fn=serve_monitored,
            summarize=_sum_serve_monitor,
            params={"n": n, "jobs": jobs, "backend": "shared",
                    "workers": 0, "monitor": True, "record_traces": 4,
                    "samples": 3},
            description="Monitored serving: SLO histograms, flight "
                        "recorder and OpenMetrics export on a "
                        "deterministic drain (counter-gated; overhead "
                        "reported ungated)",
        ))


_register_figures()
_register_kernels()
_register_solvers()
_register_serve()
_register_monitor()
