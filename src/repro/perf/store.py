"""Results store: schema-versioned documents and per-run archives.

Two kinds of artifact:

* the **suite document** ``BENCH_<suite>.json`` — the canonical,
  diffable snapshot that ``repro.perf compare`` consumes and CI gates
  on; written to the working directory (or ``--out``), overwriting the
  previous snapshot;
* **per-run archives** under ``benchmarks/results/perf/`` — one
  timestamped copy per invocation, so the perf trajectory accumulates
  instead of being overwritten.

Readers validate the schema string and refuse documents from a
different layout version rather than mis-parsing them.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from .schema import SCHEMA, RunRecord, SchemaError

__all__ = [
    "StoreError",
    "make_document",
    "save_document",
    "load_document",
    "records_of",
    "default_path",
    "archive_document",
    "DEFAULT_ARCHIVE_DIR",
]

#: Where per-run archives go unless the caller overrides it.
DEFAULT_ARCHIVE_DIR = Path("benchmarks") / "results" / "perf"


class StoreError(SchemaError):
    """A results file could not be read or fails schema validation."""


def make_document(suite: str,
                  records: Sequence[RunRecord],
                  environment: Optional[Mapping[str, object]] = None,
                  run_config: Optional[Mapping[str, object]] = None,
                  ) -> Dict[str, object]:
    """Assemble the on-disk document for one suite run."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "environment": dict(environment or {}),
        "run_config": dict(run_config or {}),
        "records": [r.to_dict() for r in records],
    }


def save_document(doc: Mapping[str, object], path: Path) -> Path:
    """Write ``doc`` as stable, human-diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return path


def load_document(path: Path) -> Dict[str, object]:
    """Read and validate a results document."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise StoreError(f"{path}: expected a JSON object at top level")
    schema = raw.get("schema")
    if schema != SCHEMA:
        raise StoreError(
            f"{path}: schema {schema!r} does not match {SCHEMA!r} "
            "(written by an incompatible harness version?)")
    if not isinstance(raw.get("records"), list):
        raise StoreError(f"{path}: missing records list")
    # Parse eagerly so malformed records fail at load, not mid-compare.
    records_of(raw)
    return raw


def records_of(doc: Mapping[str, object]) -> List[RunRecord]:
    """The document's records as typed objects."""
    return [RunRecord.from_dict(r) for r in doc["records"]]  # type: ignore[index]


def default_path(suite: str, directory: Optional[Path] = None) -> Path:
    """``BENCH_<suite>.json`` in ``directory`` (default: cwd)."""
    return Path(directory or ".") / f"BENCH_{suite}.json"


def _timestamp_slug(doc: Mapping[str, object]) -> str:
    ts = str(doc.get("environment", {}).get("timestamp", ""))  # type: ignore[union-attr]
    slug = re.sub(r"[^0-9TZ]", "", ts)
    return slug or "untimed"


def archive_document(doc: Mapping[str, object],
                     directory: Optional[Path] = None) -> Path:
    """Append-style per-run record: ``<suite>-<utc timestamp>.json``."""
    directory = Path(directory or DEFAULT_ARCHIVE_DIR)
    name = f"{doc.get('suite', 'run')}-{_timestamp_slug(doc)}.json"
    target = directory / name
    # Never clobber an earlier archive from the same second.
    counter = 1
    while target.exists():
        target = directory / f"{name[:-5]}-{counter}.json"
        counter += 1
    return save_document(doc, target)
