"""Scenario runner: warmup/repeat timing plus environment capture.

The runner is deliberately dumb about *what* it times — a scenario's
``fn`` returns an opaque payload, and the scenario's own ``summarize``
turns that payload (plus the median wall time) into metrics.  Timing
uses an injectable ``timer`` so the statistics are unit-testable with a
scripted clock.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional

from .scenarios import Scenario, select_scenarios
from .schema import RunRecord, WallStats

__all__ = [
    "capture_environment",
    "run_scenario",
    "run_suite",
    "record_from_payload",
]


def _git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort commit id of the working tree the run came from."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd or os.getcwd(),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def capture_environment() -> Dict[str, object]:
    """The reproducibility header stored with every results document."""
    import numpy as np

    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def run_scenario(scenario: Scenario,
                 repeats: int = 3,
                 warmup: int = 1,
                 timer: Callable[[], float] = time.perf_counter,
                 ) -> RunRecord:
    """Time ``scenario`` and extract its metrics.

    ``setup`` runs once outside the timed region; ``warmup`` untimed
    executions precede ``repeats`` timed ones.  Metrics are computed
    from the payload of the last timed execution and the median wall
    time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    state = scenario.setup() if scenario.setup is not None else None
    for _ in range(warmup):
        scenario.run_once(state)
    samples: List[float] = []
    payload: object = None
    for _ in range(repeats):
        t0 = timer()
        payload = scenario.run_once(state)
        samples.append(timer() - t0)
    wall = WallStats.from_samples(samples, warmup=warmup)
    return RunRecord(scenario=scenario.name, kind=scenario.kind,
                     params=dict(scenario.params), wall=wall,
                     metrics=dict(scenario.summarize(payload, wall.median)))


def record_from_payload(scenario: Scenario, payload: object,
                        wall_seconds: float, repeats: int = 1,
                        warmup: int = 0) -> RunRecord:
    """Build a record from an externally-timed execution.

    Used by the ``benchmarks/bench_*.py`` wrappers, where
    pytest-benchmark owns the timing loop and hands us its summary
    statistic; ``repeats`` records how many rounds that statistic
    summarises (min/median/mean collapse to it, stddev is unknown -> 0).
    """
    wall = WallStats(repeats=repeats, warmup=warmup, min=wall_seconds,
                     median=wall_seconds, mean=wall_seconds, stddev=0.0)
    return RunRecord(scenario=scenario.name, kind=scenario.kind,
                     params=dict(scenario.params), wall=wall,
                     metrics=dict(scenario.summarize(payload, wall_seconds)))


def run_suite(suite: str,
              repeats: int = 3,
              warmup: int = 1,
              pattern: Optional[str] = None,
              timer: Callable[[], float] = time.perf_counter,
              progress: Optional[Callable[[str], None]] = None,
              ) -> List[RunRecord]:
    """Run every scenario of ``suite`` (optionally glob-filtered)."""
    scenarios = select_scenarios(suite=suite, pattern=pattern)
    if not scenarios:
        raise ValueError(
            f"no scenarios match suite={suite!r} pattern={pattern!r}")
    records = []
    for sc in scenarios:
        if progress is not None:
            progress(sc.name)
        records.append(run_scenario(sc, repeats=repeats, warmup=warmup,
                                    timer=timer))
    return records
