"""Regression gate: diff two result documents, or one against the model.

``compare_documents`` matches records by scenario name and metrics by
name, computes the signed relative change and classifies each pair:

* ``ok`` — within the threshold either way;
* ``improved`` / ``regressed`` — beyond the threshold in the metric's
  better/worse direction (``higher_is_better`` decides which is which);
* ``added`` / ``removed`` — present on only one side (never fails the
  gate: growing the scenario matrix must not break CI).

Only metrics with ``gate: true`` can produce ``regressed`` by default —
the calibrated-DES throughputs and the deterministic communication
counters.  Host-clock metrics and wall statistics are informational
unless explicitly opted in (``gate_only=False`` / ``include_wall=True``).

``compare_to_model`` diffs a document against the analytical
:mod:`repro.models` predictions attached to its scenarios (Eq. 5
markers).  Deviation there is *expected* — the paper itself shows the
model failing for T >= 2 — so model verdicts use ``ok``/``deviates``
and never fail the gate unless the CLI is passed ``--strict``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..bench.reporting import format_table
from .schema import RunRecord
from .store import records_of

__all__ = [
    "Delta",
    "compare_documents",
    "compare_to_model",
    "regressions",
    "render_deltas",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MODEL_THRESHOLD",
]

#: Fail the gate beyond a 10 % slowdown, per the CI contract.
DEFAULT_THRESHOLD = 0.10
#: The Eq. 5 model is quoted as matching within ~15 % where it works.
DEFAULT_MODEL_THRESHOLD = 0.15

_RANK = {"regressed": 0, "deviates": 1, "improved": 2, "added": 3,
         "removed": 4, "ok": 5}


@dataclass(frozen=True)
class Delta:
    """One compared metric (or a whole added/removed scenario)."""

    scenario: str
    metric: str
    base: Optional[float]
    new: Optional[float]
    #: Signed relative change ``(new - base) / base``; None when either
    #: side is missing or the base is zero.
    rel: Optional[float]
    status: str

    def describe(self) -> str:
        pct = f"{self.rel:+.1%}" if self.rel is not None else "n/a"
        return (f"{self.scenario} :: {self.metric}: {self.base} -> "
                f"{self.new} ({pct}, {self.status})")


def _classify(base: float, new: float, higher_is_better: bool,
              threshold: float) -> Delta:
    rel: Optional[float] = None
    if math.isnan(base) and math.isnan(new):
        status = "ok"
    elif math.isnan(new):
        # The metric stopped being measurable — that must fail the gate,
        # not slip through with an undefined delta.
        status = "regressed"
    elif math.isnan(base):
        status = "improved"  # became measurable
    elif base == 0:
        if new == 0:
            status = "ok"
        else:
            # No finite relative change exists from a zero base; any
            # appearance of volume/time is worse, of throughput better.
            status = "improved" if higher_is_better else "regressed"
    else:
        rel = (new - base) / abs(base)
        if (-rel if higher_is_better else rel) > threshold:
            status = "regressed"
        elif (rel if higher_is_better else -rel) > threshold:
            status = "improved"
        else:
            status = "ok"
    return Delta(scenario="", metric="", base=base, new=new, rel=rel,
                 status=status)


def _by_name(records: Sequence[RunRecord]) -> Dict[str, RunRecord]:
    return {r.scenario: r for r in records}


def compare_documents(base_doc: Mapping[str, object],
                      new_doc: Mapping[str, object],
                      threshold: float = DEFAULT_THRESHOLD,
                      gate_only: bool = True,
                      include_wall: bool = False) -> List[Delta]:
    """Diff every shared scenario/metric of two result documents."""
    base = _by_name(records_of(base_doc))
    new = _by_name(records_of(new_doc))
    deltas: List[Delta] = []
    for name in sorted(set(base) | set(new)):
        if name not in new:
            deltas.append(Delta(name, "*", None, None, None, "removed"))
            continue
        if name not in base:
            deltas.append(Delta(name, "*", None, None, None, "added"))
            continue
        b, n = base[name], new[name]
        b_metrics = b.gated_metrics() if gate_only else dict(b.metrics)
        n_metrics = n.gated_metrics() if gate_only else dict(n.metrics)
        for metric in sorted(set(b_metrics) | set(n_metrics)):
            if metric not in n_metrics:
                deltas.append(Delta(name, metric,
                                    b_metrics[metric].value, None, None,
                                    "removed"))
                continue
            if metric not in b_metrics:
                deltas.append(Delta(name, metric, None,
                                    n_metrics[metric].value, None, "added"))
                continue
            bm, nm = b_metrics[metric], n_metrics[metric]
            d = _classify(bm.value, nm.value, nm.higher_is_better, threshold)
            deltas.append(Delta(name, metric, d.base, d.new, d.rel, d.status))
        if include_wall:
            d = _classify(b.wall.median, n.wall.median,
                          higher_is_better=False, threshold=threshold)
            deltas.append(Delta(name, "wall/median", d.base, d.new, d.rel,
                                d.status))
    return sorted(deltas, key=lambda d: (_RANK[d.status], d.scenario,
                                         d.metric))


def compare_to_model(doc: Mapping[str, object],
                     threshold: float = DEFAULT_MODEL_THRESHOLD,
                     ) -> List[Delta]:
    """Measured metrics vs the analytical predictions, where defined."""
    from .scenarios import get_scenario

    deltas: List[Delta] = []
    for record in records_of(doc):
        try:
            scenario = get_scenario(record.scenario)
        except KeyError:
            continue  # document from a newer/older scenario matrix
        if scenario.model is None:
            continue
        predictions = scenario.model()
        for metric, predicted in sorted(predictions.items()):
            measured = record.metrics.get(metric)
            if measured is None:
                deltas.append(Delta(record.scenario, metric, predicted,
                                    None, None, "removed"))
                continue
            rel = ((measured.value - predicted) / abs(predicted)
                   if predicted else None)
            status = ("ok" if rel is not None and abs(rel) <= threshold
                      else "deviates")
            deltas.append(Delta(record.scenario, metric, predicted,
                                measured.value, rel, status))
    return sorted(deltas, key=lambda d: (_RANK[d.status], d.scenario,
                                         d.metric))


def regressions(deltas: Sequence[Delta]) -> List[Delta]:
    """The deltas that should fail the gate."""
    return [d for d in deltas if d.status == "regressed"]


def render_deltas(deltas: Sequence[Delta],
                  base_label: str = "base",
                  new_label: str = "new") -> str:
    """ASCII table of the comparison, worst first."""
    if not deltas:
        return "(no comparable metrics)"

    def fmt(v: Optional[float]) -> object:
        return "-" if v is None else float(v)

    rows = []
    for d in deltas:
        pct = "-" if d.rel is None else f"{d.rel:+.1%}"
        rows.append([d.scenario, d.metric, fmt(d.base), fmt(d.new), pct,
                     d.status])
    return format_table(
        ["scenario", "metric", base_label, new_label, "delta", "status"],
        rows, floatfmt="10.3f")
