"""The service's queue: priority order, sharding, batch formation.

One :class:`JobQueue` feeds every worker.  Jobs are *sharded* across
pool slots by the workers pulling from it (work stealing: an idle slot
takes the next runnable batch, so a slow solve never blocks the queue
behind it).  Jobs pop in ``(-priority, submission order)`` — higher
priority first, FIFO within a priority.

Batching
--------
:meth:`JobQueue.pop_batch` returns not one entry but a **batch**: the
head-of-queue entry plus any queued *compatible small* jobs — same
session geometry (backend class, grid shape, dtype, topology, halo) and
a field below ``batch_bytes`` — up to ``batch_limit``.  A batch runs
back-to-back on one worker slot, which for the procmpi backend means
every member reuses the slot's warm :class:`ProcSolverSession` with
zero per-job setup; that amortisation is the entire point.  Large jobs
are never batched (they would serialise behind each other for no
setup saving worth the latency).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field as dc_field
from typing import List, Optional, Tuple

import numpy as np

from .futures import SolveFuture
from .job import SolveJob

__all__ = ["Entry", "JobQueue", "resolve_engine", "session_signature"]


def session_signature(job: SolveJob) -> Tuple:
    """What two jobs must share to ride one warm worker-pool slot.

    For the distributed backends this is exactly the
    :class:`~repro.dist.solver.ProcSolverSession` compatibility key;
    ``halo`` is derived from the resolved config (``n·t·T``), so only
    resolved jobs can be signed.
    """
    if not job.resolved:
        raise ValueError("cannot sign an unresolved job")
    if job.backend == "shared":
        return ("shared", job.grid.shape, str(np.dtype(job.grid.dtype)))
    return (job.backend, job.grid.shape, str(np.dtype(job.grid.dtype)),
            job.topology, job.config.updates_per_pass)


@dataclass(eq=False)
class Entry:
    """One queued unit of work: a resolved job plus its waiters.

    ``futures`` grows when identical submissions are coalesced onto the
    in-flight entry; completion fans the one result (or exception) out
    to every waiter.

    The timestamp/speculation fields are monitor bookkeeping (all
    mutated under the service lock): ``t_queued``/``t_started`` feed the
    queue-wait and service-time histograms; when the monitor re-queues a
    stuck entry, ``speculated`` marks it, the *second* pop claims
    ``spec_claimed`` (identifying itself as the duplicate execution) and
    ``settled`` makes completion first-wins — the losing execution of a
    speculated pair discards its (bit-identical) result.
    """

    job: SolveJob
    key: Optional[str]  # content key; None for uncacheable jobs
    futures: List[SolveFuture] = dc_field(default_factory=list)
    t_queued: float = 0.0
    t_started: float = 0.0
    speculated: bool = False
    spec_claimed: bool = False
    settled: bool = False
    #: ``engine="auto"`` submissions: the engine choice is late-bound at
    #: execution (:func:`resolve_engine`), so calibration data arriving
    #: while the entry queues still steers it.  Engines of one semantics
    #: class share content keys, so the late binding never moves the
    #: entry's cache identity.
    auto_engine: bool = False


def resolve_engine(entry: Entry) -> SolveJob:
    """The job ``entry`` should execute, with any ``auto`` engine bound.

    For an ``auto_engine`` entry the measured perf database picks the
    engine for the job's storage scheme and grid size *now*, at
    execution time (:func:`repro.perf.db.resolve_auto_engine` — the
    static default when nothing is measured for this host).  Pure: the
    entry is not mutated, so the speculated-pair duplicate resolving
    concurrently is harmless — both executions bind bit-identical
    engines of one semantics class.
    """
    if not entry.auto_engine:
        return entry.job
    from dataclasses import replace

    from ..perf.db import resolve_auto_engine  # late: keeps serve light

    cfg = entry.job.config
    engine = resolve_auto_engine(cfg.storage, entry.job.grid.shape)
    if engine == cfg.engine:
        return entry.job
    return entry.job.with_config(replace(cfg, engine=engine))


class JobQueue:
    """Thread-safe priority queue with batch popping."""

    def __init__(self, batch_limit: int = 8,
                 batch_bytes: int = 4 << 20) -> None:
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        self.batch_limit = batch_limit
        self.batch_bytes = batch_bytes
        self._heap: List[Tuple[int, int, Entry]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(self, entry: Entry) -> None:
        with self._not_empty:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap,
                           (-entry.job.priority, next(self._seq), entry))
            self._not_empty.notify()

    def _small(self, entry: Entry) -> bool:
        return entry.job.field.nbytes <= self.batch_bytes

    def pop_batch(self, timeout: Optional[float] = None,
                  ) -> Optional[List[Entry]]:
        """The next batch, or None when closed (or timed out) and empty.

        Blocks until an entry is available.  The head entry always pops
        alone unless it is *small*; compatible small entries then join
        it regardless of their queue position (they would have run on
        this slot's geometry anyway — pulling them forward is the
        scheduling half of batching).
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            _, _, head = heapq.heappop(self._heap)
            batch = [head]
            if self._small(head) and self.batch_limit > 1:
                sig = session_signature(head.job)
                keep: List[Tuple[int, int, Entry]] = []
                while self._heap and len(batch) < self.batch_limit:
                    item = heapq.heappop(self._heap)
                    entry = item[2]
                    if (self._small(entry)
                            and session_signature(entry.job) == sig):
                        batch.append(entry)
                    else:
                        keep.append(item)
                for item in keep:
                    heapq.heappush(self._heap, item)
            return batch

    def close(self) -> None:
        """Wake every popper; subsequent pushes fail."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
