"""Futures for the solve service.

:class:`SolveFuture` is deliberately smaller than
:class:`concurrent.futures.Future`: the service owns the producer side
(settling is first-completion-wins, which is all the arbitration
speculative re-execution needs), and consumers get exactly
the four things they need — block on :meth:`result`, inspect
:meth:`exception`, poll :meth:`done`, and :meth:`cancel` a job that has
not started.  Two flags carry the service's provenance: ``cache_hit``
(resolved from the content-addressed cache, no backend ran) and
``coalesced`` (attached to another in-flight submission of the same
content key).
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional

from .job import SolveJob

__all__ = ["ServeCancelled", "SolveFuture", "wait_all"]


class ServeCancelled(RuntimeError):
    """Raised by :meth:`SolveFuture.result` on a cancelled job."""


class SolveFuture:
    """The pending result of one submitted :class:`SolveJob`."""

    def __init__(self, job: SolveJob) -> None:
        self.job = job
        #: True when the result came straight from the result cache.
        self.cache_hit = False
        #: True when this submission was coalesced onto an identical
        #: in-flight job instead of being queued again.
        self.coalesced = False
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._cancelled = False
        self._started = False
        self._settled = False

    # -- producer side (service internals) ---------------------------------------

    def _mark_started(self) -> bool:
        """Claim the future for execution; False if it was cancelled."""
        with self._lock:
            if self._cancelled:
                return False
            self._started = True
            return True

    def _set_result(self, result: Any) -> None:
        # First completion wins: speculative re-execution makes two
        # producers legitimate (the stuck run and its duplicate), and
        # both carry bit-identical results — whichever lands first
        # settles the future, the loser is a silent no-op.
        with self._lock:
            if self._cancelled or self._settled:
                return
            self._settled = True
            self._result = result
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._cancelled or self._settled:
                return
            self._settled = True
            self._exception = exc
        self._event.set()

    # -- consumer side -----------------------------------------------------------

    def cancel(self) -> bool:
        """Cancel if execution has not started; returns success."""
        with self._lock:
            if self._event.is_set() or self._started:
                return False
            self._cancelled = True
        self._event.set()
        return True

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        """True once a result, an exception or a cancellation landed."""
        return self._event.is_set()

    def exception(self, timeout: Optional[float] = None,
                  ) -> Optional[BaseException]:
        """The job's exception (or None), blocking like :meth:`result`."""
        if not self._event.wait(timeout):
            raise TimeoutError("job still pending")
        if self._cancelled:
            raise ServeCancelled(f"cancelled: {self.job.describe()}")
        return self._exception

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until done; returns the SolveResult or re-raises.

        Fail-fast error propagation: the *original* exception a rank (or
        backend) raised comes out here, exactly as a direct
        ``repro.solve`` call would have raised it.
        """
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result


def wait_all(futures: List[SolveFuture],
             timeout: Optional[float] = None) -> List[Any]:
    """Results of ``futures`` in order; raises the first failure found.

    The service's :meth:`~repro.serve.service.Service.map` contract:
    all jobs are waited for, then errors are reported in submission
    order (fail-fast per job, deterministic across the batch).
    ``timeout`` is one deadline for the whole batch, not per future.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    for f in futures:
        if deadline is None:
            f._event.wait()
        else:
            f._event.wait(max(0.0, deadline - time.monotonic()))
    return [f.result(timeout=0) for f in futures]
