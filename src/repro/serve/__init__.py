"""repro.serve — the concurrent solve service on top of ``repro.solve``.

Every solver front-end below this package is a cold, blocking, one-shot
call: a ``procmpi`` solve pays process spawn and shared-memory setup
every time, and identical requests recompute from scratch.  This
package is the serving layer the ROADMAP's "heavy traffic" north star
asks for:

* a **job model** (:class:`SolveJob`) with a deterministic
  content key — SHA-256 over the problem bytes, canonical config and
  backend *semantics* (:mod:`repro.serve.job`);
* **persistent worker pools** — warm
  :class:`~repro.dist.solver.ProcSolverSession`\\ s keep procmpi rank
  processes and their shared-memory segments alive across jobs
  (:mod:`repro.serve.pool`), thread slots serve ``shared``/``simmpi``;
* a **scheduler** that shards a priority queue across pool slots,
  coalesces duplicate in-flight jobs and batches compatible small
  solves onto one warm slot (:mod:`repro.serve.scheduler`);
* a **content-addressed result cache** — in-memory LRU plus an optional
  on-disk tier, returning bit-identical results on hit
  (:mod:`repro.serve.cache`);
* a **futures front-end** — :func:`submit`, :func:`map_jobs` and the
  :class:`Service` context manager (:mod:`repro.serve.service`),
  re-exported as ``repro.submit`` / ``repro.map``;
* ``config="auto"`` resolution through :func:`repro.autotune`
  (:mod:`repro.serve.autoconf`).
"""

from .autoconf import auto_config, clear_auto_cache
from .cache import ResultCache
from .futures import ServeCancelled, SolveFuture, wait_all
from .job import SolveJob
from .pool import SessionPool
from .scheduler import Entry, JobQueue, session_signature
from .service import (
    Service,
    ServiceStats,
    configure,
    default_service,
    map_jobs,
    shutdown,
    submit,
)

#: ``repro.map`` — the ergonomic name; ``map_jobs`` is the same object
#: for callers who shadowed the builtin.
map = map_jobs

__all__ = [
    "SolveJob",
    "SolveFuture",
    "ServeCancelled",
    "wait_all",
    "ResultCache",
    "SessionPool",
    "Entry",
    "JobQueue",
    "session_signature",
    "Service",
    "ServiceStats",
    "auto_config",
    "clear_auto_cache",
    "configure",
    "default_service",
    "submit",
    # "map" stays a module attribute but out of __all__: star-imports
    # must not shadow the builtin in the user's namespace.
    "map_jobs",
    "shutdown",
]
