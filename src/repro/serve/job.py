"""The service's job model: what one solve *is*, content-addressed.

A :class:`SolveJob` is a declarative description of one call to
:func:`repro.solve` — problem (grid + field + stencil), parameters
(config, possibly ``"auto"``), placement (topology + backend) and a
scheduling ``priority``.  Jobs are what the scheduler queues, the cache
keys and the futures resolve.

Content addressing
------------------
:meth:`SolveJob.content_key` is a SHA-256 over everything that
determines the *bits* of the result field:

* the grid geometry (shape, dtype, the Dirichlet boundary constants),
* the exact field bytes,
* the canonicalised pipeline configuration and stencil weights
  (``float.hex`` — no formatting round-trips),
* the **backend semantics class**, not the backend name: on a
  ``(1, 1, 1)`` topology all three backends are bit-identical, and on
  any topology ``simmpi``/``procmpi`` are bit-identical to each other
  (the differential battery of ``tests/test_backend_equivalence`` pins
  both), so jobs differing only in transport share one cache entry,
* the **engine semantics class**, not the engine name, for the same
  reason: every engine of one class is bit-identical (pinned by
  ``tests/test_engine_equivalence``), so jobs differing only in
  ``config.engine`` share one cache entry — ``config.engine`` is
  deliberately excluded from the canonical config encoding,
* a code-version tag (``repro.__version__`` plus a key-schema number),
  so a cache directory can never serve results across releases.

A job whose boundary carries a callable ``func`` is *uncacheable*
(callables have no canonical bytes); the service computes it fresh every
time and never stores it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dc_field, replace
from typing import List, Optional, Tuple, Union

import numpy as np

from ..api import BACKENDS
from ..core.parameters import BarrierSpec, PipelineConfig, RelaxedSpec
from ..grid.grid3d import Grid3D
from ..kernels.jacobi import jacobi7
from ..kernels.stencils import StarStencil

__all__ = ["KEY_SCHEMA", "SolveJob"]

#: Bump when the canonical encoding below changes meaning: old cache
#: entries must never satisfy new keys.  2: the engine-semantics part
#: joined the key (PR 5).
KEY_SCHEMA = 2

Coord = Tuple[int, int, int]


def _canon_float(x: float) -> str:
    return float(x).hex()


def _canon_sync(sync) -> str:
    if isinstance(sync, BarrierSpec):
        return "barrier"
    if isinstance(sync, RelaxedSpec):
        return f"relaxed:{sync.d_l}:{sync.d_u}:{sync.team_delay}"
    raise TypeError(f"unknown sync spec {sync!r}")  # pragma: no cover


def _canon_config(cfg: PipelineConfig) -> str:
    # ``cfg.engine`` is intentionally absent: the engine enters the key
    # through its *semantics class* (see ``content_key``), so engines
    # that are bit-identical share cache entries.
    return ";".join([
        f"teams={cfg.teams}",
        f"t={cfg.threads_per_team}",
        f"T={cfg.updates_per_thread}",
        f"block={cfg.block_size[0]},{cfg.block_size[1]},{cfg.block_size[2]}",
        f"sync={_canon_sync(cfg.sync)}",
        f"storage={cfg.storage}",
        f"passes={cfg.passes}",
    ])


def _canon_stencil(st: StarStencil) -> str:
    # Weights in canonical offset order; the display name is excluded —
    # it cannot change the result bits.
    parts = [f"{off}:{_canon_float(w)}"
             for off, w in sorted(st.weights.items())]
    parts.append(f"center:{_canon_float(st.center_weight)}")
    return "|".join(parts)


def _canon_boundary(grid: Grid3D) -> Optional[str]:
    """Boundary canonical form, or ``None`` when it has no stable bytes."""
    b = grid.boundary
    if b.func is not None:
        return None
    faces = "|".join(f"{name}:{_canon_float(v)}"
                     for name, v in sorted(b.faces.items()))
    return f"default:{_canon_float(b.default)};faces:{faces}"


@dataclass(frozen=True, eq=False)
class SolveJob:
    """One solve request, as queued, keyed and cached by the service.

    Jobs compare by identity (the ndarray field has no useful ``==``);
    *content* equality is exactly what :meth:`content_key` hashes.

    ``config`` may be the literal string ``"auto"``, in which case the
    service resolves it through :func:`repro.autotune` (see
    :mod:`repro.serve.autoconf`) before keying or executing the job —
    :meth:`content_key` on an unresolved job raises.
    """

    grid: Grid3D
    field: np.ndarray
    config: Union[PipelineConfig, str]
    topology: Coord = (1, 1, 1)
    backend: str = "shared"
    stencil: Optional[StarStencil] = None
    priority: int = 0
    _key: Optional[str] = dc_field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        topo = tuple(int(p) for p in self.topology)
        if len(topo) != 3 or any(p < 1 for p in topo):
            raise ValueError(
                f"topology must be a (Pz, Py, Px) triple of positive "
                f"extents, got {self.topology!r}")
        object.__setattr__(self, "topology", topo)
        if self.backend == "shared" and topo != (1, 1, 1):
            raise ValueError(
                f"the shared backend is single-process; topology {topo} "
                "needs backend='simmpi' or 'procmpi'")
        if isinstance(self.config, str):
            if self.config != "auto":
                raise ValueError(
                    f"config must be a PipelineConfig or 'auto', "
                    f"got {self.config!r}")
        elif not isinstance(self.config, PipelineConfig):
            raise TypeError(
                f"config must be a PipelineConfig or 'auto', "
                f"got {type(self.config).__name__}")
        if self.field.shape != self.grid.shape:
            raise ValueError(
                f"field shape {self.field.shape} != grid shape "
                f"{self.grid.shape}")
        # Snapshot the field: the job may sit in a queue while the
        # caller reuses its buffer, and the content key must keep
        # describing the bytes the solve will actually read — a mutated
        # shared array would poison the cache with bit-wrong entries.
        object.__setattr__(self, "field",
                           np.array(self.field, copy=True))

    # -- derived -----------------------------------------------------------------

    @property
    def resolved(self) -> bool:
        """True once ``config`` is a concrete :class:`PipelineConfig`."""
        return isinstance(self.config, PipelineConfig)

    @property
    def cacheable(self) -> bool:
        """False when the job has no canonical bytes (callable boundary)."""
        return _canon_boundary(self.grid) is not None

    @property
    def n_ranks(self) -> int:
        return self.topology[0] * self.topology[1] * self.topology[2]

    def with_config(self, config: PipelineConfig) -> "SolveJob":
        """The same job with a concrete configuration (auto-tune result)."""
        return replace(self, config=config, _key=None)

    def semantics(self) -> str:
        """The backend *semantics class* entering the content key.

        All backends agree bitwise on ``(1, 1, 1)``; on wider topologies
        the two distributed transports agree with each other.
        """
        if self.topology == (1, 1, 1):
            return "single"
        return f"dist:{self.topology[0]}x{self.topology[1]}x{self.topology[2]}"

    def engine_semantics(self) -> str:
        """The engine *semantics class* entering the content key.

        Engines of one class are bit-identical on every kernel, storage
        and backend (the engine differential battery pins this), so the
        class — never the engine name — keys the cache.  Like
        :meth:`content_key`, only meaningful on resolved jobs.
        """
        from ..engine import engine_semantics

        return engine_semantics(self.config.engine)

    def content_key(self) -> str:
        """Deterministic SHA-256 hex digest of everything result-affecting.

        Raises ``ValueError`` for unresolved (``config="auto"``) jobs and
        for uncacheable ones — callers must check :attr:`cacheable`.
        """
        if self._key is not None:
            return self._key
        if not self.resolved:
            raise ValueError(
                "cannot key an unresolved job; resolve config='auto' first")
        boundary = _canon_boundary(self.grid)
        if boundary is None:
            raise ValueError(
                "job is not cacheable: a callable Dirichlet boundary has "
                "no canonical bytes")
        from .. import __version__

        st = self.stencil or jacobi7()
        h = hashlib.sha256()
        parts: List[str] = [
            f"repro/{__version__}/key{KEY_SCHEMA}",
            f"shape:{self.grid.shape}",
            f"dtype:{np.dtype(self.grid.dtype).str}",
            f"boundary:{boundary}",
            f"config:{_canon_config(self.config)}",
            f"stencil:{_canon_stencil(st)}",
            f"semantics:{self.semantics()}",
            f"engine:{self.engine_semantics()}",
        ]
        h.update("\n".join(parts).encode())
        h.update(b"\nfield:")
        h.update(np.ascontiguousarray(self.field).tobytes())
        digest = h.hexdigest()
        object.__setattr__(self, "_key", digest)
        return digest

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        cfg = (self.config.describe() if self.resolved
               else "auto")
        return (f"job({self.grid.shape}, backend={self.backend}, "
                f"topology={self.topology}, priority={self.priority}, {cfg})")
