"""Worker-pool state: warm procmpi sessions, checked out per batch.

The service's worker *threads* are the pool slots; what actually costs
money to set up is the **procmpi session** behind a slot — rank
processes, shared-memory field blocks, halo rings (see
:class:`~repro.dist.solver.ProcSolverSession`).  :class:`SessionPool`
keeps those alive between jobs:

* ``acquire(job)`` hands the caller an exclusive warm session whose
  geometry matches the job (reuse), or builds one (cold start);
* ``release(session)`` returns it for the next batch —
  or closes and drops it when the solve failed (sessions are crash-only,
  like the :class:`~repro.dist.procmpi.ProcWorld` underneath);
* at most ``max_sessions`` are kept warm; acquiring a new geometry when
  full evicts the least-recently-used idle session first.

All counters (``created``, ``reused``, ``dropped``, ``evicted``) are
deterministic for a fixed job sequence — the throughput acceptance test
asserts pool amortisation on them, never on a wall clock.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from ..dist.solver import ProcSolverSession
from .job import SolveJob

__all__ = ["SessionPool"]


class SessionPool:
    """Exclusive check-out pool of warm :class:`ProcSolverSession`\\ s."""

    def __init__(self, max_sessions: int = 2,
                 start_method: Optional[str] = None,
                 timeout: Optional[float] = None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.start_method = start_method
        self.timeout = timeout
        self._idle: List[ProcSolverSession] = []  # LRU order: oldest first
        self._lock = threading.Lock()
        self._closed = False
        self.created = 0
        self.reused = 0
        self.dropped = 0
        self.evicted = 0

    def acquire(self, job: SolveJob) -> ProcSolverSession:
        """An exclusive session able to run ``job`` (warm if possible)."""
        if not job.resolved:
            raise ValueError("cannot place an unresolved job")
        shape = job.grid.shape
        dtype = np.dtype(job.grid.dtype)
        halo = job.config.updates_per_pass
        evict: List[ProcSolverSession] = []
        try:
            with self._lock:
                if self._closed:
                    raise RuntimeError("session pool is closed")
                for i, session in enumerate(self._idle):
                    if session.compatible(shape, dtype, job.topology, halo):
                        self._idle.pop(i)
                        self.reused += 1
                        return session
                while len(self._idle) >= self.max_sessions:
                    evict.append(self._idle.pop(0))
                    self.evicted += 1
        finally:
            # Teardown joins rank processes (seconds for a wedged one) —
            # never do that while holding the pool lock.
            for session in evict:
                session.close()
        # Build outside the lock too: spawning ranks is the slow part
        # and other workers must keep serving meanwhile.
        session = ProcSolverSession(shape, dtype, job.topology, halo,
                                    start_method=self.start_method,
                                    timeout=self.timeout)
        with self._lock:
            self.created += 1
        return session

    def release(self, session: ProcSolverSession,
                broken: bool = False) -> None:
        """Return a session to the warm set, or drop a broken one."""
        if broken or session.closed:
            session.close()
            with self._lock:
                self.dropped += 1
            return
        evict: List[ProcSolverSession] = []
        with self._lock:
            if self._closed:
                evict.append(session)
            else:
                self._idle.append(session)
                while len(self._idle) > self.max_sessions:
                    evict.append(self._idle.pop(0))
                    self.evicted += 1
        for s in evict:
            s.close()

    def close(self) -> None:
        """Tear down every warm session (idempotent)."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for session in idle:
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
