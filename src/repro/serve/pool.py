"""Worker-pool state: warm procmpi sessions, checked out per batch.

The service's worker *threads* are the pool slots; what actually costs
money to set up is the **procmpi session** behind a slot — rank
processes, shared-memory field blocks, halo rings (see
:class:`~repro.dist.solver.ProcSolverSession`).  :class:`SessionPool`
keeps those alive between jobs:

* ``acquire(job)`` hands the caller an exclusive warm session whose
  geometry matches the job (reuse), or builds one (cold start);
* ``release(session)`` returns it for the next batch —
  or closes and drops it when the solve failed (sessions are crash-only,
  like the :class:`~repro.dist.procmpi.ProcWorld` underneath);
* at most ``max_sessions`` are kept warm; acquiring a new geometry when
  full evicts the least-recently-used idle session first.

Every session carries a pool-assigned stable id (``session.sid``) —
the identity straggler scores key on — and the pool is the policy
surface the monitor drives: :meth:`quarantine` marks a repeatedly
degraded session so it is closed instead of reused (idle ones
immediately, checked-out ones at release).  Quarantine is one-way; the
replacement for a quarantined session is simply the next cold start,
which is how crash-only recovery already works.

All counters (``created``, ``reused``, ``dropped``, ``evicted``,
``quarantined``) are deterministic for a fixed job sequence — the
throughput acceptance test asserts pool amortisation on them, never on
a wall clock.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

import numpy as np

from ..dist.solver import ProcSolverSession
from .job import SolveJob

__all__ = ["SessionPool"]


class SessionPool:
    """Exclusive check-out pool of warm :class:`ProcSolverSession`\\ s."""

    def __init__(self, max_sessions: int = 2,
                 start_method: Optional[str] = None,
                 timeout: Optional[float] = None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.start_method = start_method
        self.timeout = timeout
        self._idle: List[ProcSolverSession] = []  # LRU order: oldest first
        self._lock = threading.Lock()
        self._closed = False
        self._next_sid = 0
        self._quarantine: Set[int] = set()
        self.created = 0
        self.reused = 0
        self.dropped = 0
        self.evicted = 0
        self.quarantined = 0

    def acquire(self, job: SolveJob) -> ProcSolverSession:
        """An exclusive session able to run ``job`` (warm if possible)."""
        if not job.resolved:
            raise ValueError("cannot place an unresolved job")
        shape = job.grid.shape
        dtype = np.dtype(job.grid.dtype)
        halo = job.config.updates_per_pass
        evict: List[ProcSolverSession] = []
        try:
            with self._lock:
                if self._closed:
                    raise RuntimeError("session pool is closed")
                for i, session in enumerate(self._idle):
                    if session.compatible(shape, dtype, job.topology, halo):
                        self._idle.pop(i)
                        self.reused += 1
                        return session
                while len(self._idle) >= self.max_sessions:
                    evict.append(self._idle.pop(0))
                    self.evicted += 1
        finally:
            # Teardown joins rank processes (seconds for a wedged one) —
            # never do that while holding the pool lock.
            for session in evict:
                session.close()
        # Build outside the lock too: spawning ranks is the slow part
        # and other workers must keep serving meanwhile.
        session = ProcSolverSession(shape, dtype, job.topology, halo,
                                    start_method=self.start_method,
                                    timeout=self.timeout)
        with self._lock:
            session.sid = self._next_sid
            self._next_sid += 1
            self.created += 1
        return session

    def release(self, session: ProcSolverSession,
                broken: bool = False) -> None:
        """Return a session to the warm set, or drop a broken one.

        A quarantined session never re-enters the warm set: it is
        closed here, exactly like a broken one — the monitor's verdict
        and a crash take the same recovery path.
        """
        if broken or session.closed or self.is_quarantined(session.sid):
            session.close()
            with self._lock:
                self.dropped += 1
            return
        evict: List[ProcSolverSession] = []
        with self._lock:
            if self._closed:
                evict.append(session)
            else:
                self._idle.append(session)
                while len(self._idle) > self.max_sessions:
                    evict.append(self._idle.pop(0))
                    self.evicted += 1
        for s in evict:
            s.close()

    # -- straggler policy hooks ---------------------------------------------

    def quarantine(self, sid: int) -> bool:
        """Bar session ``sid`` from further reuse; True if newly barred.

        An idle session with that id is closed immediately; a
        checked-out one finishes its current job and is closed at
        :meth:`release` (its in-flight job is the speculative
        re-execution candidate — the monitor handles that side).
        """
        close: List[ProcSolverSession] = []
        with self._lock:
            if self._closed or sid in self._quarantine:
                return False
            self._quarantine.add(sid)
            self.quarantined += 1
            keep: List[ProcSolverSession] = []
            for session in self._idle:
                (close if session.sid == sid else keep).append(session)
            self._idle = keep
            self.dropped += len(close)
        for session in close:
            session.close()
        return True

    def is_quarantined(self, sid: int) -> bool:
        with self._lock:
            return sid in self._quarantine

    def info(self) -> Dict[str, object]:
        """A JSON-able snapshot for ``Service.health()``."""
        with self._lock:
            return {
                "max_sessions": self.max_sessions,
                "idle": sorted(s.sid for s in self._idle),
                "quarantined_sids": sorted(self._quarantine),
                "created": self.created,
                "reused": self.reused,
                "dropped": self.dropped,
                "evicted": self.evicted,
                "quarantined": self.quarantined,
            }

    def close(self) -> None:
        """Tear down every warm session (idempotent)."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for session in idle:
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
