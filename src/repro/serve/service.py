"""The concurrent solve service: submit jobs, get futures.

:class:`Service` glues the serving layer together::

    with Service(workers=2, cache_dir="benchmarks/results/cache") as svc:
        f1 = svc.submit(grid, field, cfg, topology=(1, 1, 2),
                        backend="procmpi")
        f2 = svc.submit(grid, field, "auto")           # autotuned config
        results = svc.map(jobs)                        # many at once
        print(f1.result().levels_advanced, svc.stats)

One submission flows: resolve ``config="auto"`` through the autotuner →
compute the content key → **cache**? return a completed future without
touching any backend → **identical job already in flight**? coalesce
onto it → otherwise queue.  Worker threads pull *batches* of
compatible jobs (see :mod:`repro.serve.scheduler`) and run each batch
back-to-back on a warm slot: procmpi jobs check a persistent
:class:`~repro.dist.solver.ProcSolverSession` out of the
:class:`~repro.serve.pool.SessionPool` (rank processes and
shared-memory segments survive across jobs), shared/simmpi jobs run
in the worker thread directly.

Failure semantics are fail-fast and job-scoped, matching the
fault-injection contract of the distributed rails: the *original*
exception of a failed solve comes out of exactly that job's
``future.result()``; a crashed procmpi session is dropped (its world,
segments and processes are already torn down — crash-only) and the pool
warms a fresh one, so subsequent jobs keep being served.

``workers=0`` puts the service in **synchronous** mode: nothing runs
until :meth:`Service.drain` executes the queue on the calling thread —
deterministic scheduling for tests and for callers that want batching
without threads.

Monitoring (``monitor=True``) attaches a
:class:`~repro.obs.monitor.Monitor`: the service's and cache's
registries are sampled into bounded rings, every completed job feeds
the ``serve.queue_wait`` / ``serve.solve_wall`` SLO histograms and the
straggler detector, and a probe (run at each sample) refreshes gauges,
**quarantines** sessions the detector flags and **speculatively
re-queues** jobs stuck past the detector's deadline.  Speculation is
safe because backends are bit-identical: the duplicate execution races
the stuck one and settling is first-completion-wins
(:class:`~repro.serve.scheduler.Entry` carries the arbitration state;
only cacheable — content-keyed — jobs participate).
:meth:`Service.health` exposes the whole picture as one JSON-able dict.

The module-level :func:`submit` / :func:`map_jobs` operate on a shared
default service (built on first use, reconfigurable via
:func:`configure`, closed atexit); they are what ``repro.submit`` and
``repro.map`` re-export.
"""

from __future__ import annotations

import atexit
import math
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.parameters import PipelineConfig
from ..core.pipeline import SolveResult
from ..grid.grid3d import Grid3D
from ..kernels.stencils import StarStencil
from ..machine.topology import MachineSpec
from ..obs.monitor import Monitor, StragglerPolicy
from ..obs.registry import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Trace, Tracer
from .autoconf import auto_config
from .cache import ResultCache
from .futures import SolveFuture, wait_all
from .job import SolveJob
from .pool import SessionPool
from .scheduler import Entry, JobQueue, resolve_engine

__all__ = ["ServiceStats", "Service", "WALL_HISTOGRAM", "QUEUE_HISTOGRAM",
           "default_service", "configure", "submit", "map_jobs", "shutdown"]

#: SLO histogram names the service records under (fixed, so dashboards
#: and the perf gates address them stably).
WALL_HISTOGRAM = "serve.solve_wall"
QUEUE_HISTOGRAM = "serve.queue_wait"


@dataclass(frozen=True)
class ServiceStats:
    """A deterministic, immutable snapshot of what the service did.

    Everything here counts *events*, not seconds: for a fixed job
    sequence the numbers are identical on any host, which is what lets
    throughput assertions ("a warm pool spawns 2x fewer processes than
    a cold loop") gate CI without wall-clock noise.  Frozen on purpose:
    :attr:`Service.stats` is a point in time, and two snapshots taken
    around an operation must diff that operation exactly — a live
    (mutating) object here silently made such diffs zero.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Returned straight from the result cache; no backend ran.
    cache_hits: int = 0
    #: Attached to an identical in-flight job; no extra backend run.
    coalesced: int = 0
    #: Jobs whose ``config="auto"`` went through the autotuner.
    auto_resolved: int = 0
    #: ``engine="auto"`` entries whose execution bound a *non-default*
    #: measured engine from the perf database.
    auto_engine_bound: int = 0
    #: Batches of >1 job that ran back-to-back on one warm slot.
    batches: int = 0
    batched_jobs: int = 0
    #: Actual backend executions (<= submitted, thanks to the above).
    backend_solves: int = 0
    # Pool counters (procmpi sessions).
    sessions_created: int = 0
    sessions_reused: int = 0
    sessions_dropped: int = 0
    #: Sessions the monitor's straggler verdict barred from reuse.
    sessions_quarantined: int = 0
    # Speculative re-execution (monitor-driven; zero without a monitor).
    #: Stuck jobs re-queued for duplicate execution.
    speculated: int = 0
    #: Entries settled by the *duplicate* execution.
    speculation_wins: int = 0
    #: Completions (results or errors) discarded because the entry was
    #: already settled by the other execution of a speculated pair.
    speculation_discarded: int = 0
    # Deltas of the global deterministic setup counters over this
    # service's lifetime.
    process_spawns: int = 0
    segments_created: int = 0


def _setup_counters() -> Dict[str, int]:
    from ..dist.procmpi import process_spawns
    from ..dist.shm import segment_creates

    return {"spawns": process_spawns(), "segments": segment_creates()}


def _finite(x: Optional[float]) -> Optional[float]:
    """JSON-strict: non-finite floats become None."""
    if x is None:
        return None
    x = float(x)
    return x if math.isfinite(x) else None


class Service:
    """A running solve service; use as a context manager.

    Parameters
    ----------
    workers:
        Worker threads sharing the queue (pool slots).  ``0`` =
        synchronous mode: jobs queue up until :meth:`drain` runs them on
        the calling thread.
    cache:
        ``True`` (default) for an in-memory LRU, ``False`` to disable
        caching, or a ready :class:`ResultCache` to share one across
        services.
    cache_entries, cache_dir:
        LRU capacity and the optional on-disk tier (e.g.
        ``benchmarks/results/cache/``) for the default-built cache.
    machine:
        Machine model the autotuner resolves ``config="auto"`` against
        (default: the paper's Nehalem EP preset).
    max_sessions:
        Warm procmpi sessions kept alive (default: ``max(workers, 1)``).
    batch_limit, batch_bytes:
        Batch formation knobs (see :class:`~repro.serve.scheduler.JobQueue`).
    start_method, comm_timeout:
        Forwarded to the procmpi sessions.
    monitor:
        ``True`` to attach a fresh :class:`~repro.obs.monitor.Monitor`,
        or a ready instance to share/inject (e.g. one with a
        deterministic clock).  Passing ``record_traces`` or
        ``straggler`` enables monitoring implicitly.
    monitor_interval:
        When set, a daemon thread samples the monitor every that many
        seconds; otherwise sampling is manual (``svc.monitor.sample()``)
        — the deterministic mode tests drive.
    record_traces:
        Flight-recorder ring size: keep the merged traces of the last N
        backend executions (0 = off; tracing stays off per job unless
        recording is on).
    straggler:
        Detection/quarantine/speculation policy (defaults to
        :class:`~repro.obs.monitor.StragglerPolicy`).
    """

    def __init__(self, workers: int = 2,
                 cache: Union[bool, ResultCache] = True,
                 cache_entries: int = 128,
                 cache_dir: Optional[Union[str, Path]] = None,
                 machine: Optional[MachineSpec] = None,
                 max_sessions: Optional[int] = None,
                 batch_limit: int = 8,
                 batch_bytes: int = 4 << 20,
                 start_method: Optional[str] = None,
                 comm_timeout: Optional[float] = None,
                 monitor: Union[bool, Monitor] = False,
                 monitor_interval: Optional[float] = None,
                 record_traces: int = 0,
                 straggler: Optional[StragglerPolicy] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.machine = machine
        if cache is True:
            self._cache: Optional[ResultCache] = ResultCache(
                max_entries=cache_entries, disk_dir=cache_dir)
        elif cache is False:
            self._cache = None
        else:
            self._cache = cache
        self._queue = JobQueue(batch_limit=batch_limit,
                               batch_bytes=batch_bytes)
        self._sessions = SessionPool(
            max_sessions=(max_sessions if max_sessions is not None
                          else max(workers, 1)),
            start_method=start_method, timeout=comm_timeout)
        self._lock = threading.Lock()
        #: One registry for every event counter and gauge of this
        #: service (:attr:`stats` snapshots it; traced solves and the
        #: perf harness read the same names).
        self._metrics = MetricsRegistry()
        self._inflight: Dict[str, Entry] = {}
        self._baseline = _setup_counters()
        self._closed = False
        self._monitor: Optional[Monitor] = None
        if monitor or record_traces > 0 or straggler is not None:
            mon = (monitor if isinstance(monitor, Monitor)
                   else Monitor(record_traces=record_traces,
                                policy=straggler))
            mon.attach("service", self._metrics)
            if self._cache is not None:
                mon.attach("cache", self._cache.metrics)
            mon.add_probe(self._monitor_probe)
            # Pre-create the SLO histograms so exports are stable even
            # before the first job completes.
            mon.histogram(WALL_HISTOGRAM)
            mon.histogram(QUEUE_HISTOGRAM)
            self._monitor = mon
        # Monitor before workers: _run_entry reads self._monitor.
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)]
        for t in self._workers:
            t.start()
        if self._monitor is not None and monitor_interval is not None:
            self._monitor.start(monitor_interval)

    # -- submission --------------------------------------------------------------

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's live obs registry (counters and gauges)."""
        return self._metrics

    @property
    def monitor(self) -> Optional[Monitor]:
        """The attached live monitor, if monitoring is enabled."""
        return self._monitor

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, grid: Grid3D, field: np.ndarray,
               config: Union[PipelineConfig, str],
               topology: Optional[Sequence[int]] = None,
               backend: str = "shared",
               stencil: Optional[StarStencil] = None,
               priority: int = 0,
               engine: Optional[str] = None) -> SolveFuture:
        """Queue one solve; mirrors :func:`repro.solve` plus ``priority``.

        Pass ``config="auto"`` to let the service pick the pipeline
        parameters (deterministic autotuner sweep on the machine model).
        ``engine`` overrides ``config.engine`` (concrete configs only);
        engines of one semantics class share cache entries, so an
        engine change alone never forces a recompute.  ``engine="auto"``
        defers the choice to the measured perf database
        (:mod:`repro.perf.db`), bound at execution time — with
        ``config="auto"`` that is already the autotuner's behaviour, so
        the combination is accepted as a no-op.
        """
        auto_engine = engine == "auto"
        if engine is not None and not auto_engine:
            if not isinstance(config, PipelineConfig):
                raise ValueError(
                    "a concrete engine cannot be combined with "
                    "config='auto'; the autotuner resolves the full "
                    "configuration (engine='auto' is allowed)")
            if engine != config.engine:
                config = replace(config, engine=engine)
        job = SolveJob(grid=grid, field=field, config=config,
                       topology=(tuple(int(p) for p in topology)
                                 if topology is not None else (1, 1, 1)),
                       backend=backend, stencil=stencil, priority=priority)
        # config="auto" resolves the engine from the same database, so
        # the flag only needs to ride concrete-config jobs.
        return self.submit_job(job, auto_engine=auto_engine and job.resolved)

    def submit_job(self, job: SolveJob,
                   auto_engine: bool = False) -> SolveFuture:
        """Queue a prepared :class:`SolveJob`; returns its future.

        ``auto_engine`` marks the entry for execution-time engine
        binding from the measured perf database (the ``engine="auto"``
        path); the content key is engine-class-keyed, so the deferred
        choice never changes cache identity.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if not job.resolved:
            cfg = auto_config(job.grid, job.topology, machine=self.machine)
            job = job.with_config(cfg)
            self._metrics.inc("auto_resolved")
        future = SolveFuture(job)
        key = (job.content_key()
               if (job.cacheable and self._cache is not None) else None)
        # The cache probe stays outside the service lock — the disk tier
        # does real I/O and the cache carries its own lock.  The window
        # in which a just-completed identical job is past this probe but
        # no longer in flight costs at most one redundant (and
        # bit-identical) recompute, never a wrong result.
        hit = self._cache.get(key) if key is not None else None
        t_queued = (self._monitor.clock()
                    if self._monitor is not None else 0.0)
        with self._lock:
            self._metrics.inc("submitted")
            if hit is not None:
                self._metrics.inc("cache_hits")
                future.cache_hit = True
            else:
                if key is not None:
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        self._metrics.inc("coalesced")
                        future.coalesced = True
                        inflight.futures.append(future)
                        return future
                entry = Entry(job=job, key=key, futures=[future],
                              t_queued=t_queued, auto_engine=auto_engine)
                if key is not None:
                    self._inflight[key] = entry
        if hit is not None:
            future._set_result(hit)
            return future
        self._queue.push(entry)
        self._metrics.set_gauge("queue_depth", len(self._queue))
        return future

    def map(self, jobs: Iterable[SolveJob],
            timeout: Optional[float] = None) -> List[SolveResult]:
        """Submit ``jobs`` and return their results in order.

        In synchronous mode (``workers=0``) this drains the queue
        itself.  Fail-fast: raises the first failed job's original
        exception (submission order), after all jobs finished.
        """
        futures = [self.submit_job(j) for j in jobs]
        if not self._workers:
            self.drain()
        return wait_all(futures, timeout=timeout)

    # -- execution ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.pop_batch(timeout=0.2)
            if batch is None:
                if self._queue.closed:
                    return
                continue
            self._run_batch(batch)

    def drain(self) -> int:
        """Run everything queued on the calling thread; returns jobs run.

        The synchronous half of ``workers=0`` mode; also usable on a
        threaded service to lend the caller's thread to the pool.
        """
        ran = 0
        while True:
            batch = self._queue.pop_batch(timeout=0)
            if not batch:
                return ran
            self._run_batch(batch)
            ran += len(batch)

    def _run_batch(self, batch: List[Entry]) -> None:
        self._metrics.set_gauge("queue_depth", len(self._queue))
        self._metrics.set_gauge("batch_size", len(batch))
        if len(batch) > 1:
            self._metrics.inc("batches")
            self._metrics.inc("batched_jobs", len(batch))
        for entry in batch:
            self._run_entry(entry)

    def _run_entry(self, entry: Entry) -> None:
        # Claim the waiters under the service lock — coalescing appends
        # to entry.futures under the same lock, so a future attached
        # concurrently is either claimed here or fanned out at
        # completion; it can never be dropped.  The same lock arbitrates
        # speculated pairs: the second pop of a re-queued entry claims
        # spec_claimed (identifying itself as the duplicate) and
        # whichever execution settles the entry first wins — the loser
        # discards its bit-identical result (or its error).
        mon = self._monitor
        t0 = mon.clock() if mon is not None else 0.0
        spec_run = False
        with self._lock:
            if entry.settled:
                return
            if entry.speculated and not entry.spec_claimed:
                entry.spec_claimed = True
                spec_run = True
            else:
                entry.t_started = t0
            live = [f for f in entry.futures if f._mark_started()]
            if not live:
                entry.settled = True
                if entry.key is not None:
                    self._inflight.pop(entry.key, None)
                self._metrics.inc("cancelled", len(entry.futures))
                return
        if mon is not None and not spec_run and entry.t_queued > 0:
            mon.observe(QUEUE_HISTOGRAM, max(0.0, t0 - entry.t_queued))
        record = mon is not None and mon.recorder is not None
        # Bind any deferred engine="auto" choice now, against the perf
        # database as of *execution* — queued entries see calibration
        # data that arrived after submission.
        job = resolve_engine(entry)
        if job is not entry.job:
            self._metrics.inc("auto_engine_bound")
        try:
            result, worker, trace = self._execute(job, record=record)
        except BaseException as exc:  # noqa: BLE001 — future carries it
            with self._lock:
                if entry.settled:
                    self._metrics.inc("speculation_discarded")
                    return
                if spec_run:
                    # The duplicate failed while the stuck original is
                    # still running — let the original decide the
                    # entry's fate (speculation is latency insurance,
                    # never a new failure mode).
                    self._metrics.inc("speculation_failed")
                    return
                entry.settled = True
                if entry.key is not None:
                    self._inflight.pop(entry.key, None)
                self._metrics.inc("failed")
                waiters = list(entry.futures)
            for f in waiters:
                f._set_exception(exc)
        else:
            if mon is not None:
                service_s = mon.clock() - t0
                mon.observe(WALL_HISTOGRAM, service_s)
                # The loser of a speculated pair still contributes its
                # (slow) observation — that is the signal that flags
                # the limplocked worker.
                mon.detector.observe(worker, service_s)
                if record and trace is not None:
                    mon.recorder.record(
                        entry.job.describe(), trace, wall_s=service_s,
                        worker=worker, key=entry.key,
                        status="speculated" if spec_run else "ok")
            if entry.key is not None and self._cache is not None:
                # Populate the cache before dropping the in-flight entry
                # so a racing identical submit either coalesces or hits
                # (modulo the benign probe window documented in
                # submit_job).  Outside the service lock: the disk tier
                # may write real bytes.
                self._cache.put(entry.key, result)
            with self._lock:
                if entry.settled:
                    self._metrics.inc("speculation_discarded")
                    return
                entry.settled = True
                if spec_run:
                    self._metrics.inc("speculation_wins")
                if entry.key is not None:
                    self._inflight.pop(entry.key, None)
                self._metrics.inc("completed")
                waiters = list(entry.futures)
            for f in waiters:
                f._set_result(result)

    def _execute(self, job: SolveJob, record: bool = False,
                 ) -> Tuple[SolveResult, str, Optional[Trace]]:
        """Run ``job``; returns (result, worker label, optional trace).

        The worker label is the straggler detector's identity:
        ``session-<sid>`` for procmpi (the pool-assigned stable session
        id — the unit quarantine acts on), ``backend-<name>`` for the
        in-thread backends.
        """
        self._metrics.inc("backend_solves")
        if job.backend == "procmpi":
            tracer = Tracer(pid=0, label="serve") if record else NULL_TRACER
            session = self._sessions.acquire(job)
            try:
                result = session.solve_pipelined(job.grid, job.field,
                                                 job.config,
                                                 stencil=job.stencil,
                                                 tracer=tracer)
            except BaseException:
                # The session closed itself (crash-only); drop it and
                # let the pool warm a fresh one for the next job.
                self._sessions.release(session, broken=True)
                raise
            worker = f"session-{session.sid}"
            self._sessions.release(session)
            return result, worker, (tracer.finish() if record else None)
        from ..api import solve

        result = solve(job.grid, job.field, job.config,
                       topology=job.topology, backend=job.backend,
                       stencil=job.stencil, trace=record)
        return result, f"backend-{job.backend}", result.trace

    # -- monitoring --------------------------------------------------------------

    def _monitor_probe(self) -> None:
        """Policy pass, run at the start of every monitor sample.

        Refreshes the live gauges, quarantines sessions the straggler
        detector has flagged, and speculatively re-queues in-flight jobs
        stuck past the detection deadline.  Only content-keyed entries
        are speculation candidates (they are the ones tracked in
        ``_inflight``; bit-identical re-execution is exactly the cache
        key's contract).
        """
        mon = self._monitor
        if mon is None or self._closed:
            return
        self._metrics.set_gauge("queue_depth", len(self._queue))
        with self._lock:
            self._metrics.set_gauge("inflight", len(self._inflight))
        for worker in mon.detector.degraded():
            if worker.startswith("session-"):
                sid = int(worker.split("-", 1)[1])
                if self._sessions.quarantine(sid):
                    self._metrics.inc("quarantined")
        deadline = mon.detector.deadline()
        if deadline is None:
            return
        now = mon.clock()
        requeue: List[Entry] = []
        with self._lock:
            for entry in self._inflight.values():
                if (entry.t_started > 0 and not entry.speculated
                        and not entry.settled
                        and now - entry.t_started > deadline):
                    entry.speculated = True
                    requeue.append(entry)
        for entry in requeue:
            try:
                self._queue.push(entry)
            except RuntimeError:  # closing — the drain will finish it
                break
            self._metrics.inc("speculated")

    def health(self) -> Dict[str, Any]:
        """One JSON-able dict of live service health.

        Always available; the monitor-derived sections (histograms,
        stragglers, monitor counters) are empty/None when monitoring is
        off.  Every value is JSON-strict (no inf/NaN — they become
        None), so the dict can be dumped straight into an HTTP health
        endpoint or the ``python -m repro.obs top`` view.
        """
        snap = self._metrics.snapshot()
        with self._lock:
            inflight = len(self._inflight)
        sessions = self._sessions.info()
        mon = self._monitor
        hists: Dict[str, Any] = {}
        stragglers: List[Dict[str, Any]] = []
        monitor_info: Optional[Dict[str, int]] = None
        degraded: List[str] = []
        if mon is not None:
            hists = {h.name: h.snapshot() for h in mon.histograms()}
            degraded = mon.detector.degraded()
            stragglers = [{
                "worker": s.worker,
                "jobs": s.jobs,
                "last_s": _finite(s.last_s),
                "expected_s": _finite(s.expected_s),
                "ratio": _finite(s.ratio),
                "over": s.over,
                "flagged": s.flagged,
                "flagged_after": s.flagged_after,
                "worst_share_drift": _finite(s.worst_share_drift),
            } for s in mon.detector.scores()]
            monitor_info = {
                "samples": mon.samples,
                "observations": mon.observations,
                "recorded_traces": (mon.recorder.recorded
                                    if mon.recorder is not None else 0),
            }
        status = ("closed" if self._closed
                  else "degraded" if (degraded or sessions["quarantined"])
                  else "ok")
        return {
            "status": status,
            "workers": len(self._workers),
            "queue_depth": len(self._queue),
            "inflight": inflight,
            "counters": {k: int(v) for k, v in snap["counters"].items()},
            "gauges": {k: _finite(v) for k, v in snap["gauges"].items()},
            "sessions": sessions,
            "histograms": hists,
            "stragglers": stragglers,
            "monitor": monitor_info,
        }

    # -- lifecycle ---------------------------------------------------------------

    @property
    def stats(self) -> ServiceStats:
        """An immutable point-in-time snapshot of the event counters.

        Built from one atomic read of the service's obs registry plus
        the pool and global setup counters; being frozen, the object a
        caller holds can never drift as the service keeps working.
        """
        now = _setup_counters()
        counts = self._metrics.snapshot()["counters"]

        def c(name: str) -> int:
            return int(counts.get(name, 0))

        return ServiceStats(
            submitted=c("submitted"),
            completed=c("completed"),
            failed=c("failed"),
            cancelled=c("cancelled"),
            cache_hits=c("cache_hits"),
            coalesced=c("coalesced"),
            auto_resolved=c("auto_resolved"),
            auto_engine_bound=c("auto_engine_bound"),
            batches=c("batches"),
            batched_jobs=c("batched_jobs"),
            backend_solves=c("backend_solves"),
            sessions_created=self._sessions.created,
            sessions_reused=self._sessions.reused,
            sessions_dropped=self._sessions.dropped,
            sessions_quarantined=self._sessions.quarantined,
            speculated=c("speculated"),
            speculation_wins=c("speculation_wins"),
            speculation_discarded=c("speculation_discarded"),
            process_spawns=now["spawns"] - self._baseline["spawns"],
            segments_created=now["segments"] - self._baseline["segments"],
        )

    def close(self) -> None:
        """Finish queued work, stop the workers, tear down the pool."""
        if self._closed:
            return
        self._closed = True
        if self._monitor is not None:
            # Stop background sampling first so no probe races the
            # queue shutdown (a probe mid-close is a harmless no-op,
            # but the thread must not outlive the service).
            self._monitor.stop()
        self._queue.close()
        for t in self._workers:
            t.join()
        self.drain()  # synchronous mode: whatever is still queued
        self._sessions.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The default service behind repro.submit / repro.map.
# ---------------------------------------------------------------------------

_default: Optional[Service] = None
_default_lock = threading.Lock()


def default_service() -> Service:
    """The process-wide service (created on first use)."""
    global _default
    with _default_lock:
        if _default is None or _default.closed:
            _default = Service()
        return _default


def configure(**kwargs: Any) -> Service:
    """Replace the default service (closing any previous one).

    Accepts every :class:`Service` constructor argument, e.g.
    ``repro.serve.configure(workers=4, cache_dir="benchmarks/results/cache")``.
    """
    global _default
    with _default_lock:
        if _default is not None:
            _default.close()
        _default = Service(**kwargs)
        return _default


def submit(grid: Grid3D, field: np.ndarray,
           config: Union[PipelineConfig, str],
           topology: Optional[Sequence[int]] = None,
           backend: str = "shared",
           stencil: Optional[StarStencil] = None,
           priority: int = 0,
           engine: Optional[str] = None) -> SolveFuture:
    """``repro.submit`` — queue one solve on the default service."""
    return default_service().submit(grid, field, config, topology=topology,
                                    backend=backend, stencil=stencil,
                                    priority=priority, engine=engine)


def map_jobs(jobs: Iterable[SolveJob],
             timeout: Optional[float] = None) -> List[SolveResult]:
    """``repro.map`` — run many jobs on the default service, in order."""
    return default_service().map(jobs, timeout=timeout)


def shutdown() -> None:
    """Close the default service (registered atexit; safe to call twice)."""
    global _default
    with _default_lock:
        svc, _default = _default, None
    if svc is not None:
        svc.close()


atexit.register(shutdown)
