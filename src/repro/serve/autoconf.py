"""Resolution of ``config="auto"`` jobs via the public autotuner.

The paper stresses that the pipelined-blocking parameter space "is
huge" and that its reported optima were found experimentally;
:func:`repro.autotune` automates that experiment on the calibrated
machine model.  This module puts it behind the service: a job submitted
with ``config="auto"`` gets the best *valid* configuration from a small
deterministic sweep — ranked by simulated MLUP/s, then filtered against
the job's actual grid and placement (coverage check, distributed
storage constraint), falling back to a conservative default when the
whole sweep is infeasible for a tiny grid.

Everything here is deterministic: the DES is seeded, the ranking sort
is stable, and resolutions are memoised per (machine, geometry), so the
same "auto" job always resolves to the same concrete
:class:`PipelineConfig` — which is what lets resolved jobs share
content keys and cache entries.

Since the measured perf database (:mod:`repro.perf.db`) arrived, the
chosen configuration also carries the measured-best **engine** for its
storage scheme and grid size (:func:`~repro.perf.db.resolve_auto_engine`
— the static default when nothing is measured), and the memo key folds
in the database *generation*: fresh calibration data invalidates the
memo instead of being shadowed by it.  Engines share a semantics class,
so this never changes result bits or content keys — only throughput.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.autotune import TuneResult, autotune
from ..core.parameters import PipelineConfig, RelaxedSpec
from ..core.pipeline import plan
from ..grid.grid3d import Grid3D
from ..machine.topology import MachineSpec

__all__ = ["auto_config", "clear_auto_cache"]

#: The sweep the service runs per geometry — small on purpose (the DES
#: evaluates each point); the full knob space stays available through
#: :func:`repro.autotune` directly.
_BX_VALUES = (32, 64)
_BZ_VALUES = (4, 8)
_T_VALUES = (1, 2)
_DU_VALUES = (1, 4)

#: Conservative fallback when no sweep point fits the grid.
_FALLBACK = PipelineConfig(teams=1, threads_per_team=2,
                           updates_per_thread=1, block_size=(4, 64, 64),
                           sync=RelaxedSpec(1, 2), storage="twogrid")

_cache_lock = threading.Lock()
_resolved: Dict[Tuple, PipelineConfig] = {}


def clear_auto_cache() -> None:
    """Forget memoised resolutions (tests poking at determinism)."""
    with _cache_lock:
        _resolved.clear()


def _default_machine() -> MachineSpec:
    from ..machine.presets import nehalem_ep

    return nehalem_ep()


def _valid(cfg: PipelineConfig, grid: Grid3D,
           topology: Tuple[int, int, int]) -> bool:
    """Whether ``cfg`` can actually run this job (fail-fast dry checks).

    Beyond the geometric dry-run (can the decomposition and the pass
    plan even be built?), every candidate must be *certified* by the
    static schedule analyzer: auto-configured jobs never hand the
    worker pool a schedule whose race/deadlock freedom has not been
    proven.
    """
    from ..analysis import quick_check  # late: keeps serve import-light

    try:
        if not quick_check(cfg, grid.shape, tuple(topology)):
            return False
        if topology == (1, 1, 1):
            plan(grid, cfg)
            return True
        if cfg.storage != "twogrid":
            return False
        from ..dist.decomp import CartesianDecomposition

        decomp = CartesianDecomposition(grid.shape, topology,
                                        cfg.updates_per_pass)
        for rank in range(decomp.n_ranks):
            local = Grid3D(decomp.geometry(rank).stored.shape,
                           dtype=grid.dtype)
            plan(local, cfg)
        return True
    except (ValueError, KeyError):
        return False


def ranked_candidates(machine: MachineSpec,
                      shape: Sequence[int],
                      distributed: bool) -> List[TuneResult]:
    """The service's deterministic sweep, best-first.

    Thin wrapper over :func:`repro.autotune` with the serve-sized value
    sets; split out so the determinism test can pin the ranking itself.
    """
    return autotune(
        machine,
        shape=tuple(shape),
        teams=1,
        bx_values=_BX_VALUES,
        bz_values=_BZ_VALUES,
        T_values=_T_VALUES,
        du_values=_DU_VALUES,
        storages=("twogrid",) if distributed else ("twogrid", "compressed"),
        seed=0,
    )


def auto_config(grid: Grid3D,
                topology: Tuple[int, int, int] = (1, 1, 1),
                machine: Optional[MachineSpec] = None) -> PipelineConfig:
    """The configuration a ``config="auto"`` job resolves to.

    Best simulated throughput among the sweep points that pass the
    coverage/placement checks for this grid and topology; memoised, so
    repeated auto jobs on one geometry resolve (and therefore cache)
    identically.
    """
    from ..perf.db import perfdb_generation, resolve_auto_engine

    m = machine or _default_machine()
    # repr() covers every calibration field — two machines sharing a
    # display name but differing in bandwidths must not share tunings.
    # The perf-database generation is part of the key: recording new
    # measurements (a calibration run, a perf-run ingest) must change
    # future resolutions, not be shadowed by a stale memo entry.
    key = (repr(m), tuple(grid.shape), str(grid.dtype), tuple(topology),
           perfdb_generation())
    with _cache_lock:
        hit = _resolved.get(key)
    if hit is not None:
        return hit
    distributed = tuple(topology) != (1, 1, 1)
    for cand in ranked_candidates(m, grid.shape, distributed):
        if _valid(cand.config, grid, tuple(topology)):
            chosen = cand.config
            break
    else:
        chosen = _FALLBACK
        if not _valid(chosen, grid, tuple(topology)):
            raise ValueError(
                f"no valid pipeline configuration found for grid "
                f"{grid.shape} on topology {tuple(topology)}")
    # The geometry sweep picked block/T/d_u/storage; the engine axis is
    # orthogonal (bit-identical variants) and is resolved from *measured*
    # data for the chosen storage scheme — static default when the
    # database has nothing for this host.
    engine = resolve_auto_engine(chosen.storage, grid.shape)
    if engine != chosen.engine:
        from dataclasses import replace

        chosen = replace(chosen, engine=engine)
    with _cache_lock:
        _resolved[key] = chosen
    return chosen
