"""Content-addressed result cache: in-memory LRU plus optional disk.

Entries are keyed by :meth:`SolveJob.content_key` — a SHA-256 over the
problem bytes, the canonical configuration and the backend *semantics*
(see :mod:`repro.serve.job`) — so a hit is exactly a solve whose result
field is guaranteed bit-identical to recomputing.  The cache therefore
returns the stored :class:`~repro.core.pipeline.SolveResult` as-is
(field defensively copied so callers cannot mutate the cached bits);
``stats``/timing metadata reflect the run that *populated* the entry.

The disk tier is a directory of ``<key>.pkl`` files (NumPy arrays
pickle losslessly, so bit-identity survives the round-trip), written
atomically via a temp file + rename.  It is optional and trusted local
state — point it somewhere like ``benchmarks/results/cache/`` to keep
warm results across processes; unreadable or truncated files are
treated as misses and removed.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Optional, Union

from ..core.pipeline import SolveResult
from ..obs import registry as _obs
from ..obs.registry import MetricsRegistry

__all__ = ["ResultCache"]

_KEY_HEX = 64  # SHA-256 digest length; anything else is not our file


def _clone(result: SolveResult) -> SolveResult:
    """A result whose field the caller may mutate without corrupting us."""
    return replace(result, field=result.field.copy())


class ResultCache:
    """LRU cache of :class:`SolveResult` by content key.

    Thread-safe; the service's worker threads put and the submitting
    thread gets.  ``max_entries`` bounds the in-memory tier only — the
    disk tier (when configured) keeps everything until
    :meth:`clear` (files are small pickles; pruning is the operator's
    call, not silent policy).
    """

    def __init__(self, max_entries: int = 128,
                 disk_dir: Optional[Union[str, Path]] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, SolveResult]" = OrderedDict()
        self._lock = threading.Lock()
        # Counters live in a per-cache obs registry (mirrored into the
        # process-wide one under ``serve.cache.*``); the attribute names
        # below are the public, read-only view older callers use.
        self._metrics = MetricsRegistry()

    def _count(self, name: str, n: int = 1) -> None:
        self._metrics.inc(name, n)
        _obs.inc(f"serve.cache.{name}", n)

    @property
    def metrics(self) -> MetricsRegistry:
        """This cache's live obs registry (a monitor-attachable source)."""
        return self._metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.counter("hits"))

    @property
    def misses(self) -> int:
        return int(self._metrics.counter("misses"))

    @property
    def evictions(self) -> int:
        return int(self._metrics.counter("evictions"))

    @property
    def disk_hits(self) -> int:
        return int(self._metrics.counter("disk_hits"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def get(self, key: str) -> Optional[SolveResult]:
        """The cached result for ``key``, or None; promotes to MRU."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._count("hits")
        if entry is not None:
            # Clone outside the lock: the stored entry is never mutated
            # (puts store their own clones, gets hand out clones), so
            # concurrent hitters need not serialise on the array copy.
            return _clone(entry)
        path = self._disk_path(key)
        if path is not None and path.is_file():
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
            except Exception:
                # Truncated/foreign file: a miss, and not worth keeping.
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
            else:
                if isinstance(entry, SolveResult):
                    with self._lock:
                        self._count("hits")
                        self._count("disk_hits")
                        self._store(key, entry)
                    return _clone(entry)
                # Unpickles but is not ours: equally not worth keeping
                # (and re-reading foreign pickle bytes on every probe).
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        with self._lock:
            self._count("misses")
        return None

    def _store(self, key: str, result: SolveResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("evictions")

    def put(self, key: str, result: SolveResult) -> None:
        """Store ``result`` (field copied) in memory and on disk."""
        entry = _clone(result)
        with self._lock:
            self._store(key, entry)
        path = self._disk_path(key)
        if path is not None:
            # pid+tid: two threads (or services sharing one cache) may
            # persist the same key concurrently — each needs its own
            # temp file or the interleaved writes publish garbage.
            tmp = path.with_suffix(
                ".tmp-%d-%d" % (os.getpid(), threading.get_ident()))
            try:
                with open(tmp, "wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except OSError:  # pragma: no cover - disk tier is best-effort
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also our disk files."""
        with self._lock:
            self._entries.clear()
        if disk and self.disk_dir is not None:
            for p in self.disk_dir.glob("*.pkl"):
                if len(p.stem) == _KEY_HEX:
                    try:
                        p.unlink()
                    except OSError:  # pragma: no cover
                        pass
