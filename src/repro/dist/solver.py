"""Distributed-memory solvers: multi-halo Jacobi and the hybrid scheme.

Two front-ends, both returning the unified
:class:`~repro.core.pipeline.SolveResult`:

* :func:`distributed_jacobi_sweeps` — the paper's Sect. 2.1 scheme in
  isolation: exchange ``h`` ghost layers, run ``h`` plain Jacobi updates
  where update ``s`` covers a region ``h − s`` layers larger than the
  core (the shrinking trapezoid), repeat.  Ground truth for the hybrid
  scheme and the cheapest way to see the ghost-cell expansion work.

* :func:`distributed_jacobi_pipelined` — the paper's headline hybrid:
  every rank drives the *shared-memory* pipelined executor
  (:class:`~repro.core.executor.PipelineExecutor`) over its trapezoid via
  the executor's ``active_fn`` hook, with ``h = n·t·T`` chosen so one
  executor pass consumes exactly one halo exchange.  Between passes the
  ranks run the 3-phase ghost-cell-expansion exchange of
  :mod:`repro.dist.exchange` over a :class:`~repro.dist.comm.Comm`.

Every ghost cell a rank updates is *also* updated by its owner from the
same inputs, so the redundant trapezoid work is bit-consistent across
ranks and the assembled field matches the single-domain solver to
floating-point accuracy — which ``tests/test_dist.py`` pins at 1e-13.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.executor import ExecutionStats, PipelineExecutor
from ..core.parameters import PipelineConfig
from ..core.pipeline import SolveResult
from ..grid.grid3d import DirichletBoundary, Grid3D
from ..grid.region import Box
from ..kernels.jacobi import jacobi7
from ..kernels.reference import reference_sweep_region
from ..kernels.stencils import StarStencil
from .comm import Comm
from .decomp import CartesianDecomposition, RankGeometry
from .exchange import ExchangeEntry, exchange_plan
from .simmpi import run_ranks

__all__ = ["distributed_jacobi_sweeps", "distributed_jacobi_pipelined"]

Coord = Tuple[int, int, int]


def _shifted_boundary(boundary: DirichletBoundary, off: Coord) -> DirichletBoundary:
    """The global Dirichlet ring expressed in rank-local coordinates.

    Per-face constants translate unchanged (a stored face either *is* the
    matching global face or is never read); a spatially varying ``func``
    needs its coordinates shifted back to global.
    """
    if boundary.func is None:
        return DirichletBoundary(boundary.default, faces=dict(boundary.faces))
    oz, oy, ox = off

    def shifted(z: np.ndarray, y: np.ndarray, x: np.ndarray) -> np.ndarray:
        return boundary.func(z + oz, y + oy, x + ox)

    return DirichletBoundary(boundary.default, faces=dict(boundary.faces),
                             func=shifted)


def _run_exchange(comm: Comm, plan: List[ExchangeEntry],
                  extract: Callable[[Box], np.ndarray],
                  inject: Callable[[Box, np.ndarray], None]) -> Tuple[int, int]:
    """One full 3-phase ghost exchange; returns (bytes_sent, messages).

    Within a phase all sends are issued before any receive — sends are
    buffered (copy-on-send), so this cannot deadlock regardless of rank
    interleaving.  Phases are ordered (dim 0, 1, 2) because later phases
    forward the ghost data received in earlier ones (Fig. 4).
    """
    nbytes = 0
    messages = 0
    for dim in range(3):
        phase = [e for e in plan if e[0] == dim]
        for (_, _, peer, send, _) in phase:
            vals = extract(send)
            comm.send(peer, vals)
            nbytes += vals.nbytes
            messages += 1
        for (_, _, peer, _, recv) in phase:
            inject(recv, comm.recv(peer))
    return nbytes, messages


def _prepare(grid: Grid3D, field: np.ndarray, proc_grid: Sequence[int],
             halo: int) -> Tuple[CartesianDecomposition, List[List[ExchangeEntry]]]:
    """Decompose and pre-validate every rank's exchange plan (fail fast)."""
    if field.shape != grid.shape:
        raise ValueError(f"field shape {field.shape} != grid shape {grid.shape}")
    decomp = CartesianDecomposition(grid.shape, proc_grid, halo)
    plans = [exchange_plan(decomp, decomp.geometry(r))
             for r in range(decomp.n_ranks)]
    return decomp, plans


def _assemble(grid: Grid3D,
              pieces: List[Tuple[Box, np.ndarray]]) -> np.ndarray:
    """Stitch the rank cores back into one global interior array."""
    out = np.empty(grid.shape, dtype=grid.dtype)
    for core, vals in pieces:
        out[core.slices()] = vals
    return out


def _neg(off: Coord) -> Coord:
    return (-off[0], -off[1], -off[2])


# ---------------------------------------------------------------------------
# Multi-halo Jacobi sweeps (Sect. 2.1 in isolation)
# ---------------------------------------------------------------------------

def distributed_jacobi_sweeps(
    grid: Grid3D,
    field: np.ndarray,
    proc_grid: Sequence[int],
    supersteps: int,
    halo: int,
    stencil: Optional[StarStencil] = None,
) -> SolveResult:
    """``supersteps`` rounds of (h-layer exchange, then h trapezoid sweeps).

    Advances the field by ``supersteps * halo`` time levels, equal to that
    many plain Jacobi sweeps on the undecomposed domain.
    """
    if supersteps < 1:
        raise ValueError("supersteps must be >= 1")
    st = stencil or jacobi7()
    decomp, plans = _prepare(grid, field, proc_grid, halo)

    def rank_fn(comm: Comm, rank: int):
        geo = decomp.geometry(rank)
        off = geo.stored.lo
        neg = _neg(off)
        lgrid = Grid3D(geo.stored.shape,
                       boundary=_shifted_boundary(grid.boundary, off),
                       dtype=grid.dtype)
        # Padded pair: local stored box + the one-cell Dirichlet ring.
        cur = lgrid.padded(np.ascontiguousarray(field[geo.stored.slices()]))
        nxt = cur.copy()
        core_l = geo.core.shift(neg)
        nbytes = messages = 0

        def extract(box: Box) -> np.ndarray:
            return cur[box.shift(neg).slices((1, 1, 1))].copy()

        def inject(box: Box, vals: np.ndarray) -> None:
            cur[box.shift(neg).slices((1, 1, 1))] = vals

        for _ in range(supersteps):
            b, m = _run_exchange(comm, plans[rank], extract, inject)
            nbytes += b
            messages += m
            for s in range(1, halo + 1):
                region = core_l.grow(halo - s).intersect(lgrid.domain)
                reference_sweep_region(cur, nxt, region.lo, region.hi, st)
                cur, nxt = nxt, cur
        return geo.core, cur[core_l.slices((1, 1, 1))].copy(), nbytes, messages

    outs = run_ranks(decomp.n_ranks, rank_fn)
    return SolveResult(
        field=_assemble(grid, [(core, vals) for core, vals, _, _ in outs]),
        levels_advanced=supersteps * halo,
        stats=None,
        config=None,
        backend="simmpi",
        topology=decomp.proc_grid,
        n_ranks=decomp.n_ranks,
        halo=halo,
        bytes_exchanged=sum(o[2] for o in outs),
        messages=sum(o[3] for o in outs),
    )


# ---------------------------------------------------------------------------
# Hybrid: pipelined temporal blocking per rank (Sect. 2.2)
# ---------------------------------------------------------------------------

def distributed_jacobi_pipelined(
    grid: Grid3D,
    field: np.ndarray,
    proc_grid: Sequence[int],
    config: PipelineConfig,
    stencil: Optional[StarStencil] = None,
    order: str = "round_robin",
    validate: bool = True,
) -> SolveResult:
    """The paper's hybrid scheme: one pipelined executor per rank.

    The halo width is ``h = config.updates_per_pass`` (= ``n·t·T``) so a
    single executor pass exactly drains one exchange; ``config.passes``
    becomes the number of supersteps.  Requires the two-grid storage
    scheme: the compressed grid's shifted storage positions do not
    compose with ghost injection across ranks.
    """
    if config.storage != "twogrid":
        raise ValueError(
            "distributed pipelining requires the 'twogrid' storage scheme; "
            f"the {config.storage!r} layout cannot absorb ghost injections"
        )
    st = stencil or jacobi7()
    h = config.updates_per_pass
    decomp, plans = _prepare(grid, field, proc_grid, h)

    def rank_fn(comm: Comm, rank: int):
        geo = decomp.geometry(rank)
        off = geo.stored.lo
        neg = _neg(off)
        lgrid = Grid3D(geo.stored.shape,
                       boundary=_shifted_boundary(grid.boundary, off),
                       dtype=grid.dtype)
        core_l = geo.core.shift(neg)

        def active_fn(level: int) -> Box:
            # Pass-local update u covers the core + (h - u) ghost layers:
            # the shrinking trapezoid; the executor clips to the stored box.
            u = (level - 1) % h + 1
            return core_l.grow(h - u)

        ex = PipelineExecutor(
            lgrid, np.ascontiguousarray(field[geo.stored.slices()]),
            config, st, order=order, active_fn=active_fn, validate=validate,
        )
        storage = ex.storage
        nbytes = messages = 0
        for p in range(config.passes):
            base = p * h

            def extract(box: Box, base: int = base) -> np.ndarray:
                return storage.extract_region(box.shift(neg), base)

            def inject(box: Box, vals: np.ndarray, base: int = base) -> None:
                storage.inject(box.shift(neg), base, vals)

            b, m = _run_exchange(comm, plans[rank], extract, inject)
            nbytes += b
            messages += m
            ex.run_pass(p)
        final = config.passes * h
        core_vals = storage.extract_region(core_l, final)
        return geo.core, core_vals, nbytes, messages, ex.stats

    outs = run_ranks(decomp.n_ranks, rank_fn)
    stats = ExecutionStats()
    for o in outs:
        rank_stats: ExecutionStats = o[4]
        stats.block_ops += rank_stats.block_ops
        stats.empty_block_ops += rank_stats.empty_block_ops
        stats.updates += rank_stats.updates
        stats.cells_updated += rank_stats.cells_updated
        stats.max_counter_gap = max(stats.max_counter_gap,
                                    rank_stats.max_counter_gap)
    return SolveResult(
        field=_assemble(grid, [(core, vals) for core, vals, *_ in outs]),
        levels_advanced=config.total_updates,
        stats=stats,
        config=config,
        backend="simmpi",
        topology=decomp.proc_grid,
        n_ranks=decomp.n_ranks,
        halo=h,
        bytes_exchanged=sum(o[2] for o in outs),
        messages=sum(o[3] for o in outs),
    )
