"""Distributed-memory solvers: multi-halo Jacobi and the hybrid scheme.

Two front-ends, both returning the unified
:class:`~repro.core.pipeline.SolveResult`:

* :func:`distributed_jacobi_sweeps` — the paper's Sect. 2.1 scheme in
  isolation: exchange ``h`` ghost layers, run ``h`` plain Jacobi updates
  where update ``s`` covers a region ``h − s`` layers larger than the
  core (the shrinking trapezoid), repeat.  Ground truth for the hybrid
  scheme and the cheapest way to see the ghost-cell expansion work.

* :func:`distributed_jacobi_pipelined` — the paper's headline hybrid:
  every rank drives the *shared-memory* pipelined executor
  (:class:`~repro.core.executor.PipelineExecutor`) over its trapezoid via
  the executor's ``active_fn`` hook, with ``h = n·t·T`` chosen so one
  executor pass consumes exactly one halo exchange.  Between passes the
  ranks run the 3-phase ghost-cell-expansion exchange of
  :mod:`repro.dist.exchange` over a :class:`~repro.dist.comm.Comm`.

Both front-ends run on either **transport**: ``"simmpi"`` executes one
thread per rank (:func:`repro.dist.simmpi.run_ranks`), ``"procmpi"`` one
OS process per rank (:func:`repro.dist.procmpi.run_procs`) with the
global field, the assembled result and the halo rings living in
:mod:`multiprocessing.shared_memory` blocks.  The per-rank algorithm is
*one* function shared by both transports (:func:`_sweeps_rank_body` /
:func:`_pipelined_rank_body`), so the transports cannot diverge — the
cross-backend differential battery in ``tests/test_backend_equivalence``
pins them bit-identical to each other.

Every ghost cell a rank updates is *also* updated by its owner from the
same inputs, so the redundant trapezoid work is bit-consistent across
ranks and the assembled field matches the single-domain solver to
floating-point accuracy — which ``tests/test_dist.py`` pins at 1e-13.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.executor import ExecutionStats, PipelineExecutor
from ..core.parameters import PipelineConfig
from ..core.pipeline import SolveResult
from ..grid.grid3d import DirichletBoundary, Grid3D
from ..grid.region import Box
from ..kernels.jacobi import jacobi7
from ..kernels.reference import reference_sweep_region
from ..kernels.stencils import StarStencil
from ..obs.tracer import NULL_TRACER, Tracer
from .comm import Comm
from .decomp import CartesianDecomposition
from .exchange import ExchangeEntry, exchange_plan
from .procmpi import ProcMPIError, ProcWorld
from .shm import ShmArrayHandle, ShmPool, attach_array
from .simmpi import run_ranks

__all__ = ["TRANSPORTS", "ProcSolverSession", "distributed_jacobi_sweeps",
           "distributed_jacobi_pipelined"]

Coord = Tuple[int, int, int]

#: Rank transports understood by the distributed front-ends.
TRANSPORTS = ("simmpi", "procmpi")


def _check_transport(transport: str) -> None:
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; choose from {TRANSPORTS}")


def _shifted_boundary(boundary: DirichletBoundary, off: Coord) -> DirichletBoundary:
    """The global Dirichlet ring expressed in rank-local coordinates.

    Per-face constants translate unchanged (a stored face either *is* the
    matching global face or is never read); a spatially varying ``func``
    needs its coordinates shifted back to global.
    """
    if boundary.func is None:
        return DirichletBoundary(boundary.default, faces=dict(boundary.faces))
    oz, oy, ox = off

    def shifted(z: np.ndarray, y: np.ndarray, x: np.ndarray) -> np.ndarray:
        return boundary.func(z + oz, y + oy, x + ox)

    return DirichletBoundary(boundary.default, faces=dict(boundary.faces),
                             func=shifted)


def _run_exchange(comm: Comm, plan: List[ExchangeEntry],
                  extract: Callable[[Box], np.ndarray],
                  inject: Callable[[Box, np.ndarray], None],
                  tracer: Tracer = NULL_TRACER) -> Tuple[int, int]:
    """One full 3-phase ghost exchange; returns (bytes_sent, messages).

    Within a phase all sends are issued before any receive — sends are
    buffered (copy-on-send), so this cannot deadlock regardless of rank
    interleaving.  Phases are ordered (dim 0, 1, 2) because later phases
    forward the ghost data received in earlier ones (Fig. 4).

    When traced, each non-empty phase becomes a span, every send bumps
    the ``exchange.bytes``/``exchange.messages`` counters, and each
    blocking receive gets an ``exchange.recv_wait`` span — the wait-time
    signal :func:`repro.obs.trace_metrics` aggregates per solve.
    """
    nbytes = 0
    messages = 0
    for dim in range(3):
        phase = [e for e in plan if e[0] == dim]
        if not phase:
            continue
        with tracer.span("exchange.phase", cat="dist", dim=dim,
                         entries=len(phase)):
            for (_, _, peer, send, _) in phase:
                vals = extract(send)
                comm.send(peer, vals)
                nbytes += vals.nbytes
                messages += 1
                tracer.count("exchange.bytes", vals.nbytes)
                tracer.count("exchange.messages")
            for (_, _, peer, _, recv) in phase:
                with tracer.span("exchange.recv_wait", cat="dist", peer=peer):
                    vals = comm.recv(peer)
                inject(recv, vals)
    return nbytes, messages


def _prepare(grid: Grid3D, field: np.ndarray, proc_grid: Sequence[int],
             halo: int) -> Tuple[CartesianDecomposition, List[List[ExchangeEntry]]]:
    """Decompose and pre-validate every rank's exchange plan (fail fast)."""
    if field.shape != grid.shape:
        raise ValueError(f"field shape {field.shape} != grid shape {grid.shape}")
    decomp = CartesianDecomposition(grid.shape, proc_grid, halo)
    plans = [exchange_plan(decomp, decomp.geometry(r))
             for r in range(decomp.n_ranks)]
    return decomp, plans


def _pair_bytes(plans: List[List[ExchangeEntry]],
                dtype) -> dict:
    """Max message bytes per ordered rank pair (sizes the halo rings)."""
    itemsize = np.dtype(dtype).itemsize
    out: dict = {}
    for rank, plan in enumerate(plans):
        for (_, _, peer, send, _) in plan:
            key = (rank, peer)
            out[key] = max(out.get(key, 0), send.ncells * itemsize)
    return out


def _assemble(grid: Grid3D,
              pieces: List[Tuple[Box, np.ndarray]]) -> np.ndarray:
    """Stitch the rank cores back into one global interior array."""
    out = np.empty(grid.shape, dtype=grid.dtype)
    for core, vals in pieces:
        out[core.slices()] = vals
    return out


def _merge_stats(per_rank: Sequence[ExecutionStats]) -> ExecutionStats:
    """Aggregate executor counters across ranks."""
    stats = ExecutionStats()
    for rank_stats in per_rank:
        stats.block_ops += rank_stats.block_ops
        stats.empty_block_ops += rank_stats.empty_block_ops
        stats.updates += rank_stats.updates
        stats.cells_updated += rank_stats.cells_updated
        stats.max_counter_gap = max(stats.max_counter_gap,
                                    rank_stats.max_counter_gap)
    return stats


def _neg(off: Coord) -> Coord:
    return (-off[0], -off[1], -off[2])


# ---------------------------------------------------------------------------
# Per-rank algorithm bodies, shared by the thread and process transports.
# ---------------------------------------------------------------------------

def _sweeps_rank_body(comm: Comm, rank: int, boundary: DirichletBoundary,
                      dtype, decomp: CartesianDecomposition,
                      plan: List[ExchangeEntry], stored_field: np.ndarray,
                      supersteps: int, halo: int, stencil: StarStencil,
                      engine: str = "numpy",
                      ) -> Tuple[Box, np.ndarray, int, int]:
    """One rank of the multi-halo sweeps scheme.

    ``stored_field`` holds the rank's stored-box values (a view is fine;
    it is copied immediately).  Returns the global core box, its final
    values, and the traffic counters.  ``engine`` picks the
    kernel-execution engine for the trapezoid sweeps — resolved from
    the registry *inside* the rank, so both transports (threads and
    spawned processes) dispatch identically.
    """
    geo = decomp.geometry(rank)
    off = geo.stored.lo
    neg = _neg(off)
    lgrid = Grid3D(geo.stored.shape,
                   boundary=_shifted_boundary(boundary, off),
                   dtype=dtype)
    # Padded pair: local stored box + the one-cell Dirichlet ring.
    cur = lgrid.padded(np.ascontiguousarray(stored_field))
    nxt = cur.copy()
    core_l = geo.core.shift(neg)
    nbytes = messages = 0

    def extract(box: Box) -> np.ndarray:
        return cur[box.shift(neg).slices((1, 1, 1))].copy()

    def inject(box: Box, vals: np.ndarray) -> None:
        cur[box.shift(neg).slices((1, 1, 1))] = vals

    for _ in range(supersteps):
        b, m = _run_exchange(comm, plan, extract, inject)
        nbytes += b
        messages += m
        for s in range(1, halo + 1):
            region = core_l.grow(halo - s).intersect(lgrid.domain)
            reference_sweep_region(cur, nxt, region.lo, region.hi, stencil,
                                   engine=engine)
            cur, nxt = nxt, cur
    return geo.core, cur[core_l.slices((1, 1, 1))].copy(), nbytes, messages


def _pipelined_rank_body(comm: Comm, rank: int, boundary: DirichletBoundary,
                         dtype, decomp: CartesianDecomposition,
                         plan: List[ExchangeEntry], stored_field: np.ndarray,
                         config: PipelineConfig, stencil: StarStencil,
                         order: str, validate: bool,
                         tracer: Tracer = NULL_TRACER,
                         ) -> Tuple[Box, np.ndarray, int, int, ExecutionStats]:
    """One rank of the hybrid scheme: pipelined executor + halo exchange."""
    h = config.updates_per_pass
    geo = decomp.geometry(rank)
    off = geo.stored.lo
    neg = _neg(off)
    lgrid = Grid3D(geo.stored.shape,
                   boundary=_shifted_boundary(boundary, off),
                   dtype=dtype)
    core_l = geo.core.shift(neg)

    def active_fn(level: int) -> Box:
        # Pass-local update u covers the core + (h - u) ghost layers:
        # the shrinking trapezoid; the executor clips to the stored box.
        u = (level - 1) % h + 1
        return core_l.grow(h - u)

    with tracer.span("rank", cat="dist", rank=rank):
        ex = PipelineExecutor(
            lgrid, np.ascontiguousarray(stored_field),
            config, stencil, order=order, active_fn=active_fn,
            validate=validate, tracer=tracer,
        )
        storage = ex.storage
        nbytes = messages = 0
        for p in range(config.passes):
            base = p * h

            def extract(box: Box, base: int = base) -> np.ndarray:
                return storage.extract_region(box.shift(neg), base)

            def inject(box: Box, vals: np.ndarray, base: int = base) -> None:
                storage.inject(box.shift(neg), base, vals)

            b, m = _run_exchange(comm, plan, extract, inject, tracer=tracer)
            nbytes += b
            messages += m
            ex.run_pass(p)
        final = config.passes * h
        core_vals = storage.extract_region(core_l, final)
    return geo.core, core_vals, nbytes, messages, ex.stats


# ---------------------------------------------------------------------------
# procmpi rank entry points: module-level (spawn-picklable) wrappers that
# resolve shared-memory fields, rebuild the geometry, and run the bodies.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ProcTask:
    """Picklable problem description shipped to every rank process.

    The rank rebuilds the (cheap, deterministic) decomposition and its
    exchange plan locally instead of shipping every rank's plan to every
    process; only the field data travels through shared memory.
    """

    shape: Coord
    dtype: str
    boundary: DirichletBoundary
    proc_grid: Coord
    halo: int
    stencil: StarStencil
    field_in: ShmArrayHandle
    field_out: ShmArrayHandle
    # sweeps parameters (the pipelined path carries its engine inside
    # ``config``, so the spawned ranks inherit it with no extra plumbing)
    supersteps: int = 0
    engine: str = "numpy"
    # pipelined parameters
    config: Optional[PipelineConfig] = None
    order: str = "round_robin"
    validate: bool = True
    #: Record an observability trace in the rank and ship it back with
    #: the results (defaulted, so pickled tasks stay compatible).
    trace: bool = False


def _proc_sweeps_entry(comm: Comm, rank: int, task: _ProcTask):
    decomp = CartesianDecomposition(task.shape, task.proc_grid, task.halo)
    plan = exchange_plan(decomp, decomp.geometry(rank))
    with attach_array(task.field_in) as fin, \
            attach_array(task.field_out) as fout:
        geo = decomp.geometry(rank)
        core, vals, nbytes, messages = _sweeps_rank_body(
            comm, rank, task.boundary, np.dtype(task.dtype), decomp, plan,
            fin[geo.stored.slices()], task.supersteps, task.halo,
            task.stencil, engine=task.engine)
        fout[core.slices()] = vals
    return core, nbytes, messages


def _proc_pipelined_entry(comm: Comm, rank: int, task: _ProcTask):
    decomp = CartesianDecomposition(task.shape, task.proc_grid, task.halo)
    plan = exchange_plan(decomp, decomp.geometry(rank))
    tracer = Tracer(pid=rank) if task.trace else NULL_TRACER
    with attach_array(task.field_in) as fin, \
            attach_array(task.field_out) as fout:
        geo = decomp.geometry(rank)
        core, vals, nbytes, messages, stats = _pipelined_rank_body(
            comm, rank, task.boundary, np.dtype(task.dtype), decomp, plan,
            fin[geo.stored.slices()], task.config, task.stencil,
            task.order, task.validate, tracer=tracer)
        fout[core.slices()] = vals
    # The trace rides the existing result queue back to the driver as a
    # plain picklable dataclass; timestamps stay rank-clock-local and
    # the driver re-bases them when absorbing (fork and spawn safe).
    return core, nbytes, messages, stats, (tracer.finish()
                                           if task.trace else None)


class ProcSolverSession:
    """Persistent procmpi setup, reused across shape-compatible solves.

    A cold procmpi solve pays (1) the rank-process spawns, (2) the
    shared-memory field blocks and (3) the per-pair halo rings *per
    call*.  This session hoists all three into construction time: it
    owns a :class:`~repro.dist.procmpi.ProcWorld` plus the input/output
    field segments, and :meth:`solve_pipelined` / :meth:`solve_sweeps`
    only copy the field in, dispatch one job to the warm ranks and read
    the assembled result back.  ``repro.serve``'s worker pools keep
    sessions alive across jobs; the one-shot front-ends below create and
    close one per call, so both paths execute identical code.

    A session is keyed by ``(shape, dtype, proc_grid, halo)`` — see
    :meth:`compatible`.  Boundary, stencil and pipeline config travel
    with each job, so one session serves any problem on that geometry.
    Failure is crash-only (inherited from :class:`ProcWorld`): a solve
    that fails closes the session — segments unlinked, ranks joined —
    re-raises the original error, and the owner spawns a fresh session
    for subsequent jobs.
    """

    def __init__(self, shape: Sequence[int], dtype, proc_grid: Sequence[int],
                 halo: int, start_method: Optional[str] = None,
                 timeout: Optional[float] = None,
                 decomp: Optional[CartesianDecomposition] = None,
                 plans: Optional[List[List[ExchangeEntry]]] = None) -> None:
        self.shape: Coord = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.dtype = np.dtype(dtype)
        self.halo = int(halo)
        # The one-shot front-ends have already built (and validated) the
        # decomposition and every rank's plan — accept them instead of
        # recomputing; cold constructions build their own.
        self.decomp = decomp if decomp is not None else \
            CartesianDecomposition(self.shape, proc_grid, self.halo)
        self.plans = plans if plans is not None else \
            [exchange_plan(self.decomp, self.decomp.geometry(r))
             for r in range(self.decomp.n_ranks)]
        self.solves = 0
        #: Stable identity within a pool (assigned by SessionPool; -1 =
        #: unpooled).  Straggler scores and quarantine decisions key on it.
        self.sid = -1
        #: Fault-injection knob: a limplock degradation factor (>= 1.0;
        #: 1.0 = healthy).  Every job's service time is stretched to
        #: ``slowdown ×`` its real duration — the degraded-but-alive
        #: failure mode the straggler detector exists to catch, injected
        #: deterministically for the differential battery.
        self.slowdown = 1.0
        self._pool = ShmPool()
        self._world: Optional[ProcWorld] = None
        try:
            self._fin_handle, self._fin = self._pool.create_array(
                self.shape, self.dtype)
            self._fout_handle, self._fout = self._pool.create_array(
                self.shape, self.dtype)
            kwargs = {} if timeout is None else {"timeout": timeout}
            self._world = ProcWorld(
                self.decomp.n_ranks, start_method=start_method,
                pair_bytes=_pair_bytes(self.plans, self.dtype), **kwargs)
        except BaseException:
            self.close()
            raise

    @property
    def proc_grid(self) -> Coord:
        return self.decomp.proc_grid

    @property
    def closed(self) -> bool:
        return self._world is None or self._world.closed

    def compatible(self, shape: Sequence[int], dtype,
                   proc_grid: Sequence[int], halo: int) -> bool:
        """Whether this session can serve the given problem geometry."""
        return (not self.closed
                and self.shape == tuple(int(s) for s in shape)
                and self.dtype == np.dtype(dtype)
                and self.proc_grid == tuple(int(p) for p in proc_grid)
                and self.halo == int(halo))

    def _run(self, entry, grid: Grid3D, field: np.ndarray,
             stencil: StarStencil, **task_kwargs):
        """One job against the warm world: seed, dispatch, read back."""
        if self.closed:
            raise ProcMPIError("this solver session is closed")
        if grid.shape != self.shape or np.dtype(grid.dtype) != self.dtype:
            raise ValueError(
                f"problem {grid.shape}/{np.dtype(grid.dtype)} does not fit "
                f"this session ({self.shape}/{self.dtype})")
        if field.shape != self.shape:
            raise ValueError(
                f"field shape {field.shape} != grid shape {self.shape}")
        self._fin[...] = field
        task = _ProcTask(shape=self.shape, dtype=self.dtype.str,
                         boundary=grid.boundary,
                         proc_grid=self.proc_grid, halo=self.halo,
                         stencil=stencil, field_in=self._fin_handle,
                         field_out=self._fout_handle, **task_kwargs)
        t0 = time.perf_counter()
        try:
            outs = self._world.run_job(entry, args=(task,))
        except BaseException:
            # Crash-only: the world is already down; release the field
            # segments too so a failed session never leaks /dev/shm.
            self.close()
            raise
        if self.slowdown > 1.0:
            # Injected limplock: pad the job to slowdown x its real
            # duration, emulating a uniformly degraded node.
            time.sleep((self.slowdown - 1.0) * (time.perf_counter() - t0))
        self.solves += 1
        return outs, np.array(self._fout, copy=True)

    def solve_pipelined(self, grid: Grid3D, field: np.ndarray,
                        config: PipelineConfig,
                        stencil: Optional[StarStencil] = None,
                        order: str = "round_robin",
                        validate: bool = True,
                        tracer: Tracer = NULL_TRACER) -> SolveResult:
        """The hybrid scheme on the warm ranks; ``h`` must match the session."""
        if config.updates_per_pass != self.halo:
            raise ValueError(
                f"config h={config.updates_per_pass} != session halo "
                f"{self.halo}")
        # Anchor for merging rank traces: the ranks' clock origins are
        # not comparable to ours under spawn, so their spans are slid
        # onto this dispatch timestamp when absorbed.
        dispatch = time.perf_counter()
        outs, assembled = self._run(
            _proc_pipelined_entry, grid, field, stencil or jacobi7(),
            config=config, order=order, validate=validate,
            trace=tracer.enabled)
        if tracer.enabled:
            for rank, o in enumerate(outs):
                if len(o) > 4 and o[4] is not None:
                    tracer.absorb(o[4], pid=rank + 1, at=dispatch,
                                  label=f"rank {rank} (proc)")
        return SolveResult(
            field=assembled,
            levels_advanced=config.total_updates,
            stats=_merge_stats([o[3] for o in outs]),
            config=config,
            backend="procmpi",
            topology=self.proc_grid,
            n_ranks=self.decomp.n_ranks,
            halo=self.halo,
            bytes_exchanged=sum(o[1] for o in outs),
            messages=sum(o[2] for o in outs),
        )

    def solve_sweeps(self, grid: Grid3D, field: np.ndarray,
                     supersteps: int,
                     stencil: Optional[StarStencil] = None,
                     engine: str = "numpy") -> SolveResult:
        """The multi-halo sweeps scheme on the warm ranks."""
        if supersteps < 1:
            raise ValueError("supersteps must be >= 1")
        outs, assembled = self._run(
            _proc_sweeps_entry, grid, field, stencil or jacobi7(),
            supersteps=supersteps, engine=engine)
        return SolveResult(
            field=assembled,
            levels_advanced=supersteps * self.halo,
            stats=None,
            config=None,
            backend="procmpi",
            topology=self.proc_grid,
            n_ranks=self.decomp.n_ranks,
            halo=self.halo,
            bytes_exchanged=sum(o[1] for o in outs),
            messages=sum(o[2] for o in outs),
        )

    def close(self) -> None:
        """Tear down the world and unlink the field segments (idempotent)."""
        world, self._world = self._world, None
        if world is not None:
            world.close()
        self._pool.cleanup()

    def __enter__(self) -> "ProcSolverSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Multi-halo Jacobi sweeps (Sect. 2.1 in isolation)
# ---------------------------------------------------------------------------

def distributed_jacobi_sweeps(
    grid: Grid3D,
    field: np.ndarray,
    proc_grid: Sequence[int],
    supersteps: int,
    halo: int,
    stencil: Optional[StarStencil] = None,
    transport: str = "simmpi",
    engine: str = "numpy",
) -> SolveResult:
    """``supersteps`` rounds of (h-layer exchange, then h trapezoid sweeps).

    Advances the field by ``supersteps * halo`` time levels, equal to that
    many plain Jacobi sweeps on the undecomposed domain.  ``transport``
    picks thread ranks (``"simmpi"``) or process ranks (``"procmpi"``);
    ``engine`` picks the kernel-execution engine (bit-identical across
    engines, so it moves throughput only).
    """
    if supersteps < 1:
        raise ValueError("supersteps must be >= 1")
    _check_transport(transport)
    st = stencil or jacobi7()
    decomp, plans = _prepare(grid, field, proc_grid, halo)

    if transport == "procmpi":
        # One-shot session: identical code path to the serve layer's
        # warm pools, paying the full setup for this single solve.
        with ProcSolverSession(grid.shape, grid.dtype, decomp.proc_grid,
                               halo, decomp=decomp, plans=plans) as session:
            return session.solve_sweeps(grid, field, supersteps, stencil=st,
                                        engine=engine)

    def rank_fn(comm: Comm, rank: int):
        geo = decomp.geometry(rank)
        return _sweeps_rank_body(comm, rank, grid.boundary, grid.dtype,
                                 decomp, plans[rank],
                                 field[geo.stored.slices()], supersteps,
                                 halo, st, engine=engine)

    outs = run_ranks(decomp.n_ranks, rank_fn)
    return SolveResult(
        field=_assemble(grid, [(core, vals) for core, vals, _, _ in outs]),
        levels_advanced=supersteps * halo,
        stats=None,
        config=None,
        backend="simmpi",
        topology=decomp.proc_grid,
        n_ranks=decomp.n_ranks,
        halo=halo,
        bytes_exchanged=sum(o[2] for o in outs),
        messages=sum(o[3] for o in outs),
    )


# ---------------------------------------------------------------------------
# Hybrid: pipelined temporal blocking per rank (Sect. 2.2)
# ---------------------------------------------------------------------------

def distributed_jacobi_pipelined(
    grid: Grid3D,
    field: np.ndarray,
    proc_grid: Sequence[int],
    config: PipelineConfig,
    stencil: Optional[StarStencil] = None,
    order: str = "round_robin",
    validate: bool = True,
    transport: str = "simmpi",
    tracer: Tracer = NULL_TRACER,
) -> SolveResult:
    """The paper's hybrid scheme: one pipelined executor per rank.

    The halo width is ``h = config.updates_per_pass`` (= ``n·t·T``) so a
    single executor pass exactly drains one exchange; ``config.passes``
    becomes the number of supersteps.  Requires the two-grid storage
    scheme: the compressed grid's shifted storage positions do not
    compose with ghost injection across ranks.  ``transport`` picks
    thread ranks (``"simmpi"``) or process ranks (``"procmpi"``).
    An enabled ``tracer`` (see :func:`repro.solve`'s ``trace=``) records
    per-rank spans and merges every rank onto its timeline.
    """
    if config.storage != "twogrid":
        raise ValueError(
            "distributed pipelining requires the 'twogrid' storage scheme; "
            f"the {config.storage!r} layout cannot absorb ghost injections"
        )
    _check_transport(transport)
    st = stencil or jacobi7()
    h = config.updates_per_pass
    decomp, plans = _prepare(grid, field, proc_grid, h)

    if transport == "procmpi":
        # One-shot session: identical code path to the serve layer's
        # warm pools, paying the full setup for this single solve.
        with ProcSolverSession(grid.shape, grid.dtype, decomp.proc_grid,
                               h, decomp=decomp, plans=plans) as session:
            return session.solve_pipelined(grid, field, config, stencil=st,
                                           order=order, validate=validate,
                                           tracer=tracer)

    def rank_fn(comm: Comm, rank: int):
        geo = decomp.geometry(rank)
        # One tracer per thread rank; finished into a picklable Trace
        # that rides the rank's result tuple, exactly like procmpi.
        rtracer = Tracer(pid=rank) if tracer.enabled else NULL_TRACER
        body = _pipelined_rank_body(comm, rank, grid.boundary, grid.dtype,
                                    decomp, plans[rank],
                                    field[geo.stored.slices()], config, st,
                                    order, validate, tracer=rtracer)
        return body + ((rtracer.finish() if tracer.enabled else None),)

    outs = run_ranks(decomp.n_ranks, rank_fn)
    if tracer.enabled:
        # Thread ranks share our clock, so each trace is absorbed at its
        # own start (zero shift) — the genuine stagger is preserved.
        for rank, o in enumerate(outs):
            if o[5] is not None:
                tracer.absorb(o[5], pid=rank + 1, at=o[5].start,
                              label=f"rank {rank} (thread)")
    return SolveResult(
        field=_assemble(grid, [(core, vals) for core, vals, *_ in outs]),
        levels_advanced=config.total_updates,
        stats=_merge_stats([o[4] for o in outs]),
        config=config,
        backend="simmpi",
        topology=decomp.proc_grid,
        n_ranks=decomp.n_ranks,
        halo=h,
        bytes_exchanged=sum(o[2] for o in outs),
        messages=sum(o[3] for o in outs),
    )
