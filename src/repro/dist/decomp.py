"""Cartesian rank decomposition for the distributed-memory rail (Sect. 2).

The paper's hybrid scheme cuts the global domain into one subdomain per
MPI process on a 3-D process grid.  Each rank owns a *core* box (the
cells it is responsible for) and a *stored* box: the core grown by ``h``
ghost layers toward every neighbor, clipped to the global domain.  With
``h = n·t·T`` layers a rank can run ``h`` updates — the full pipelined
pass — between halo exchanges; update ``s`` covers a region ``h − s``
layers larger than the core (the shrinking trapezoid of Sect. 2.1), so
the ghost cells it consumes were produced *redundantly* by both owners
and stay consistent.

Rank numbering is z-major lexicographic (coordinate ``(pz, py, px)`` maps
to ``pz·Py·Px + py·Px + px``), matching the block traversal order of
:mod:`repro.grid.blocks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..grid.region import Box, boxes_partition

__all__ = ["RankGeometry", "CartesianDecomposition"]

Coord = Tuple[int, int, int]


@dataclass(frozen=True)
class RankGeometry:
    """What one rank owns: its coordinates, core box and stored box.

    Both boxes are in *global* interior coordinates; the solver translates
    to rank-local coordinates by subtracting ``stored.lo``.
    """

    rank: int
    coords: Coord
    core: Box
    stored: Box

    @property
    def ghost_cells(self) -> int:
        """Number of ghost cells this rank stores (stored minus core)."""
        return self.stored.ncells - self.core.ncells


class CartesianDecomposition:
    """Partition of a 3-D interior onto a Cartesian process grid.

    Parameters
    ----------
    shape:
        Global interior extents ``(nz, ny, nx)``.
    proc_grid:
        Process counts per dimension ``(Pz, Py, Px)``.
    halo:
        Ghost-layer width ``h`` exchanged per superstep (the paper's
        multi-halo ``h = n·t·T`` for the hybrid pipelined scheme, 1 for
        the standard code).

    The constructor rejects oversubscription (more processes than cells
    along a dimension); the thinner ``core >= h`` requirement is checked
    by :func:`repro.dist.exchange.exchange_plan`, which knows which faces
    actually have neighbors.
    """

    def __init__(self, shape: Sequence[int], proc_grid: Sequence[int],
                 halo: int) -> None:
        if len(shape) != 3 or any(int(s) < 1 for s in shape):
            raise ValueError(f"shape must be three positive extents, got {shape!r}")
        if len(proc_grid) != 3 or any(int(p) < 1 for p in proc_grid):
            raise ValueError(f"proc_grid must be three positive counts, got {proc_grid!r}")
        if int(halo) < 1:
            raise ValueError(f"halo must be >= 1, got {halo}")
        self.shape: Coord = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.proc_grid: Coord = tuple(int(p) for p in proc_grid)  # type: ignore[assignment]
        self.halo = int(halo)
        for d in range(3):
            if self.proc_grid[d] > self.shape[d]:
                raise ValueError(
                    f"{self.proc_grid[d]} processes along dim {d} oversubscribe "
                    f"{self.shape[d]} cells (every core must be non-empty)"
                )
        # Per-dimension split points: the first `extent % P` parts get one
        # extra cell, the standard balanced 1-D partition.
        self._starts = []
        for d in range(3):
            n, p = self.shape[d], self.proc_grid[d]
            base, rem = divmod(n, p)
            starts = [0]
            for i in range(p):
                starts.append(starts[-1] + base + (1 if i < rem else 0))
            self._starts.append(tuple(starts))

    # -- rank numbering ---------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        """Total number of ranks on the process grid."""
        p = self.proc_grid
        return p[0] * p[1] * p[2]

    @property
    def domain(self) -> Box:
        """The global interior as a box."""
        return Box.from_shape(self.shape)

    def rank_coords(self, rank: int) -> Coord:
        """Process-grid coordinates of a linear rank (z-major)."""
        p = self.proc_grid
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")
        px = rank % p[2]
        rest = rank // p[2]
        py = rest % p[1]
        pz = rest // p[1]
        return (pz, py, px)

    def coords_rank(self, coords: Sequence[int]) -> int:
        """Linear rank of process-grid coordinates (inverse of rank_coords)."""
        p = self.proc_grid
        for d in range(3):
            if not 0 <= coords[d] < p[d]:
                raise IndexError(f"coords {tuple(coords)} outside grid {p}")
        return (coords[0] * p[1] + coords[1]) * p[2] + coords[2]

    def neighbor(self, rank: int, dim: int, side: int) -> Optional[int]:
        """Rank of the face neighbor along ``dim`` on ``side``, or ``None``.

        The domain is not periodic: Dirichlet boundaries take over where
        there is no neighbor.
        """
        if side not in (-1, 1):
            raise ValueError(f"side must be -1 or +1, got {side}")
        c = list(self.rank_coords(rank))
        c[dim] += side
        if not 0 <= c[dim] < self.proc_grid[dim]:
            return None
        return self.coords_rank(c)

    # -- geometry ---------------------------------------------------------------

    def core_box(self, coords: Sequence[int]) -> Box:
        """The core box of the process at grid coordinates ``coords``."""
        lo = tuple(self._starts[d][coords[d]] for d in range(3))
        hi = tuple(self._starts[d][coords[d] + 1] for d in range(3))
        return Box(lo, hi)  # type: ignore[arg-type]

    def geometry(self, rank: int) -> RankGeometry:
        """Core and stored boxes of a rank (stored = core + h, clipped)."""
        coords = self.rank_coords(rank)
        core = self.core_box(coords)
        stored = core.grow(self.halo).intersect(self.domain)
        return RankGeometry(rank=rank, coords=coords, core=core, stored=stored)

    def check_partition(self) -> None:
        """Verify the rank cores exactly tile the global interior.

        This cannot fail for the balanced split above; it exists so that
        subclasses with custom splits (load balancing experiments) are
        validated by the same machinery as the block schedule.
        """
        cores = [self.core_box(self.rank_coords(r)) for r in range(self.n_ranks)]
        if not boxes_partition(cores, self.domain):
            raise ValueError(
                f"rank cores do not partition the {self.shape} interior"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CartesianDecomposition({self.shape}, {self.proc_grid}, "
                f"h={self.halo})")
